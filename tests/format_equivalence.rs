//! Property test: the *presentation* of an experiment is independent of
//! the storage format it travelled through. A randomly generated
//! experiment serialized as XML, binary v1, or the sectioned v2
//! container — opened eagerly or lazily — must render byte-identical
//! Calling Context, Callers and Flat views, and report identical
//! root-inclusive totals.

use callpath_core::prelude::*;
use callpath_expdb::{from_binary, from_xml, open_lazy, to_binary, to_binary_v2, to_xml};
use callpath_viewer::{render, ExpandMode, RenderConfig};
use callpath_workloads::generator;
use proptest::prelude::*;

/// Render all three views of `exp` fully expanded, sorted by column 0.
fn three_views(exp: &Experiment) -> [String; 3] {
    let cfg = RenderConfig {
        sort: Some(ColumnId(0)),
        expand: ExpandMode::All,
        max_children: usize::MAX,
        ..Default::default()
    };
    [
        render(&mut View::calling_context(exp), &cfg),
        render(&mut View::callers(exp), &cfg),
        render(&mut View::flat(exp), &cfg),
    ]
}

fn root_inclusives(exp: &Experiment) -> Vec<f64> {
    let root = exp.cct.root();
    (0..exp.raw.metric_count())
        .map(|m| exp.inclusive(MetricId::from_usize(m), root))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_four_open_paths_present_identically(seed in 0u64..1000, size in 10usize..300) {
        let eager = generator::random_experiment(seed, size, 12);
        let want_views = three_views(&eager);
        let want_totals = root_inclusives(&eager);

        let via_xml = from_xml(&to_xml(&eager)).unwrap();
        let via_v1 = from_binary(&to_binary(&eager)).unwrap();
        let v2 = to_binary_v2(&eager);
        let via_v2_eager = from_binary(&v2).unwrap();
        let via_v2_lazy = open_lazy(v2).unwrap();

        for (label, exp) in [
            ("xml", &via_xml),
            ("binary v1", &via_v1),
            ("v2 eager", &via_v2_eager),
            ("v2 lazy", &via_v2_lazy),
        ] {
            let got_views = three_views(exp);
            for (view, (got, want)) in ["ccv", "callers", "flat"]
                .iter()
                .zip(got_views.iter().zip(want_views.iter()))
            {
                prop_assert_eq!(got, want, "{} view differs via {}", view, label);
            }
            let got_totals = root_inclusives(exp);
            prop_assert_eq!(got_totals.len(), want_totals.len(), "{}", label);
            for (m, (got, want)) in got_totals.iter().zip(&want_totals).enumerate() {
                prop_assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "metric {} total via {}: {} vs {}",
                    m, label, got, want
                );
            }
        }
    }
}
