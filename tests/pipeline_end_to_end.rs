//! End-to-end pipeline tests: program → lower → execute → recover →
//! correlate → views, checking that the *measured* toolchain preserves the
//! structural facts the hand-built golden tests establish.

use callpath_core::prelude::*;
use callpath_profiler::{Counter, ExecConfig};
use callpath_viewer::{render, ExpandMode, RenderConfig};
use callpath_workloads::{fig1, generator, pipeline};

fn exact_cycles() -> ExecConfig {
    ExecConfig {
        jitter_seed: None,
        ..ExecConfig::single(Counter::Cycles, 1)
    }
}

#[test]
fn fig1_program_measures_exactly_with_period_one() {
    let unit = 1_000;
    let out = pipeline::run(&fig1::program(unit), &exact_cycles(), StorageKind::Dense);
    let exp = &out.experiment;
    // Period-1 sampling is exact: the root inclusive equals ground truth.
    let root = exp.cct.root();
    assert_eq!(
        exp.columns.get(ColumnId(0), root.0),
        out.exec.totals[Counter::Cycles] as f64
    );
    // Recursion: g appears as nested contexts with distinct costs.
    let mut g_frames = Vec::new();
    for n in exp.cct.all_nodes() {
        if let ScopeKind::Frame { proc, .. } = exp.cct.kind(n) {
            if exp.cct.names.proc_name(proc) == "g" {
                g_frames.push(n);
            }
        }
    }
    assert!(g_frames.len() >= 3, "several g contexts");
    // Exposed aggregation: the Callers View top-level g equals the
    // set-exposed sum, strictly less than the naive sum.
    let callers = View::callers(exp);
    let g_top = callers
        .roots()
        .into_iter()
        .find(|&r| callers.label(r) == "g")
        .unwrap();
    let exposed_sum: f64 = exposed(&exp.cct, &g_frames)
        .iter()
        .map(|n| exp.columns.get(ColumnId(0), n.0))
        .sum();
    let naive_sum: f64 = g_frames
        .iter()
        .map(|n| exp.columns.get(ColumnId(0), n.0))
        .sum();
    assert_eq!(callers.value(ColumnId(0), g_top), exposed_sum);
    assert!(naive_sum > exposed_sum, "recursion would double-count");
}

#[test]
fn fig1_loops_survive_the_whole_pipeline() {
    let out = pipeline::run(&fig1::program(1_000), &exact_cycles(), StorageKind::Dense);
    let exp = &out.experiment;
    // h's loop nest: find the l1 -> l2 chain somewhere in the CCT.
    let mut found = false;
    for n in exp.cct.all_nodes() {
        if let ScopeKind::Loop { header } = exp.cct.kind(n) {
            if header.line == 8 {
                let inner: Vec<NodeId> = exp
                    .cct
                    .children(n)
                    .filter(|&c| exp.cct.kind(c).is_loop())
                    .collect();
                assert!(!inner.is_empty(), "l2 nested under l1");
                found = true;
            }
        }
    }
    assert!(found, "l1 recovered from the binary's backward branches");
}

#[test]
fn all_three_views_render_for_a_measured_workload() {
    let exp = pipeline::build_experiment(&fig1::program(1_000), &exact_cycles());
    for kind in ViewKind::ALL {
        let mut view = match kind {
            ViewKind::CallingContext => View::calling_context(&exp),
            ViewKind::Callers => View::callers(&exp),
            ViewKind::Flat => View::flat(&exp),
        };
        let text = render(
            &mut view,
            &RenderConfig {
                expand: ExpandMode::All,
                ..Default::default()
            },
        );
        assert!(text.lines().count() > 4, "{}:\n{text}", kind.title());
        assert!(text.contains("g"), "{}", kind.title());
    }
}

#[test]
fn generated_programs_survive_the_pipeline() {
    for seed in [1, 7, 23] {
        let program = generator::random_program(generator::GenConfig {
            seed,
            n_procs: 40,
            ..Default::default()
        });
        let out = pipeline::run(&program, &ExecConfig::default(), StorageKind::Dense);
        let exp = &out.experiment;
        assert!(exp.cct.validate().is_ok());
        // Sampling accuracy: within 2% of ground truth for ~10^5+ cycles.
        let measured = exp.columns.get(ColumnId(0), exp.cct.root().0);
        let truth = out.exec.totals[Counter::Cycles] as f64;
        if truth > 100_000.0 {
            assert!(
                (measured - truth).abs() / truth < 0.02,
                "seed {seed}: measured {measured} truth {truth}"
            );
        }
    }
}

#[test]
fn overhead_is_a_few_percent_at_realistic_periods() {
    // E8 headline: asynchronous sampling costs only a few percent.
    let program = callpath_workloads::s3d::program(Default::default());
    let out = pipeline::run(&program, &ExecConfig::default(), StorageKind::Dense);
    let frac = out.exec.overhead_fraction();
    assert!(
        frac < 0.05,
        "overhead {:.2}% must stay under a few percent",
        frac * 100.0
    );
    assert!(
        out.exec.samples_taken > 10_000,
        "enough samples for accuracy"
    );
}

#[test]
fn sampling_error_shrinks_with_period() {
    // Statistical accuracy: finer sampling periods give proportionally
    // more samples and lower attribution error at a fixed scope (the
    // error of a share p from n samples scales like sqrt(p(1-p)/n)).
    use callpath_workloads::s3d;
    let program = s3d::program(s3d::S3dConfig::default());
    let measure = |period: u64, seed: u64| -> f64 {
        let cfg = ExecConfig {
            jitter_seed: Some(seed),
            ..ExecConfig::single(Counter::Cycles, period)
        };
        let exp = pipeline::build_experiment(&program, &cfg);
        // Share of the chemkin frame (truth ~41.4%).
        let mut view = View::calling_context(&exp);
        let mut stack = view.roots();
        let mut share = 0.0;
        while let Some(n) = stack.pop() {
            if view.label(n) == "chemkin_m_reaction_rate_" {
                share = view.value(ColumnId(0), n) / exp.aggregate(ColumnId(0));
                break;
            }
            stack.extend(view.children(n));
        }
        (share - 0.414).abs()
    };
    let coarse_err: f64 = (0..4).map(|s| measure(1_000_003, s)).sum::<f64>() / 4.0;
    let fine_err: f64 = (0..4).map(|s| measure(10_007, s)).sum::<f64>() / 4.0;
    assert!(
        fine_err < coarse_err,
        "finer sampling must be more accurate: fine {fine_err:.4} vs coarse {coarse_err:.4}"
    );
    assert!(fine_err < 0.01, "fine-period error {fine_err:.4}");
}
