//! The tentpole acceptance test: record an interactive session with
//! instrumentation on, export the recorded span tree as an experiment
//! database ([`callpath_obs::to_experiment`]), open it like any other
//! profile, and present the tool's *own* profile in its own three views
//! — checking the paper's structural invariants hold on it (children's
//! inclusive time sums to at most the parent's; Eq. 3 hot-path analysis
//! lands on an instrumented span).

use callpath_core::prelude::*;
use callpath_core::source::SourceStore;
use callpath_expdb::{open_lazy, to_binary_v2};
use callpath_profiler::ExecConfig;
use callpath_viewer::{render, render_hot_path, Command, ExpandMode, RenderConfig, Session};
use callpath_workloads::{pipeline, s3d};

fn full_render_cfg() -> RenderConfig {
    RenderConfig {
        sort: Some(ColumnId(0)),
        expand: ExpandMode::All,
        max_children: usize::MAX,
        ..Default::default()
    }
}

#[test]
fn the_tool_presents_its_own_profile_in_its_own_three_views() {
    callpath_obs::reset();

    // --- Record: drive a real session over a lazily opened database,
    // all under one named span so the self-profile has a clear root.
    let exp = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    let bytes = to_binary_v2(&exp);
    {
        let _outer = callpath_obs::span("selftest.session");
        let opened = open_lazy(bytes).unwrap();
        let mut session = Session::new(&opened, SourceStore::new());
        session.render();
        session.apply(Command::SortBy(ColumnId(1))).unwrap();
        session.render();
        session
            .apply(Command::SwitchView(ViewKind::Callers))
            .unwrap();
        session.render();
        session.apply(Command::SwitchView(ViewKind::Flat)).unwrap();
        session.apply(Command::Flatten).unwrap();
        session.render();
        session
            .apply(Command::SwitchView(ViewKind::CallingContext))
            .unwrap();
        session.apply(Command::HotPath).unwrap();
        session.render();
    }

    if !callpath_obs::enabled() {
        // Feature `obs` is off: nothing records, and the exporter's
        // empty-snapshot behavior is covered by its unit tests.
        return;
    }

    // --- The snapshot holds the instrumented pipeline, correctly nested.
    let snap = callpath_obs::snapshot();
    let name_of = |i: usize| snap.spans[i].name.as_str();
    let find = |name: &str| {
        snap.spans
            .iter()
            .position(|s| s.name == name)
            .unwrap_or_else(|| panic!("span '{name}' was not recorded"))
    };
    let outer = find("selftest.session");
    for inner in ["expdb.open_lazy", "viewer.render", "viewer.hot_path"] {
        assert_eq!(
            snap.spans[find(inner)].parent,
            outer,
            "'{inner}' must nest under the session span"
        );
    }
    assert!(
        snap.counters
            .iter()
            .any(|(n, v)| n == "expdb.lazy.fault.column" && *v > 0),
        "rendering a lazy database must fault columns"
    );

    // --- Export and reopen: the self-profile is an ordinary v2 database.
    let self_exp = callpath_obs::to_experiment(&snap);
    let reopened = open_lazy(to_binary_v2(&self_exp)).unwrap();

    // All three views are non-empty and show the instrumented spans.
    let cfg = full_render_cfg();
    let ccv = render(&mut View::calling_context(&reopened), &cfg);
    let callers = render(&mut View::callers(&reopened), &cfg);
    let flat = render(&mut View::flat(&reopened), &cfg);
    for (label, text) in [("ccv", &ccv), ("callers", &callers), ("flat", &flat)] {
        assert!(
            text.lines().count() > 3,
            "{label} view of the self-profile is empty:\n{text}"
        );
        assert!(
            text.contains("viewer.render"),
            "{label} view does not show the instrumented spans:\n{text}"
        );
    }
    assert!(ccv.contains("selftest.session"));

    // --- Inclusive invariant (Eq. 2): a parent's inclusive time bounds
    // the sum of its children's, at every node of the self-profile.
    let time = MetricId(0);
    for n in reopened.cct.all_nodes() {
        let own = reopened.inclusive(time, n);
        let child_sum: f64 = reopened
            .cct
            .children(n)
            .map(|c| reopened.inclusive(time, c))
            .sum();
        assert!(
            child_sum <= own * (1.0 + 1e-9) + 1e-6,
            "node {n:?}: children sum {child_sum} exceeds inclusive {own}"
        );
    }

    // --- Hot-path analysis (Eq. 3) over the self-profile descends from
    // the hottest top-level span (the session) onto the instrumented
    // spans below it. The permissive threshold keeps the walk from
    // stopping early when session time is spread across several
    // children — the *descent rule* is what's under test, not the knob.
    let hot_cfg = HotPathConfig::with_threshold(0.1);
    let mut view = View::calling_context(&reopened);
    let mut roots = view.roots();
    sort_by_column(&view, &mut roots, ColumnId(0));
    let start = roots[0];
    let path = view.hot_path(start, ColumnId(0), hot_cfg);
    assert!(
        path.len() >= 2,
        "hot path must descend into the span tree, got {path:?}"
    );
    let hot = render_hot_path(&mut view, start, ColumnId(0), hot_cfg, &cfg);
    assert!(
        hot.contains("selftest.session"),
        "hot path must pass through the session span:\n{hot}"
    );

    // The exporter names spans after the recording sites, so the hot
    // leaf is one of them (sanity: not the synthetic root).
    let _ = name_of(0);
}
