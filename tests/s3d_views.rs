//! E2 — Fig. 3: the Calling Context View of the S3D-shaped turbulent
//! combustion workload, driven end-to-end through the measurement
//! pipeline (simulate → sample → recover structure → correlate).
//!
//! Paper facts to reproduce (shape, within sampling tolerance):
//! * hot path analysis finds `chemkin_m_reaction_rate_` with ≈41.4% of
//!   inclusive cycles;
//! * the loop at `integrate_erk.f90:82` holds ≈97.9% inclusive but ≈0.0%
//!   exclusive cycles;
//! * `rhsf_`'s own statements account for ≈8.7%;
//! * the top-of-chain `main` is binary-only (no source link);
//! * the call chain interleaves the loop (static) with calls (dynamic).

use callpath_core::prelude::*;
use callpath_profiler::{Counter, ExecConfig};
use callpath_viewer::{render_hot_path, RenderConfig};
use callpath_workloads::{pipeline, s3d};

fn build() -> Experiment {
    let program = s3d::program(s3d::S3dConfig::default());
    pipeline::build_experiment(&program, &ExecConfig::default())
}

fn cycles_incl(exp: &Experiment) -> ColumnId {
    exp.inclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap())
}

fn cycles_excl(exp: &Experiment) -> ColumnId {
    exp.exclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap())
}

fn find_by_label(view: &mut View<'_>, start: u32, label: &str) -> Option<u32> {
    let mut stack = vec![start];
    while let Some(n) = stack.pop() {
        if view.label(n) == label {
            return Some(n);
        }
        stack.extend(view.children(n));
    }
    None
}

#[test]
fn hot_path_finds_the_reaction_rate_routine() {
    let exp = build();
    let ci = cycles_incl(&exp);
    let total = exp.aggregate(ci);
    let mut view = View::calling_context(&exp);
    let roots = view.roots();
    assert_eq!(roots.len(), 1, "one top-level chain (the runtime main)");
    let path = view.hot_path(roots[0], ci, HotPathConfig::default());
    let labels: Vec<String> = path.iter().map(|&n| view.label(n)).collect();
    let chemkin_pos = labels
        .iter()
        .position(|l| l == "chemkin_m_reaction_rate_")
        .unwrap_or_else(|| panic!("hot path must reach chemkin: {labels:?}"));
    // ≈41.4% of inclusive cycles (paper's number), within sampling noise.
    let share = 100.0 * view.value(ci, path[chemkin_pos]) / total;
    assert!((share - 41.4).abs() < 1.5, "chemkin share {share:.1}%");
    // The path passes through the integration loop: static scopes fused
    // into the dynamic chain.
    assert!(
        labels.iter().any(|l| l == "loop at integrate_erk.f90:82"),
        "{labels:?}"
    );
}

#[test]
fn integrate_loop_is_inclusive_heavy_exclusive_light() {
    let exp = build();
    let (ci, ce) = (cycles_incl(&exp), cycles_excl(&exp));
    let total = exp.aggregate(ci);
    let mut view = View::calling_context(&exp);
    let roots = view.roots();
    let lp = find_by_label(&mut view, roots[0], "loop at integrate_erk.f90:82")
        .expect("integration loop in CCT");
    let incl_share = 100.0 * view.value(ci, lp) / total;
    let excl_share = 100.0 * view.value(ce, lp) / total;
    assert!(
        (incl_share - 97.9).abs() < 1.0,
        "inclusive {incl_share:.1}%"
    );
    assert!(excl_share < 0.1, "exclusive {excl_share:.2}% must be ~0");
}

#[test]
fn rhsf_own_statements_cost() {
    let exp = build();
    let ce = cycles_excl(&exp);
    let total = exp.aggregate(ColumnId(0));
    let mut view = View::calling_context(&exp);
    let roots = view.roots();
    let rhsf = find_by_label(&mut view, roots[0], "rhsf_").expect("rhsf_ frame");
    // rhsf_'s exclusive (rule 1: own statements) ≈ 8.7%.
    let share = 100.0 * view.value(ce, rhsf) / total;
    assert!((share - 8.7).abs() < 1.0, "rhsf_ exclusive {share:.1}%");
}

#[test]
fn runtime_main_is_binary_only() {
    let exp = build();
    let mut view = View::calling_context(&exp);
    let roots = view.roots();
    assert_eq!(view.label(roots[0]), "main");
    assert!(
        !view.has_source(roots[0]),
        "the runtime wrapper renders in plain black"
    );
    // Its child (s3d_main) does have source.
    let kids = view.children(roots[0]);
    assert!(view.has_source(kids[0]));
}

#[test]
fn rendered_hot_path_highlights_chemkin() {
    let exp = build();
    let ci = cycles_incl(&exp);
    let mut view = View::calling_context(&exp);
    let roots = view.roots();
    let text = render_hot_path(
        &mut view,
        roots[0],
        ci,
        HotPathConfig::default(),
        &RenderConfig::default(),
    );
    let chemkin_row = text
        .lines()
        .find(|l| l.contains("chemkin_m_reaction_rate_"))
        .expect("chemkin row rendered");
    assert!(chemkin_row.contains("🔥"), "{chemkin_row}");
    assert!(chemkin_row.contains("41."), "≈41.4%: {chemkin_row}");
}

#[test]
fn sampled_totals_track_ground_truth() {
    let program = s3d::program(s3d::S3dConfig::default());
    let out = pipeline::run(&program, &ExecConfig::default(), StorageKind::Dense);
    let exp = &out.experiment;
    let ci = cycles_incl(exp);
    let measured = exp.aggregate(ci);
    let truth = out.exec.totals[Counter::Cycles] as f64;
    assert!(
        (measured - truth).abs() / truth < 0.005,
        "measured {measured} vs truth {truth}"
    );
}
