//! End-to-end tests of the command-line tools: `callpath-record` writes a
//! database, `callpath-view` presents it.

use std::process::Command;

fn record() -> &'static str {
    env!("CARGO_BIN_EXE_callpath-record")
}

fn view() -> &'static str {
    env!("CARGO_BIN_EXE_callpath-view")
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("callpath-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn record_then_view_hot_path() {
    let db = tmp("s3d.cpdb");
    let out = Command::new(record())
        .args(["--workload", "s3d", "-o", db.to_str().unwrap()])
        .output()
        .expect("run callpath-record");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(db.exists());

    let out = Command::new(view())
        .args([db.to_str().unwrap(), "--hot", "--columns", "0,1"])
        .output()
        .expect("run callpath-view");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("chemkin_m_reaction_rate_"), "{text}");
    assert!(text.contains("41."), "{text}");
    std::fs::remove_file(&db).ok();
}

#[test]
fn xml_format_and_callers_view() {
    let db = tmp("fig1.xml");
    let out = Command::new(record())
        .args([
            "--workload",
            "fig1",
            "--format",
            "xml",
            "-o",
            db.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let content = std::fs::read_to_string(&db).unwrap();
    assert!(content.starts_with("<Experiment"));

    let out = Command::new(view())
        .args([db.to_str().unwrap(), "--view", "callers", "--levels", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("g"), "{text}");
    std::fs::remove_file(&db).ok();
}

#[test]
fn derived_metric_and_flatten_via_cli() {
    let db = tmp("s3d2.cpdb");
    assert!(Command::new(record())
        .args(["--workload", "s3d", "-o", db.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = Command::new(view())
        .args([
            db.to_str().unwrap(),
            "--derived",
            "waste=$1*4-$3",
            "--view",
            "flat",
            "--flatten",
            "3",
            "--sort-name",
            "waste",
            "--levels",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let first_data_row = text.lines().nth(2).unwrap();
    assert!(
        first_data_row.contains("diffflux.f90"),
        "waste sort leads with the flux loop:\n{text}"
    );
    std::fs::remove_file(&db).ok();
}

#[test]
fn list_columns() {
    let db = tmp("moab.cpdb");
    assert!(Command::new(record())
        .args(["--workload", "moab", "-o", db.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = Command::new(view())
        .args([db.to_str().unwrap(), "--list-columns"])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PAPI_TOT_CYC (I)"));
    assert!(text.contains("PAPI_L1_DCM (E)"));
    std::fs::remove_file(&db).ok();
}

#[test]
fn helpful_errors() {
    // Unknown workload.
    let out = Command::new(record())
        .args(["--workload", "nope", "-o", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));

    // Missing file.
    let out = Command::new(view())
        .args(["/no/such/file"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Bad derived formula.
    let db = tmp("err.cpdb");
    assert!(Command::new(record())
        .args(["--workload", "fig1", "-o", db.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = Command::new(view())
        .args([db.to_str().unwrap(), "--derived", "bad=$$$"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad"));
    std::fs::remove_file(&db).ok();
}

#[test]
fn diff_tool_finds_the_regression() {
    let base = tmp("diff-tuned.cpdb");
    let peer = tmp("diff-base.cpdb");
    assert!(Command::new(record())
        .args(["--workload", "s3d-tuned", "-o", base.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(Command::new(record())
        .args(["--workload", "s3d", "-o", peer.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = Command::new(env!("CARGO_BIN_EXE_callpath-diff"))
        .args([base.to_str().unwrap(), peer.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("diffusive_flux_"), "{text}");
    assert!(text.contains("loss:"), "{text}");
    std::fs::remove_file(&base).ok();
    std::fs::remove_file(&peer).ok();
}

/// The diff CLI's full output, byte for byte, against a golden captured
/// before `diff::fold_in` was rebased on the union-supergraph core
/// (`core::supergraph`): the N=2 path through the shared merge must
/// reproduce the old hand-rolled walk exactly.
#[test]
fn diff_output_is_byte_identical_to_the_golden() {
    let base = tmp("diff-golden-tuned.cpdb");
    let peer = tmp("diff-golden-base.cpdb");
    assert!(Command::new(record())
        .args(["--workload", "s3d-tuned", "-o", base.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(Command::new(record())
        .args(["--workload", "s3d", "-o", peer.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = Command::new(env!("CARGO_BIN_EXE_callpath-diff"))
        .args([base.to_str().unwrap(), peer.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout)
        .unwrap()
        .replace(base.to_str().unwrap(), "BASE")
        .replace(peer.to_str().unwrap(), "PEER");
    assert_eq!(
        text,
        include_str!("data/diff_s3d.golden"),
        "callpath-diff output drifted from the pre-supergraph golden"
    );
    std::fs::remove_file(&base).ok();
    std::fs::remove_file(&peer).ok();
}

#[test]
fn record_profiles_a_cps_scenario_file() {
    let db = tmp("imagepipe.cpdb");
    let scenario = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/scenarios/imagepipe.cps"
    );
    let out = Command::new(record())
        .args(["--program", scenario, "-o", db.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = Command::new(view())
        .args([db.to_str().unwrap(), "--hot"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // The low-efficiency sharpen filter dominates the pipeline.
    assert!(text.contains("sharpen"), "{text}");
    std::fs::remove_file(&db).ok();
}

#[test]
fn record_reports_scenario_parse_errors_with_lines() {
    let bad = tmp("bad.cps");
    std::fs::write(
        &bad,
        "program p\nproc x @ a.c:1\n  work @ 2\nend\nentry x\n",
    )
    .unwrap();
    let db = tmp("bad.cpdb");
    let out = Command::new(record())
        .args([
            "--program",
            bad.to_str().unwrap(),
            "-o",
            db.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 3"), "{err}");
    std::fs::remove_file(&bad).ok();
}

#[test]
fn interactive_mode_drives_a_session() {
    use std::io::Write;
    use std::process::Stdio;
    let db = tmp("repl.cpdb");
    assert!(Command::new(record())
        .args(["--workload", "s3d", "-o", db.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let mut child = Command::new(view())
        .args([db.to_str().unwrap(), "-i"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"hot\nfind transport\nbogus\nexpand 9999\nquit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    // Failed commands in a piped (non-tty) script exit nonzero, same
    // as batch mode.
    assert!(
        !out.status.success(),
        "scripted REPL with failing commands must exit nonzero"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[  0]"), "numbered rows: {text}");
    assert!(text.contains("🔥"), "hot path ran");
    assert!(
        text.contains("transport_m_computecoefficients_"),
        "find revealed it"
    );
    // Diagnostics go to stderr; stdout stays pipeable view text.
    assert!(!text.contains("error:"), "stdout polluted: {text}");
    let errs = String::from_utf8_lossy(&out.stderr);
    assert!(errs.contains("error: unknown command 'bogus'"), "{errs}");
    assert!(errs.contains("error: no row 9999"), "{errs}");
    std::fs::remove_file(&db).ok();
}

/// A scripted REPL run where every command succeeds exits zero and
/// keeps stdout free of any diagnostic text.
#[test]
fn interactive_mode_with_clean_script_exits_zero_with_clean_stdout() {
    use std::io::Write;
    use std::process::Stdio;
    let db = tmp("repl-clean.cpdb");
    assert!(Command::new(record())
        .args(["--workload", "s3d", "-o", db.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let mut child = Command::new(view())
        .args([db.to_str().unwrap(), "-i"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"hot\nfind transport\nquit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "clean script must exit zero");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("error:"), "stdout polluted: {text}");
    assert!(
        !text.contains("interactive mode"),
        "banner on stdout: {text}"
    );
    assert!(text.contains("🔥"), "hot path rendered");
    std::fs::remove_file(&db).ok();
}

/// `callpath-view … | head` (reader hangs up early): no panic, no error
/// text anywhere, exit zero.
#[test]
fn piped_view_with_early_reader_exit_is_quiet() {
    let db = tmp("pipe.cpdb");
    assert!(Command::new(record())
        .args(["--workload", "s3d", "-o", db.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = Command::new("sh")
        .arg("-c")
        .arg(format!(
            "{} {} 2>err.txt | head -n 2; cat err.txt; rm -f err.txt",
            view(),
            db.to_str().unwrap()
        ))
        .current_dir(std::env::temp_dir())
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 2, "{text}");
    assert!(!text.contains("error"), "error text leaked: {text}");
    assert!(!text.contains("panicked"), "panic leaked: {text}");
    std::fs::remove_file(&db).ok();
}
