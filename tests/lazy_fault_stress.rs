//! Concurrency stress test for lazy column faulting: N reader threads
//! race the *first* read of the same lazily backed column. The
//! `OnceLock` slot must admit exactly one block decode (observed through
//! the new per-column fault counter and the obs registry), and every
//! thread must see data identical to an eager open.

use callpath_core::prelude::*;
use callpath_expdb::{open_lazy, to_binary_v2};
use callpath_workloads::generator;

const READERS: usize = 8;

#[test]
fn racing_first_reads_decode_the_column_exactly_once() {
    callpath_obs::reset();

    let eager = generator::random_experiment(7, 400, 16);
    let lazy = open_lazy(to_binary_v2(&eager)).unwrap();
    let n_nodes = eager.cct.len() as u32;
    let col = ColumnId(0);

    let expected: Vec<f64> = (0..n_nodes).map(|n| eager.columns.get(col, n)).collect();
    assert!(
        expected.iter().any(|&v| v != 0.0),
        "column 0 must carry data for the race to be meaningful"
    );

    // A barrier lines every reader up on the very first read, so the
    // fault itself is contended rather than one thread winning by
    // starting early.
    let barrier = std::sync::Barrier::new(READERS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    (0..n_nodes)
                        .map(|n| lazy.columns.get(col, n))
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        for h in handles {
            let got = h.join().expect("reader panicked");
            assert_eq!(got, expected, "a racing reader saw divergent data");
        }
    });

    // The OnceLock slot ran its init closure exactly once, no matter
    // how many readers raced it.
    assert_eq!(lazy.columns.fault_count(col), 1);
    assert!(lazy.columns.lazy_errors().is_empty());

    if callpath_obs::enabled() {
        // The obs registry agrees: one column fault, zero failures.
        // (This file holds a single test, so the process-global counter
        // sees only this race.)
        assert_eq!(callpath_obs::counter_value("expdb.lazy.fault.column"), 1);
        assert_eq!(callpath_obs::counter_value("expdb.lazy.fault.failed"), 0);
    }
}
