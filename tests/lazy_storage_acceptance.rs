//! Acceptance tests for the sectioned v2 storage path (format v2 +
//! `LazyDb`): opening a database must decode only the table of contents,
//! name tables and CCT topology; metric blocks materialize when — and
//! only when — a view actually reads them. A forced `decode_all` must
//! then be indistinguishable from an eager open, down to the rendered
//! text of an interactive session.

use callpath_core::prelude::*;
use callpath_core::source::SourceStore;
use callpath_expdb::{decode_all, from_binary, open_lazy, to_binary_v2};
use callpath_profiler::ExecConfig;
use callpath_viewer::{Command, Session};
use callpath_workloads::{pipeline, s3d};

fn s3d_v2() -> Vec<u8> {
    let exp = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    to_binary_v2(&exp)
}

/// The headline laziness guarantee: an interactive session that sorts and
/// renders the Calling Context View on a single visible column faults in
/// exactly that column, and never touches the raw metric blocks at all
/// (the CCV reads presentation columns directly).
#[test]
fn rendering_one_sorted_view_materializes_only_its_columns() {
    let exp = open_lazy(s3d_v2()).unwrap();
    assert_eq!(
        exp.columns.materialized_columns(),
        0,
        "open must decode topology only, not metric blocks"
    );
    assert_eq!(exp.raw.materialized_metrics(), 0);
    assert!(exp.columns.column_count() >= 4, "s3d carries two metrics");

    let mut session = Session::new(&exp, SourceStore::new());
    // Metric-properties dialog: show only the column we sort by.
    for c in 1..exp.columns.column_count() as u32 {
        session.apply(Command::HideColumn(ColumnId(c))).unwrap();
    }
    session.apply(Command::SortBy(ColumnId(0))).unwrap();
    session.apply(Command::HotPath).unwrap();
    let text = session.render();
    assert!(text.contains("🔥"), "hot path rendered:\n{text}");

    assert_eq!(
        session.materialized_columns(),
        1,
        "sorting + hot path + render on one visible column faults exactly it"
    );
    assert_eq!(
        exp.raw.materialized_metrics(),
        0,
        "the CCV never reads raw metrics"
    );
    assert!(exp.columns.lazy_error().is_none());
    assert!(exp.raw.lazy_error().is_none());
}

/// `decode_all` brings every block in, and the result matches an eager
/// open of the same bytes node-for-node — presentation columns and raw
/// metrics alike. Both paths run the same attribution code over the same
/// decoded costs, so equality here is exact, not approximate.
#[test]
fn forced_decode_matches_an_eager_open_node_for_node() {
    let bytes = s3d_v2();
    let eager = from_binary(&bytes).unwrap();
    let lazy = open_lazy(bytes).unwrap();
    decode_all(&lazy, 0);

    assert_eq!(
        lazy.columns.materialized_columns(),
        lazy.columns.column_count()
    );
    assert_eq!(lazy.raw.materialized_metrics(), lazy.raw.metric_count());
    assert!(lazy.columns.lazy_error().is_none());
    assert!(lazy.raw.lazy_error().is_none());

    assert_eq!(eager.cct.len(), lazy.cct.len());
    assert_eq!(eager.columns.column_count(), lazy.columns.column_count());
    for n in 0..eager.cct.len() as u32 {
        for c in eager.columns.columns() {
            assert_eq!(
                eager.columns.get(c, n),
                lazy.columns.get(c, n),
                "column {c:?} node {n}"
            );
        }
        for m in 0..eager.raw.metric_count() as u32 {
            assert_eq!(
                eager.raw.direct(MetricId(m), NodeId(n)),
                lazy.raw.direct(MetricId(m), NodeId(n)),
                "metric {m} node {n}"
            );
        }
    }
}

/// Byte-for-byte golden: driving identical session scripts over the lazy
/// and eager opens of the same database renders identical text — the
/// storage path is invisible to the presentation layer.
#[test]
fn lazy_and_eager_sessions_render_identical_text() {
    let bytes = s3d_v2();
    let eager = from_binary(&bytes).unwrap();
    let lazy = open_lazy(bytes).unwrap();

    let drive = |exp: &Experiment| {
        let mut s = Session::new(exp, SourceStore::new());
        s.apply(Command::HotPath).unwrap();
        let mut out = s.render();
        let last = ColumnId(exp.columns.column_count() as u32 - 1);
        s.apply(Command::SortBy(last)).unwrap();
        s.apply(Command::HotPath).unwrap();
        out.push_str(&s.render());
        s.apply(Command::SwitchView(ViewKind::Flat)).unwrap();
        s.apply(Command::Flatten).unwrap();
        out.push_str(&s.render());
        out
    };
    assert_eq!(drive(&eager), drive(&lazy));
}
