//! E1 — the paper's normative example: Figure 1's program and Figure 2's
//! three views, reproduced number-for-number.
//!
//! Fig. 2a (CCT), Fig. 2b (callers tree) and Fig. 2c (flat tree) each
//! annotate every scope with (inclusive, exclusive) costs. This test
//! builds the canonical CCT from `callpath_workloads::fig1` and checks
//! every value in all three figures, plus the renderer's presentation of
//! them.

use callpath_core::prelude::*;
use callpath_viewer::{render, RenderConfig};
use callpath_workloads::fig1;

const I: ColumnId = ColumnId(0);
const E: ColumnId = ColumnId(1);

fn assert_cell(view: &View<'_>, n: u32, label: &str, incl: f64, excl: f64) {
    assert_eq!(view.value(I, n), incl, "{label} inclusive");
    assert_eq!(view.value(E, n), excl, "{label} exclusive");
}

/// Find the unique child of `parent` (or root when None) with this label;
/// panics (with context) when absent.
fn child(view: &mut View<'_>, parent: Option<u32>, label: &str) -> u32 {
    let candidates = match parent {
        Some(p) => view.children(p),
        None => view.roots(),
    };
    let found: Vec<u32> = candidates
        .into_iter()
        .filter(|&n| view.label(n) == label)
        .collect();
    assert_eq!(found.len(), 1, "expected exactly one '{label}'");
    found[0]
}

#[test]
fn fig2a_calling_context_view() {
    let (exp, n) = fig1::experiment();
    let view = View::calling_context(&exp);
    assert_cell(&view, n.m.0, "m", 10.0, 0.0);
    assert_cell(&view, n.f.0, "f", 7.0, 1.0);
    assert_cell(&view, n.g1.0, "g1", 6.0, 1.0);
    assert_cell(&view, n.g2.0, "g2", 5.0, 1.0);
    assert_cell(&view, n.g3.0, "g3", 3.0, 3.0);
    assert_cell(&view, n.h.0, "h", 4.0, 4.0);
    assert_cell(&view, n.l1.0, "l1", 4.0, 0.0);
    assert_cell(&view, n.l2.0, "l2", 4.0, 4.0);
}

#[test]
fn fig2b_callers_view() {
    let (exp, _) = fig1::experiment();
    let mut view = View::callers(&exp);

    // Top-level forest: ga (9,4), fa (7,1), h (4,4), m (10,0).
    let ga = child(&mut view, None, "g");
    let fa = child(&mut view, None, "f");
    let ha = child(&mut view, None, "h");
    let ma = child(&mut view, None, "m");
    assert_cell(&view, ga, "ga", 9.0, 4.0);
    assert_cell(&view, fa, "fa", 7.0, 1.0);
    assert_cell(&view, ha, "h", 4.0, 4.0);
    assert_cell(&view, ma, "m", 10.0, 0.0);

    // ga's callers: fb (g←f: 6,1), gb (g←g: 5,1), ma' (g←m: 3,3).
    let fb = child(&mut view, Some(ga), "f");
    let gb = child(&mut view, Some(ga), "g");
    let ma2 = child(&mut view, Some(ga), "m");
    assert_cell(&view, fb, "fb", 6.0, 1.0);
    assert_cell(&view, gb, "gb", 5.0, 1.0);
    assert_cell(&view, ma2, "ma", 3.0, 3.0);

    // Under fb: mc (g←f←m: 6,1).
    let mc = child(&mut view, Some(fb), "m");
    assert_cell(&view, mc, "mc", 6.0, 1.0);

    // Under gb: fc (g←g←f: 5,1), then md (g←g←f←m: 5,1).
    let fc = child(&mut view, Some(gb), "f");
    assert_cell(&view, fc, "fc", 5.0, 1.0);
    let md = child(&mut view, Some(fc), "m");
    assert_cell(&view, md, "md", 5.0, 1.0);

    // fa's caller: mb (f←m: 7,1).
    let mb = child(&mut view, Some(fa), "m");
    assert_cell(&view, mb, "mb", 7.0, 1.0);

    // h's chain: gc, gd, fd, me — all (4,4).
    let gc = child(&mut view, Some(ha), "g");
    assert_cell(&view, gc, "gc", 4.0, 4.0);
    let gd = child(&mut view, Some(gc), "g");
    assert_cell(&view, gd, "gd", 4.0, 4.0);
    let fd = child(&mut view, Some(gd), "f");
    assert_cell(&view, fd, "fd", 4.0, 4.0);
    let me = child(&mut view, Some(fd), "m");
    assert_cell(&view, me, "me", 4.0, 4.0);

    // m has no callers; the chains end exactly where Fig. 2b ends.
    assert!(view.children(ma).is_empty());
    assert!(view.children(me).is_empty());
    assert!(view.children(md).is_empty());
    assert!(view.children(mc).is_empty());
    assert!(view.children(mb).is_empty());
    assert!(view.children(ma2).is_empty());
}

#[test]
fn fig2c_flat_view() {
    let (exp, _) = fig1::experiment();
    let mut view = View::flat(&exp);

    let module = child(&mut view, None, "a.out");
    let file1 = child(&mut view, Some(module), "file1.c");
    let file2 = child(&mut view, Some(module), "file2.c");
    assert_cell(&view, file1, "file1", 10.0, 1.0);
    assert_cell(&view, file2, "file2", 9.0, 8.0);

    let fx = child(&mut view, Some(file1), "f");
    let mx = child(&mut view, Some(file1), "m");
    let gx = child(&mut view, Some(file2), "g");
    let hx = child(&mut view, Some(file2), "h");
    assert_cell(&view, fx, "fx", 7.0, 1.0);
    assert_cell(&view, mx, "m", 10.0, 0.0);
    assert_cell(&view, gx, "gx", 9.0, 4.0);
    assert_cell(&view, hx, "hx", 4.0, 4.0);

    // Loops under hx: l1 (4,0) containing l2 (4,4).
    let l1 = child(&mut view, Some(hx), "loop at file2.c:8");
    let l2 = child(&mut view, Some(l1), "loop at file2.c:9");
    assert_cell(&view, l1, "l1", 4.0, 0.0);
    assert_cell(&view, l2, "l2", 4.0, 4.0);

    // Dynamic call-site nodes: gy under fx (6,1); fy (7,1) and gv (3,3)
    // under m; gz (5,1) and hy (4,0) under gx.
    let gy = child(&mut view, Some(fx), "g");
    assert_cell(&view, gy, "gy", 6.0, 1.0);
    let fy = child(&mut view, Some(mx), "f");
    let gv = child(&mut view, Some(mx), "g");
    assert_cell(&view, fy, "fy", 7.0, 1.0);
    assert_cell(&view, gv, "gv", 3.0, 3.0);
    let gz = child(&mut view, Some(gx), "g");
    let hy = child(&mut view, Some(gx), "h");
    assert_cell(&view, gz, "gz", 5.0, 1.0);
    assert_cell(&view, hy, "hy", 4.0, 0.0);

    // Node count sanity: Fig. 2c shows 13 scopes; we add the module root
    // and the statement leaves the figure elides.
    assert!(view.node_count() >= 13);
}

#[test]
fn consistency_across_views() {
    // The paper stresses that gx's inclusive 9 in the Flat View "is
    // consistently the same as the cost in Callers View" (ga = 9).
    let (exp, _) = fig1::experiment();
    let mut callers = View::callers(&exp);
    let mut flat = View::flat(&exp);
    let ga = child(&mut callers, None, "g");
    let module = child(&mut flat, None, "a.out");
    let file2 = child(&mut flat, Some(module), "file2.c");
    let gx = child(&mut flat, Some(file2), "g");
    assert_eq!(callers.value(I, ga), flat.value(I, gx));
    assert_eq!(callers.value(E, ga), flat.value(E, gx));
}

#[test]
fn rendered_calling_context_matches_figure_values() {
    let (exp, _) = fig1::experiment();
    let mut view = View::calling_context(&exp);
    let text = render(&mut view, &RenderConfig::default());
    // Spot-check a few rendered rows: m's inclusive 10 at 100%, h's 4 at
    // 40%.
    let m_row = text
        .lines()
        .find(|l| l.trim_start().starts_with("m "))
        .unwrap();
    assert!(m_row.contains("1.00e1"), "{m_row}");
    assert!(m_row.contains("100.0%"), "{m_row}");
    let h_row = text.lines().find(|l| l.contains("h ")).unwrap();
    assert!(h_row.contains("4.00e0"), "{h_row}");
    assert!(h_row.contains("40.0%"), "{h_row}");
}

#[test]
fn hot_path_of_fig1_follows_the_recursion() {
    // Hot path from m: f (7) >= 50% of 10, g1 (6) >= 50% of 7, g2 (5),
    // h (4), l1 (4), l2 (4), stmt (4).
    let (exp, n) = fig1::experiment();
    let mut view = View::calling_context(&exp);
    let path = view.hot_path(n.m.0, I, HotPathConfig::default());
    let labels: Vec<String> = path.iter().map(|&x| view.label(x)).collect();
    assert_eq!(
        labels,
        vec![
            "m",
            "f",
            "g",
            "g",
            "h",
            "loop at file2.c:8",
            "loop at file2.c:9",
            "file2.c:9"
        ]
    );
}
