//! E5 — Fig. 6 and Section VI-A: derived metrics for effective analysis.
//!
//! Paper facts (shape):
//! * sorting loops by the derived floating-point **waste** metric ranks
//!   the memory-streaming flux-diffusion loop first (≈13.5% of the total
//!   waste), even though compute loops consume far more cycles;
//! * its companion **relative efficiency** metric reports ≈6% for that
//!   loop (a "fat target for optimization") and ≈39% for the math
//!   library's exponential loop (tightly tuned, ranked next);
//! * after the paper's loop transformations the flux loop ran 2.9× faster
//!   — the `tuned` workload variant reproduces the before/after delta.

use callpath_core::prelude::*;
use callpath_profiler::ExecConfig;
use callpath_viewer::{render_flattened, RenderConfig};
use callpath_workloads::{pipeline, s3d};

/// Build the experiment and add the two derived metrics, exactly as an
/// analyst would: waste = cycles(E) × peak − flops(E); efficiency =
/// flops(E) / (cycles(E) × peak).
fn build(cfg: s3d::S3dConfig) -> (Experiment, ColumnId, ColumnId) {
    let mut exp = pipeline::build_experiment(&s3d::program(cfg), &ExecConfig::default());
    let cyc_e = exp.exclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());
    let fp_e = exp.exclusive_col(exp.raw.find("PAPI_FP_OPS").unwrap());
    let peak = s3d::PEAK_FLOPS_PER_CYCLE;
    let waste = exp
        .add_derived(
            "fp waste",
            &format!("${} * {} - ${}", cyc_e.0, peak, fp_e.0),
        )
        .unwrap();
    let eff = exp
        .add_derived(
            "rel efficiency",
            &format!("${} / (${} * {})", fp_e.0, cyc_e.0, peak),
        )
        .unwrap();
    (exp, waste, eff)
}

/// All loop nodes of the Flat View, as (label, view node id).
fn flat_loops(exp: &Experiment) -> (FlatView, Vec<(String, u32)>) {
    let flat = FlatView::build_eager(exp, StorageKind::Dense);
    let mut out = Vec::new();
    let mut stack: Vec<ViewNodeId> = flat.tree.roots();
    while let Some(n) = stack.pop() {
        if matches!(flat.tree.scope(n), ViewScope::Loop { .. }) {
            out.push((flat.tree.label(n, &exp.cct.names), n.0));
        }
        stack.extend(flat.tree.children(n));
    }
    (flat, out)
}

#[test]
fn waste_ranking_inverts_the_cycle_ranking() {
    let (exp, waste, _) = build(s3d::S3dConfig::default());
    let (flat, loops) = flat_loops(&exp);
    let cyc_e = exp.exclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());

    let mut by_waste = loops.clone();
    by_waste.sort_by(|a, b| {
        flat.tree
            .columns
            .get(waste, b.1)
            .partial_cmp(&flat.tree.columns.get(waste, a.1))
            .unwrap()
    });
    let mut by_cycles = loops.clone();
    by_cycles.sort_by(|a, b| {
        flat.tree
            .columns
            .get(cyc_e, b.1)
            .partial_cmp(&flat.tree.columns.get(cyc_e, a.1))
            .unwrap()
    });

    assert!(
        by_waste[0].0.starts_with("loop at diffflux.f90"),
        "flux loop tops the waste ranking: {:?}",
        by_waste.iter().map(|(l, _)| l).collect::<Vec<_>>()
    );
    assert!(
        !by_cycles[0].0.starts_with("loop at diffflux.f90"),
        "but NOT the raw cycle ranking: {:?}",
        by_cycles.iter().map(|(l, _)| l).collect::<Vec<_>>()
    );
    // The exp-routine loop ranks second by waste (the paper's second
    // finding in Fig. 6).
    assert!(
        by_waste[1].0.starts_with("loop at libm_exp.c"),
        "{:?}",
        by_waste.iter().map(|(l, _)| l).collect::<Vec<_>>()
    );
}

#[test]
fn flux_loop_waste_share_is_near_the_papers() {
    let (exp, waste, _) = build(s3d::S3dConfig::default());
    let (flat, loops) = flat_loops(&exp);
    let total_waste: f64 = loops
        .iter()
        .map(|&(_, n)| flat.tree.columns.get(waste, n))
        .sum();
    let flux = loops
        .iter()
        .find(|(l, _)| l.starts_with("loop at diffflux.f90"))
        .unwrap();
    let share = 100.0 * flat.tree.columns.get(waste, flux.1) / total_waste;
    // Paper: 13.5%. Our synthetic budget gives the same ballpark.
    assert!(
        (10.0..20.0).contains(&share),
        "flux waste share {share:.1}%"
    );
}

#[test]
fn relative_efficiency_matches_the_papers_numbers() {
    let (exp, _, eff) = build(s3d::S3dConfig::default());
    let (flat, loops) = flat_loops(&exp);
    let flux = loops
        .iter()
        .find(|(l, _)| l.starts_with("loop at diffflux.f90"))
        .unwrap();
    let exp_loop = loops
        .iter()
        .find(|(l, _)| l.starts_with("loop at libm_exp.c"))
        .unwrap();
    let flux_eff = flat.tree.columns.get(eff, flux.1);
    let exp_eff = flat.tree.columns.get(eff, exp_loop.1);
    assert!(
        (flux_eff - 0.06).abs() < 0.01,
        "flux efficiency {flux_eff:.3}"
    );
    assert!((exp_eff - 0.39).abs() < 0.03, "exp efficiency {exp_eff:.3}");
}

#[test]
fn tuned_flux_loop_runs_2_9x_faster() {
    let (base, ..) = build(s3d::S3dConfig::default());
    let (tuned, ..) = build(s3d::S3dConfig::tuned());
    let find_flux = |exp: &Experiment| -> f64 {
        let (flat, loops) = flat_loops(exp);
        let cyc_e = exp.exclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());
        loops
            .iter()
            .find(|(l, _)| l.starts_with("loop at diffflux.f90"))
            .map(|&(_, n)| flat.tree.columns.get(cyc_e, n))
            .unwrap()
    };
    let speedup = find_flux(&base) / find_flux(&tuned);
    assert!((speedup - 2.9).abs() < 0.15, "flux speedup {speedup:.2}x");
}

#[test]
fn sorting_by_derived_metric_beats_mental_arithmetic() {
    // The paper's point: a derived column can drive the sort. Render the
    // flattened loop list sorted by waste and check the flux loop leads.
    let (exp, waste, eff) = build(s3d::S3dConfig::default());
    let mut flat = FlatView::build(&exp, StorageKind::Dense);
    let start = flat.tree.roots();
    let roots = flat.flatten(&exp, &start, 3);
    let ids: Vec<u32> = roots.iter().map(|n| n.0).collect();
    let mut view = View::Flat {
        exp: &exp,
        view: flat,
    };
    let text = render_flattened(
        &mut view,
        &ids,
        &RenderConfig {
            sort: Some(waste),
            columns: vec![waste, eff],
            ..Default::default()
        },
    );
    let first_loop_row = text
        .lines()
        .skip(2)
        .find(|l| l.contains("loop at"))
        .unwrap();
    assert!(
        first_loop_row.contains("diffflux.f90"),
        "waste-sorted view leads with the flux loop:\n{text}"
    );
}

#[test]
fn derived_columns_agree_across_views() {
    // The same derived formula evaluated on CCV, Callers and Flat
    // aggregates must agree on the whole-program row.
    let (exp, waste, _) = build(s3d::S3dConfig::default());
    let ccv_root_val = {
        let view = View::calling_context(&exp);
        let roots = view.roots();
        view.value(waste, roots[0])
    };
    assert!(ccv_root_val.is_finite());
    assert!(ccv_root_val >= 0.0);
    // Aggregate (@-value) equals formula over aggregates.
    let agg = exp.aggregate(waste);
    assert!(agg > 0.0);
}
