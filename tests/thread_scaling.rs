//! Thread-scaling bench (run via `scripts/bench_smoke.sh`): measure
//! parallel ingestion and `decode_all` at `threads ∈ {1, 2, 4, 8}` and
//! emit `BENCH_thread_scaling.json` — the multi-core curve ROADMAP open
//! item 3 asked for, recorded honestly (`cores` comes from
//! `available_parallelism`; `speedup` is null on a single-core host
//! where every thread count runs the same hardware).
//!
//! One assertion is measurable *regardless* of core count and gates
//! the tentpole of this PR: the pruned-journal pairwise merge does
//! strictly less reduction work than the old full-journal serial
//! replay, so sharded ingest at `threads = 4` must beat the old path
//! even when both are pinned to one core.
//!
//! `#[ignore]`d by default: timing assertions belong in release builds
//! on a quiet machine, not in every `cargo test` run.

use callpath_core::prelude::*;
use callpath_expdb::{bin2, decode_all, open_lazy_path};
use callpath_prof::{correlate_replay_baseline, ParallelCorrelator};
use callpath_profiler::{execute, lower, ExecConfig, RawProfile};
use callpath_workloads::s3d::{self, S3dConfig};
use callpath_workloads::synth::{synth_model, SynthConfig};
use std::time::Instant;

const THREAD_POINTS: [usize; 4] = [1, 2, 4, 8];
const N_RANKS: usize = 64;
/// min-of-N timing for the (fast) ingest measurements.
const INGEST_ITERS: usize = 3;
/// `decode_all` on the million-node workload runs for seconds per
/// sample — long enough to be stable without repetition.
const DECODE_ITERS: usize = 1;
/// The new reduction does strictly less work than the old replay; 5%
/// headroom absorbs scheduler noise, nothing more.
const REPLAY_GATE_RATIO: f64 = 1.05;

fn min_ms(iters: usize, mut run: impl FnMut()) -> f64 {
    (0..iters)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// s3d across 64 simulated ranks, perf_smoke-style: same binary, each
/// rank with its own work scale and jitter stream.
fn s3d_ranks() -> (callpath_structure::Structure, Vec<RawProfile>, ExecConfig) {
    let bin = lower(&s3d::program(S3dConfig::default()));
    let base = ExecConfig::default();
    let profiles = (0..N_RANKS)
        .map(|r| {
            let cfg = ExecConfig {
                work_scale: 1.0 + (r % 8) as f64 * 0.25,
                jitter_seed: Some(3 + r as u64),
                ..base.clone()
            };
            execute(&bin, &cfg).unwrap().profile
        })
        .collect();
    (callpath_structure::recover(&bin).unwrap(), profiles, base)
}

/// JSON rows for one curve: `[{"threads": 1, "ms": 12.3, "speedup": null}, ...]`.
fn curve_json(points: &[(usize, f64)], cores: usize) -> String {
    let base_ms = points
        .iter()
        .find(|&&(t, _)| t == 1)
        .map(|&(_, ms)| ms)
        .unwrap_or(f64::NAN);
    let rows: Vec<String> = points
        .iter()
        .map(|&(threads, ms)| {
            let speedup = if cores == 1 {
                "null".to_owned()
            } else {
                format!("{:.2}", base_ms / ms.max(1e-9))
            };
            format!("    {{ \"threads\": {threads}, \"ms\": {ms:.3}, \"speedup\": {speedup} }}")
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

#[test]
#[ignore = "wall-clock scaling bench; run via scripts/bench_smoke.sh"]
fn thread_scaling_curve() {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // --- Ingestion: s3d × 64 ranks. -------------------------------
    let (structure, profiles, cfg) = s3d_ranks();
    let mut ingest_points: Vec<(usize, f64)> = Vec::new();
    for &threads in &THREAD_POINTS {
        let par = ParallelCorrelator::new(&structure, cfg.periods).with_threads(threads);
        let ms = min_ms(INGEST_ITERS, || {
            std::hint::black_box(par.correlate(&profiles, StorageKind::Csr));
        });
        ingest_points.push((threads, ms));
    }
    // The pre-PR reduction: full journals, serial O(total visits)
    // replay. Same shard fan-out width as the t=4 point above, so the
    // difference is purely the reduction strategy.
    let baseline_ms = min_ms(INGEST_ITERS, || {
        std::hint::black_box(correlate_replay_baseline(
            &structure,
            cfg.periods,
            &profiles,
            4,
            StorageKind::Csr,
        ));
    });
    let new_t4_ms = ingest_points
        .iter()
        .find(|&&(t, _)| t == 4)
        .map(|&(_, ms)| ms)
        .expect("t=4 point measured");
    assert!(
        new_t4_ms <= baseline_ms * REPLAY_GATE_RATIO,
        "pruned pairwise merge at t=4 ({new_t4_ms:.3} ms) must beat the old \
         full-journal replay ({baseline_ms:.3} ms) — it does strictly less work, \
         so this holds even on one core"
    );

    // --- decode_all: million-node synthetic, 32 columns. ----------
    // 32 metrics keeps a 4-point curve inside the script budget (the
    // zero-copy bench pays ~3.5 minutes for all 1024 columns once).
    let synth_cfg = SynthConfig {
        n_metrics: 32,
        nnz_per_metric: 1024,
        ..SynthConfig::million()
    };
    let v21 = bin2::write_v21(&synth_model(&synth_cfg));
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target");
    std::fs::create_dir_all(&dir).unwrap();
    let db_path = dir.join("thread_scaling.cpdb");
    std::fs::write(&db_path, &v21).expect("write synthetic database");

    let pool_before = callpath_core::pool::stats();
    let mut decode_points: Vec<(usize, f64)> = Vec::new();
    for &threads in &THREAD_POINTS {
        let ms = min_ms(DECODE_ITERS, || {
            let e = open_lazy_path(&db_path).unwrap();
            decode_all(&e, threads);
            std::hint::black_box(&e);
        });
        decode_points.push((threads, ms));
    }
    let pool_after = callpath_core::pool::stats();

    let record = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"thread_scaling\",\n",
            "  \"cores\": {},\n",
            "  \"ingest_workload\": \"s3d x {} ranks\",\n",
            "  \"ingest_iters\": {},\n",
            "  \"ingest_points\": {},\n",
            "  \"ingest_replay_baseline_t4_ms\": {:.3},\n",
            "  \"replay_gate_ratio\": {:.2},\n",
            "  \"decode_workload\": \"synthetic CCT, {} nodes x {} metrics\",\n",
            "  \"decode_iters\": {},\n",
            "  \"decode_points\": {},\n",
            "  \"pool_tasks_run\": {},\n",
            "  \"pool_tasks_stolen\": {}\n",
            "}}\n"
        ),
        cores,
        N_RANKS,
        INGEST_ITERS,
        curve_json(&ingest_points, cores),
        baseline_ms,
        REPLAY_GATE_RATIO,
        synth_cfg.n_nodes + 1,
        synth_cfg.n_metrics,
        DECODE_ITERS,
        curve_json(&decode_points, cores),
        pool_after.tasks_run - pool_before.tasks_run,
        pool_after.tasks_stolen - pool_before.tasks_stolen,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_thread_scaling.json");
    std::fs::write(&path, &record).expect("write perf record");
    println!("perf record written to {}:\n{record}", path.display());
}
