//! Byte-exact golden snapshot of the rendered Calling Context View for the
//! Fig. 1 experiment: pins the whole presentation stack — sorting, fused
//! call-site lines, scientific notation, blank zero cells, percentage
//! formatting — in one assertion.

use callpath_core::prelude::*;
use callpath_viewer::{render, RenderConfig};
use callpath_workloads::fig1;

const EXPECTED_CCV: &str = include_str!("data/fig1_ccv.golden");
const EXPECTED_CALLERS: &str = include_str!("data/fig1_callers.golden");
const EXPECTED_FLAT: &str = include_str!("data/fig1_flat.golden");

#[test]
fn fig1_calling_context_renders_byte_exact() {
    let (exp, _) = fig1::experiment();
    let mut view = View::calling_context(&exp);
    let text = render(&mut view, &RenderConfig::default());
    // Normalize: the header's separator width depends on column count
    // only, so compare the whole thing directly.
    assert_eq!(text, EXPECTED_CCV, "rendered:\n{text}");
}

#[test]
fn fig1_callers_view_renders_byte_exact() {
    let (exp, _) = fig1::experiment();
    let mut view = View::callers(&exp);
    let text = render(&mut view, &RenderConfig::default());
    assert_eq!(text, EXPECTED_CALLERS, "rendered:\n{text}");
}

#[test]
fn fig1_flat_view_renders_byte_exact() {
    let (exp, _) = fig1::experiment();
    let mut view = View::flat(&exp);
    let text = render(&mut view, &RenderConfig::default());
    assert_eq!(text, EXPECTED_FLAT, "rendered:\n{text}");
}

#[test]
fn rendering_the_same_view_twice_is_identical() {
    let (exp, _) = fig1::experiment();
    let a = render(&mut View::callers(&exp), &RenderConfig::default());
    let b = render(&mut View::callers(&exp), &RenderConfig::default());
    assert_eq!(a, b);
    let fa = render(&mut View::flat(&exp), &RenderConfig::default());
    let fb = render(&mut View::flat(&exp), &RenderConfig::default());
    assert_eq!(fa, fb);
}
