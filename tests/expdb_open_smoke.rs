//! Storage-path smoke test (run via `scripts/bench_smoke.sh`): measure
//! cold-open, first-render and full-decode latency of the experiment
//! database formats on the s3d workload and emit a JSON perf record
//! (`BENCH_expdb_open.json`).
//!
//! The acceptance criterion for the format-v2 tentpole lives here: the
//! lazy v2 open (topology only) **and** the v2 first render (fault in
//! just the sorted column) must both beat a full v1 parse.
//!
//! "First render" is the interactive first paint: open the database,
//! start a session on the Calling Context View, show only the column the
//! view sorts by (the metric-properties dialog), run hot-path analysis
//! and render. On v2 that faults exactly one presentation column; XML
//! and v1 pay their full parse first.
//!
//! `#[ignore]`d by default: timing assertions belong in release builds
//! on a quiet machine, not in every `cargo test` run.

use callpath_core::prelude::*;
use callpath_core::source::SourceStore;
use callpath_expdb::{
    decode_all, from_binary, from_xml, open_lazy, to_binary, to_binary_v2, to_binary_v21, to_xml,
};
use callpath_profiler::ExecConfig;
use callpath_viewer::{Command, Session};
use callpath_workloads::{pipeline, s3d};
use std::time::Instant;

const ITERS: usize = 21;

/// Median of `ITERS` timed runs, in milliseconds.
fn p50_ms(mut run: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[ITERS / 2]
}

/// The first-paint session script: one sorted visible column, hot path,
/// render. Returns the rendered text so the work cannot be optimized out.
fn first_render(exp: &Experiment) -> String {
    let mut session = Session::new(exp, SourceStore::new());
    for c in 1..exp.columns.column_count() as u32 {
        session.apply(Command::HideColumn(ColumnId(c))).unwrap();
    }
    session.apply(Command::SortBy(ColumnId(0))).unwrap();
    session.apply(Command::HotPath).unwrap();
    session.render()
}

const RANKS: usize = 64;

/// The s3d workload at database scale: one raw metric column **per
/// simulated rank** per counter, the shape real HPCToolkit databases
/// have (and the reason its later sparse formats load measurement data
/// on demand). Rank columns are the base s3d profile scaled by a
/// deterministic per-rank imbalance factor.
fn s3d_rank_database() -> Experiment {
    let base = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    let n_nodes = base.cct.len() as u32;
    let mut raw = RawMetrics::new(StorageKind::Csr);
    for r in 0..RANKS {
        let scale = 1.0 + (r % 8) as f64 * 0.03;
        for m in 0..base.raw.metric_count() as u32 {
            let desc = base.raw.desc(MetricId(m));
            let id = raw.add_metric(MetricDesc::new(
                &format!("{}@{r:03}", desc.name),
                &desc.unit,
                desc.period,
            ));
            let costs: Vec<(NodeId, f64)> = (0..n_nodes)
                .filter_map(|n| {
                    let v = base.raw.direct(MetricId(m), NodeId(n));
                    (v != 0.0).then_some((NodeId(n), v * scale))
                })
                .collect();
            raw.add_costs(id, &costs);
        }
    }
    Experiment::build(base.cct.clone(), raw, StorageKind::Csr)
}

#[test]
#[ignore = "wall-clock smoke test; run via scripts/bench_smoke.sh"]
fn expdb_open_smoke() {
    let exp = s3d_rank_database();
    let xml = to_xml(&exp);
    let v1 = to_binary(&exp);
    let v2 = to_binary_v2(&exp);
    let v21 = to_binary_v21(&exp);

    let xml_cold = p50_ms(|| {
        std::hint::black_box(from_xml(&xml).unwrap());
    });
    let xml_first = p50_ms(|| {
        let e = from_xml(&xml).unwrap();
        std::hint::black_box(first_render(&e));
    });
    let v1_cold = p50_ms(|| {
        std::hint::black_box(from_binary(&v1).unwrap());
    });
    let v1_first = p50_ms(|| {
        let e = from_binary(&v1).unwrap();
        std::hint::black_box(first_render(&e));
    });
    let v2_cold = p50_ms(|| {
        std::hint::black_box(open_lazy(v2.clone()).unwrap());
    });
    let v2_first = p50_ms(|| {
        let e = open_lazy(v2.clone()).unwrap();
        std::hint::black_box(first_render(&e));
    });
    let v2_decode_all = p50_ms(|| {
        let e = open_lazy(v2.clone()).unwrap();
        decode_all(&e, 0);
        std::hint::black_box(&e);
    });
    let v21_cold = p50_ms(|| {
        std::hint::black_box(open_lazy(v21.clone()).unwrap());
    });
    let v21_first = p50_ms(|| {
        let e = open_lazy(v21.clone()).unwrap();
        std::hint::black_box(first_render(&e));
    });
    let v21_decode_all = p50_ms(|| {
        let e = open_lazy(v21.clone()).unwrap();
        decode_all(&e, 0);
        std::hint::black_box(&e);
    });

    // The tentpole's acceptance gate: the lazy open and the lazy first
    // paint both strictly beat a full v1 parse.
    assert!(
        v2_cold < v1_cold,
        "v2 lazy cold open ({v2_cold:.3} ms) must beat the v1 full parse ({v1_cold:.3} ms)"
    );
    assert!(
        v2_first < v1_cold,
        "v2 first render ({v2_first:.3} ms) must beat the v1 full parse ({v1_cold:.3} ms)"
    );

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let record = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"expdb_open\",\n",
            "  \"workload\": \"s3d, one metric column per rank\",\n",
            "  \"cores\": {},\n",
            "  \"mode\": \"single_thread\",\n",
            "  \"ranks\": {},\n",
            "  \"cct_nodes\": {},\n",
            "  \"metrics\": {},\n",
            "  \"iters\": {},\n",
            "  \"first_render_scenario\": \"CCV hot path, single sorted column\",\n",
            "  \"xml_bytes\": {},\n",
            "  \"v1_bytes\": {},\n",
            "  \"v2_bytes\": {},\n",
            "  \"v21_bytes\": {},\n",
            "  \"xml_cold_open_p50_ms\": {:.3},\n",
            "  \"xml_first_render_p50_ms\": {:.3},\n",
            "  \"v1_cold_open_p50_ms\": {:.3},\n",
            "  \"v1_first_render_p50_ms\": {:.3},\n",
            "  \"v2_cold_open_p50_ms\": {:.3},\n",
            "  \"v2_first_render_p50_ms\": {:.3},\n",
            "  \"v2_decode_all_p50_ms\": {:.3},\n",
            "  \"v21_cold_open_p50_ms\": {:.3},\n",
            "  \"v21_first_render_p50_ms\": {:.3},\n",
            "  \"v21_decode_all_p50_ms\": {:.3}\n",
            "}}\n"
        ),
        cores,
        RANKS,
        exp.cct.len(),
        exp.raw.metric_count(),
        ITERS,
        xml.len(),
        v1.len(),
        v2.len(),
        v21.len(),
        xml_cold,
        xml_first,
        v1_cold,
        v1_first,
        v2_cold,
        v2_first,
        v2_decode_all,
        v21_cold,
        v21_first,
        v21_decode_all,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_expdb_open.json");
    std::fs::write(&path, &record).expect("write perf record");
    println!("perf record written to {}:\n{record}", path.display());
}
