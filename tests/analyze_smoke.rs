//! Analysis-path bench (run via `scripts/bench_smoke.sh`): query
//! evaluation over a large lazily opened v2.1 database at
//! `threads ∈ {1, 2, 4, 8}`, a detector run on the s3d fixture, and
//! the perf gate over the repo's own committed BENCH records. Emits
//! `BENCH_analyze.json`.
//!
//! Honesty rules follow `BENCH_thread_scaling.json`: `cores` comes
//! from `available_parallelism` and `speedup` is null on a single-core
//! host. The timing fields are trajectory records gated by
//! `scripts/perf_policy.toml`, not asserted here; the hard assertions
//! are the lazy-fault and correctness invariants that must hold at any
//! speed.
//!
//! `#[ignore]`d by default: timing assertions belong in release builds
//! on a quiet machine, not in every `cargo test` run.

use callpath_analyze::{
    derived_waste, gate::parse_policy, gate_records, load_bench_records, run_query, WasteConfig,
};
use callpath_expdb::{open_lazy_path, to_binary_v21};
use callpath_profiler::ExecConfig;
use callpath_workloads::generator::random_experiment;
use callpath_workloads::{pipeline, s3d};
use std::time::Instant;

const THREAD_POINTS: [usize; 4] = [1, 2, 4, 8];
/// Queries are millisecond-scale targets: min-of-N smooths page-cache
/// and scheduler noise.
const ITERS: usize = 5;

/// The composite query the bench times: one structural leaf, one
/// inclusive-percent leaf (stored aggregate, no extra fault) and one
/// exclusive threshold — two metric columns fault, nothing else.
const QUERY: &str = r#"subtree(proc ~ "proc_00[0-7].") and incl("cycles") > 1% or (excl("cycles") > 0 and file ~ "synth_1\.c")"#;

fn min_ms(iters: usize, mut run: impl FnMut()) -> f64 {
    (0..iters)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// JSON rows for one curve: `[{"threads": 1, "ms": 12.3, "speedup": null}, ...]`.
fn curve_json(points: &[(usize, f64)], cores: usize) -> String {
    let base_ms = points
        .iter()
        .find(|&&(t, _)| t == 1)
        .map(|&(_, ms)| ms)
        .unwrap_or(f64::NAN);
    let rows: Vec<String> = points
        .iter()
        .map(|&(threads, ms)| {
            let speedup = if cores == 1 {
                "null".to_owned()
            } else {
                format!("{:.2}", base_ms / ms.max(1e-9))
            };
            format!("    {{ \"threads\": {threads}, \"ms\": {ms:.3}, \"speedup\": {speedup} }}")
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

#[test]
#[ignore = "wall-clock bench; run via scripts/bench_smoke.sh"]
fn analyze_smoke() {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let repo = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));

    // --- Build + persist the large database once. -----------------
    let t = Instant::now();
    let exp = random_experiment(0xA11CE, 200_000, 256);
    let nodes = exp.cct.len();
    let gen_ms = t.elapsed().as_secs_f64() * 1e3;
    let bytes = to_binary_v21(&exp);
    let dir = repo.join("target");
    std::fs::create_dir_all(&dir).unwrap();
    let db_path = dir.join("analyze_smoke.cpdb");
    std::fs::write(&db_path, &bytes).expect("write synthetic database");

    // --- Cold open + sorted query, per thread count. --------------
    // Every iteration reopens the file, so the curve includes the
    // mmap open and the two column faults the query causes.
    let mut matched = 0usize;
    let mut faulted = usize::MAX;
    let mut cold_points: Vec<(usize, f64)> = Vec::new();
    for &threads in &THREAD_POINTS {
        let ms = min_ms(ITERS, || {
            let lazy = open_lazy_path(&db_path).unwrap();
            let report = run_query(&lazy, QUERY, Some("cycles (I)"), 25, threads).unwrap();
            matched = report.matched;
            faulted = lazy.columns.materialized_columns();
            std::hint::black_box(report);
        });
        cold_points.push((threads, ms));
    }
    assert!(matched > 0, "the bench query must match contexts");
    assert!(
        faulted <= 2,
        "the query names two metric columns; {faulted} faulted"
    );

    // --- Warm query: same experiment, evaluation cost only. -------
    let lazy = open_lazy_path(&db_path).unwrap();
    let mut warm_points: Vec<(usize, f64)> = Vec::new();
    for &threads in &THREAD_POINTS {
        let ms = min_ms(ITERS, || {
            std::hint::black_box(run_query(&lazy, QUERY, Some("cycles (I)"), 25, threads).unwrap());
        });
        warm_points.push((threads, ms));
    }

    // --- One canned detector on a real fixture. -------------------
    let s3d = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    let mut waste_score = f64::NAN;
    let waste_ms = min_ms(ITERS, || {
        let v =
            derived_waste(&s3d, "PAPI_TOT_CYC", "PAPI_FP_OPS", &WasteConfig::default()).unwrap();
        waste_score = v.score;
        std::hint::black_box(v);
    });

    // --- The perf gate over the repo's own records. ---------------
    let policy =
        parse_policy(&std::fs::read_to_string(repo.join("scripts/perf_policy.toml")).unwrap())
            .unwrap();
    let records = load_bench_records(repo).unwrap();
    assert!(!records.is_empty(), "the repo carries BENCH_*.json records");
    let mut gated_rows = 0usize;
    let gate_ms = min_ms(ITERS, || {
        let report = gate_records(&records, &records, &policy);
        assert!(!report.failed, "a zero-delta self-gate can never fail");
        gated_rows = report.rows.len();
        std::hint::black_box(report);
    });
    assert!(gated_rows > 0, "the committed policy must gate fields");

    let record = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"analyze\",\n",
            "  \"cores\": {},\n",
            "  \"workload\": \"synthetic v2.1 database, {} contexts, 256 procs\",\n",
            "  \"generate_ms\": {:.1},\n",
            "  \"file_bytes\": {},\n",
            "  \"query\": {:?},\n",
            "  \"query_iters\": {},\n",
            "  \"query_matched\": {},\n",
            "  \"columns_faulted_by_query\": {},\n",
            "  \"cold_open_query_points\": {},\n",
            "  \"warm_query_points\": {},\n",
            "  \"waste_detector_ms\": {:.3},\n",
            "  \"waste_detector_score\": {:.4},\n",
            "  \"gate_records\": {},\n",
            "  \"gate_rows\": {},\n",
            "  \"gate_ms\": {:.3}\n",
            "}}\n"
        ),
        cores,
        nodes,
        gen_ms,
        bytes.len(),
        QUERY,
        ITERS,
        matched,
        faulted,
        curve_json(&cold_points, cores),
        curve_json(&warm_points, cores),
        waste_ms,
        waste_score,
        records.len(),
        gated_rows,
        gate_ms,
    );
    let path = repo.join("BENCH_analyze.json");
    std::fs::write(&path, &record).expect("write perf record");
    println!("perf record written to {}:\n{record}", path.display());
}
