//! Ensemble determinism properties: the N-way union supergraph and its
//! `.cpens` serialization are pure functions of the *set* of runs —
//! byte-identical across input orderings, worker counts, duplicated
//! runs and empty runs — and the container rejects corruption instead
//! of misreading it.
//!
//! The worker count is exercised two ways: explicit `threads` arguments
//! in-process (the env var is `OnceLock`-cached per process), and
//! `CALLPATH_THREADS` itself across subprocesses of the
//! `callpath-ensemble` binary.

use callpath_core::prelude::*;
use callpath_ensemble::{build, build_union, RunData};
use callpath_expdb::ens;
use proptest::prelude::*;
use std::process::Command;

/// One synthetic run: a chain of frames drawn from a tiny proc pool,
/// with sparse costs on the chain.
fn chain_run(label: &str, path: &[usize], costs: &[(u32, f64)]) -> RunData {
    const POOL: [&str; 5] = ["main", "alpha", "beta", "gamma", "delta"];
    let mut names = NameTable::new();
    let file = names.file("x.c");
    let module = names.module("x");
    let ids: Vec<ProcId> = POOL.iter().map(|p| names.proc(p)).collect();
    let mut cct = Cct::new(names);
    let mut parent = cct.root();
    for (depth, &p) in path.iter().enumerate() {
        parent = cct.add_child(
            parent,
            ScopeKind::Frame {
                proc: ids[p % POOL.len()],
                module,
                def: SourceLoc::new(file, 10 * (depth as u32 + 1)),
                call_site: None,
            },
        );
    }
    let n = cct.len() as u32;
    RunData {
        label: label.into(),
        cct,
        metrics: vec![MetricDesc::new("cycles", "ev", 1.0)],
        costs: vec![costs.iter().map(|&(node, v)| (node % n, v)).collect()],
    }
}

/// Strategy: 2–6 runs, each a 1–4 deep chain with 0–4 quantized costs.
fn runs_strategy() -> impl Strategy<Value = Vec<RunData>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..5, 1..5),
            proptest::collection::vec((0u32..6, 0u32..1000), 0..5),
        ),
        2..7,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (path, raw))| {
                let costs: Vec<(u32, f64)> =
                    raw.into_iter().map(|(n, v)| (n, v as f64 / 8.0)).collect();
                chain_run(&format!("run-{i}"), &path, &costs)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `.cpens` bytes are invariant under run order (rotation and
    /// reversal) and worker count, and every parallel split equals the
    /// sequential left-to-right fold (`threads = 1`).
    #[test]
    fn cpens_bytes_are_order_and_thread_invariant(
        runs in runs_strategy(),
        rot in 0usize..6,
    ) {
        let sequential = build(&runs, 1).to_bytes();
        let mut rotated = runs.clone();
        let k = rot % rotated.len();
        rotated.rotate_left(k);
        let mut reversed = runs.clone();
        reversed.reverse();
        for t in [1usize, 2, 3, 8] {
            prop_assert_eq!(&build(&rotated, t).to_bytes(), &sequential, "rotated, t={}", t);
            prop_assert_eq!(&build(&reversed, t).to_bytes(), &sequential, "reversed, t={}", t);
        }
    }

    /// Duplicating a run adds no contexts to the union, and an empty
    /// run (root only, no costs) changes neither the topology nor the
    /// determinism of the result.
    #[test]
    fn duplicates_and_empty_runs_are_harmless(runs in runs_strategy()) {
        let base_nodes = build_union(&runs, 1).cct.len();

        let mut with_dup = runs.clone();
        with_dup.push(runs[0].clone());
        prop_assert_eq!(build_union(&with_dup, 3).cct.len(), base_nodes);

        let mut with_empty = runs.clone();
        with_empty.push(chain_run("zz-empty", &[0usize; 0], &[(0u32, 0.0f64); 0]));
        prop_assert_eq!(build_union(&with_empty, 3).cct.len(), base_nodes);
        let reference = build(&with_empty, 1).to_bytes();
        for t in [2usize, 8] {
            prop_assert_eq!(&build(&with_empty, t).to_bytes(), &reference, "t={}", t);
        }
    }

    /// Truncations and bit flips of a written container are rejected
    /// (structured error), never misread or panicking.
    #[test]
    fn corrupt_containers_are_rejected(
        runs in runs_strategy(),
        cut_frac in 0.0f64..1.0,
        flip_at in 0usize..1 << 20,
        flip_bit in 0u8..8,
    ) {
        let bytes = build(&runs, 1).to_bytes();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("callpath-ens-prop-{}.cpens", std::process::id()));

        // Truncation: every proper prefix must fail to open.
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut.min(bytes.len() - 1)]).unwrap();
        prop_assert!(ens::open(&path).is_err(), "truncated to {} bytes", cut);

        // A single bit flip must fail verification or change content;
        // `open` validates structure, `verify_container` the payloads.
        let mut flipped = bytes.clone();
        let at = flip_at % flipped.len();
        flipped[at] ^= 1 << flip_bit;
        std::fs::write(&path, &flipped).unwrap();
        let survives = match ens::open(&path) {
            Err(_) => true,
            Ok(_) => callpath_expdb::verify_container(&flipped).is_err(),
        };
        prop_assert!(survives, "flip at byte {} bit {} went undetected", at, flip_bit);
        std::fs::remove_file(&path).ok();
    }
}

/// `CALLPATH_THREADS` is read once per process, so the env-var leg of
/// the determinism property runs the real binary: the same synthetic
/// build must produce byte-identical `.cpens` files at every setting.
#[test]
fn env_thread_counts_produce_identical_files() {
    let bin = env!("CARGO_BIN_EXE_callpath-ensemble");
    let dir = std::env::temp_dir();
    let mut outputs = Vec::new();
    for threads in ["1", "2", "3", "8"] {
        let path = dir.join(format!(
            "callpath-ens-env-{}-t{threads}.cpens",
            std::process::id()
        ));
        let out = Command::new(bin)
            .args(["build", path.to_str().unwrap(), "--synth", "12"])
            .env("CALLPATH_THREADS", threads)
            .output()
            .expect("run callpath-ensemble");
        assert!(
            out.status.success(),
            "CALLPATH_THREADS={threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push(std::fs::read(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }
    assert!(
        outputs.windows(2).all(|w| w[0] == w[1]),
        "ensemble bytes differ across CALLPATH_THREADS settings"
    );
}
