//! Failure injection: corrupt inputs anywhere in the pipeline must
//! produce errors, never panics or silent misattribution.

use callpath_core::prelude::*;
use callpath_profiler::{
    execute, lower, Addr, Binary, Costs, Counter, ExecConfig, InlineRange, Instr, InstrKind,
    LineInfo, Op, ProgramBuilder, RawProfile, NO_CALL,
};
use callpath_structure::recover;

fn sample_binary() -> Binary {
    let mut b = ProgramBuilder::new("app");
    let f = b.file("a.c");
    let work = b.declare("work", f, 10);
    let main = b.declare("main", f, 1);
    b.body(
        work,
        vec![Op::looped(11, 4, vec![Op::work(12, Costs::cycles(100))])],
    );
    b.body(main, vec![Op::call(3, work)]);
    b.entry(main);
    lower(&b.build())
}

#[test]
fn crossing_scope_ranges_are_rejected() {
    let mut bin = sample_binary();
    // Inject an inline range that crosses the loop's range.
    let branch_addr = (0..bin.code.len() as Addr)
        .find(|&a| matches!(bin.instr(a).kind, InstrKind::Branch { .. }))
        .unwrap();
    bin.inline_ranges.push(InlineRange {
        lo: branch_addr,
        hi: branch_addr + 2, // extends past the loop's end but starts inside
        callee_name: "evil".into(),
        callee_file: 0,
        callee_def_line: 1,
        call_site: LineInfo { file: 0, line: 1 },
    });
    let err = recover(&bin).unwrap_err();
    assert!(err.contains("crossing"), "{err}");
}

#[test]
fn binary_validation_catches_corruption() {
    let mut bin = sample_binary();
    // Remove the final Ret.
    let last = bin.code.len() - 1;
    bin.code[last] = Instr {
        kind: InstrKind::Work {
            costs: Costs::cycles(1),
            scalable: true,
        },
        loc: LineInfo { file: 0, line: 1 },
    };
    assert!(bin.validate().unwrap_err().contains("Ret"));

    let mut bin = sample_binary();
    // Turn the backward branch into a forward one.
    for i in 0..bin.code.len() {
        if let InstrKind::Branch { target, trips } = bin.code[i].kind {
            let _ = target;
            bin.code[i].kind = InstrKind::Branch {
                target: bin.code.len() as Addr - 1,
                trips,
            };
        }
    }
    assert!(bin.validate().unwrap_err().contains("forward branch"));
}

#[test]
fn execution_of_truncated_program_is_bounded() {
    let bin = sample_binary();
    let res = execute(
        &bin,
        &ExecConfig {
            max_steps: 3,
            ..ExecConfig::default()
        },
    );
    assert!(res.unwrap_err().contains("exceeded"));
}

#[test]
fn correlation_tolerates_profiles_with_unknown_addresses() {
    // A raw profile whose leaf address maps to no procedure: the sample
    // cannot be attributed to a frame interior, but correlation must not
    // panic — in real life this is a sample in an unmapped region.
    let bin = sample_binary();
    let structure = recover(&bin).unwrap();
    let mut profile = RawProfile::new();
    // A legitimate path plus an out-of-range leaf within it: line_of would
    // be out of bounds, so the correlator's proc lookup must guard it.
    let entry_call = NO_CALL;
    profile.add_path(&[(entry_call, bin.entry)], 0, Counter::Cycles, 1.0);
    let mut periods = [0u64; Counter::COUNT];
    periods[Counter::Cycles as usize] = 1;
    // Should not panic; the in-range sample attributes fine.
    let exp = callpath_prof::correlate(&structure, &profile, periods, StorageKind::Dense);
    assert!(exp.cct.len() >= 2);
}

#[test]
fn nan_and_negative_costs_do_not_break_attribution() {
    // Post-processing (e.g. differencing) can inject negative values;
    // NaNs must not propagate silently into sorts.
    let mut names = NameTable::new();
    let file = names.file("x.c");
    let module = names.module("x");
    let p = names.proc("p");
    let mut cct = Cct::new(names);
    let root = cct.root();
    let frame = cct.add_child(
        root,
        ScopeKind::Frame {
            proc: p,
            module,
            def: SourceLoc::new(file, 1),
            call_site: None,
        },
    );
    let s = cct.add_child(
        frame,
        ScopeKind::Stmt {
            loc: SourceLoc::new(file, 2),
        },
    );
    let mut raw = RawMetrics::new(StorageKind::Dense);
    let m = raw.add_metric(MetricDesc::new("delta", "cycles", 1.0));
    raw.add_cost(m, s, -50.0);
    let exp = Experiment::build(cct, raw, StorageKind::Dense);
    assert_eq!(exp.columns.get(ColumnId(0), root.0), -50.0);
    // Sorting a view with negative values stays total.
    let mut view = View::calling_context(&exp);
    let mut nodes = view.roots();
    let kids = view.children(nodes[0]);
    nodes.extend(kids);
    sort_by_column(&view, &mut nodes, ColumnId(0));
    assert_eq!(nodes.len(), 2);
}

#[test]
fn structure_recovery_of_empty_program_fails_cleanly() {
    // A binary with a proc whose range is empty is invalid.
    let mut bin = sample_binary();
    bin.procs[0].hi = bin.procs[0].lo;
    assert!(bin.validate().is_err());
}

#[test]
fn expdb_rejects_self_parented_nodes() {
    let exp = callpath_workloads::generator::random_experiment(1, 30, 5);
    let mut model = callpath_expdb::DbModel::from_experiment(&exp);
    model.nodes[0].parent = 1; // node 1 parented to itself
    assert!(model.into_experiment().is_err());
}
