//! Ensemble scaling bench (run via `scripts/bench_smoke.sh`): build a
//! 1,000-run synthetic ensemble, measure the N-way union at
//! `threads ∈ {1, 2, 4, 8}`, then cold-open the written `.cpens` and
//! render the first sorted cross-run statistics view — faulting only
//! the columns that view needs. Emits `BENCH_ensemble.json`.
//!
//! Honesty rules follow `BENCH_thread_scaling.json`: `cores` comes from
//! `available_parallelism`, `speedup` is null on a single-core host,
//! and the parallel-beats-sequential gate only fires when there are at
//! least 4 real cores to win on.
//!
//! `#[ignore]`d by default: timing assertions belong in release builds
//! on a quiet machine, not in every `cargo test` run.

use callpath_core::prelude::*;
use callpath_ensemble::{build, build_union, outlier_scores, RunData};
use callpath_expdb::ens;
use callpath_viewer::{render, ExpandMode, RenderConfig};
use callpath_workloads::synth::{ensemble_run, is_outlier_run, EnsembleConfig};
use std::time::Instant;

const THREAD_POINTS: [usize; 4] = [1, 2, 4, 8];
/// One union of 1,000 runs takes long enough to be stable on its own.
const UNION_ITERS: usize = 1;
/// Opens and renders are sub-10ms targets: min-of-N smooths page-cache
/// and scheduler noise.
const OPEN_ITERS: usize = 5;
/// The acceptance gate: cold open + first sorted stats render must be
/// single-digit milliseconds against a 1,000-run ensemble.
const OPEN_RENDER_GATE_MS: f64 = 10.0;

fn min_ms(iters: usize, mut run: impl FnMut()) -> f64 {
    (0..iters)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// JSON rows for one curve: `[{"threads": 1, "ms": 12.3, "speedup": null}, ...]`.
fn curve_json(points: &[(usize, f64)], cores: usize) -> String {
    let base_ms = points
        .iter()
        .find(|&&(t, _)| t == 1)
        .map(|&(_, ms)| ms)
        .unwrap_or(f64::NAN);
    let rows: Vec<String> = points
        .iter()
        .map(|&(threads, ms)| {
            let speedup = if cores == 1 {
                "null".to_owned()
            } else {
                format!("{:.2}", base_ms / ms.max(1e-9))
            };
            format!("    {{ \"threads\": {threads}, \"ms\": {ms:.3}, \"speedup\": {speedup} }}")
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

#[test]
#[ignore = "wall-clock scaling bench; run via scripts/bench_smoke.sh"]
fn ensemble_thousand_runs() {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // --- Generate the run family. ---------------------------------
    let cfg = EnsembleConfig::default();
    let t = Instant::now();
    let runs: Vec<RunData> = (0..cfg.n_runs)
        .map(|r| RunData::from_model(format!("run-{r:04}"), &ensemble_run(&cfg, r)).unwrap())
        .collect();
    let gen_ms = t.elapsed().as_secs_f64() * 1e3;

    // --- N-way union scaling curve. -------------------------------
    let mut union_points: Vec<(usize, f64)> = Vec::new();
    for &threads in &THREAD_POINTS {
        let ms = min_ms(UNION_ITERS, || {
            std::hint::black_box(build_union(&runs, threads));
        });
        union_points.push((threads, ms));
    }
    let ms_at = |t: usize| {
        union_points
            .iter()
            .find(|&&(p, _)| p == t)
            .map(|&(_, ms)| ms)
            .unwrap()
    };
    if cores >= 4 {
        assert!(
            ms_at(4) < ms_at(1),
            "parallel N-way union at t=4 ({:.1} ms) must beat the sequential \
             fold ({:.1} ms) on a {cores}-core host",
            ms_at(4),
            ms_at(1)
        );
    }

    // --- Build + persist once. ------------------------------------
    let t = Instant::now();
    let built = build(&runs, 0);
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    let union_nodes = built.cct.len();
    let n_metrics = built.metric_names.len();
    let bytes = built.to_bytes();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target");
    std::fs::create_dir_all(&dir).unwrap();
    let db_path = dir.join("ensemble_smoke.cpens");
    std::fs::write(&db_path, &bytes).expect("write ensemble database");

    // --- Cold open: topology only, no columns faulted. ------------
    let open_ms = min_ms(OPEN_ITERS, || {
        let e = ens::open(&db_path).unwrap();
        assert_eq!(e.exp.columns.materialized_columns(), 0);
        std::hint::black_box(&e);
    });

    // --- Cold open + first sorted cross-run stats view. -----------
    // The view shows the four statistic columns of metric 0, sorted by
    // mean: exactly four raw blocks fault out of the thousands in the
    // file (4 stats x 2 metrics + 2,000 per-run blocks).
    let mut faulted = 0;
    let open_render_ms = min_ms(OPEN_ITERS, || {
        let e = ens::open(&db_path).unwrap();
        let base = &e.dir.metric_names[0];
        let columns: Vec<ColumnId> = ens::STAT_NAMES
            .iter()
            .map(|s| e.exp.columns.find(&format!("{base} {s} (I)")).unwrap())
            .collect();
        let view_cfg = RenderConfig {
            sort: Some(columns[0]),
            columns,
            groups: vec![(base.clone(), ens::STAT_NAMES.len())],
            expand: ExpandMode::Levels(2),
            max_children: 10,
            show_percent: false,
            ..Default::default()
        };
        let mut view = View::calling_context(&e.exp);
        std::hint::black_box(render(&mut view, &view_cfg));
        faulted = e.exp.columns.materialized_columns();
    });
    assert!(
        faulted <= ens::STAT_NAMES.len(),
        "the stats view must fault only its own columns, not the ensemble \
         ({faulted} materialized)"
    );
    assert!(
        open_render_ms < OPEN_RENDER_GATE_MS,
        "cold open + sorted stats render took {open_render_ms:.2} ms against \
         a {}-run ensemble (gate: {OPEN_RENDER_GATE_MS} ms)",
        cfg.n_runs
    );

    // --- Cold open + sorted analysis query: exact fault accounting.
    // The query names two stat columns and scores by one of them; on a
    // 1,000-run ensemble (thousands of stored columns) exactly those
    // two may fault, and the raw per-run blocks must stay untouched.
    let mut query_faulted = usize::MAX;
    let analyze_query_ms = min_ms(OPEN_ITERS, || {
        let e = ens::open(&db_path).unwrap();
        let base = &e.dir.metric_names[0];
        let mean = format!("{base} mean (I)");
        let query = format!(r#"col("{mean}") > 0 and col("{base} stddev (I)") >= 0"#);
        let report = callpath_analyze::run_query(&e.exp, &query, Some(&mean), 10, 1).unwrap();
        assert!(report.matched > 0, "query must match contexts");
        query_faulted = e.exp.columns.materialized_columns();
        assert_eq!(
            query_faulted, 2,
            "a sorted query over the ensemble must fault exactly the two \
             named stat columns"
        );
        assert_eq!(
            e.exp.raw.materialized_metrics(),
            0,
            "query evaluation must not touch raw per-run blocks"
        );
    });

    // --- Outlier scoring from the directory alone. ----------------
    let mut top_run = usize::MAX;
    let outlier_ms = min_ms(OPEN_ITERS, || {
        let dir = ens::read_directory(&bytes).unwrap();
        let scores = outlier_scores(&dir);
        top_run = scores[0].0;
    });
    assert!(
        is_outlier_run(&cfg, top_run),
        "top-scored run {top_run} is not one of the inflated runs"
    );

    let record = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"ensemble\",\n",
            "  \"cores\": {},\n",
            "  \"workload\": \"synthetic ensemble, {} runs x {} metrics, {} union contexts\",\n",
            "  \"generate_ms\": {:.1},\n",
            "  \"union_iters\": {},\n",
            "  \"union_points\": {},\n",
            "  \"build_with_stats_ms\": {:.1},\n",
            "  \"file_bytes\": {},\n",
            "  \"open_iters\": {},\n",
            "  \"cold_open_ms\": {:.3},\n",
            "  \"cold_open_sorted_stats_render_ms\": {:.3},\n",
            "  \"open_render_gate_ms\": {:.1},\n",
            "  \"columns_faulted_by_stats_view\": {},\n",
            "  \"analyze_query_ms\": {:.3},\n",
            "  \"columns_faulted_by_analyze_query\": {},\n",
            "  \"outlier_scoring_ms\": {:.3},\n",
            "  \"top_outlier_run\": {}\n",
            "}}\n"
        ),
        cores,
        cfg.n_runs,
        n_metrics,
        union_nodes,
        gen_ms,
        UNION_ITERS,
        curve_json(&union_points, cores),
        build_ms,
        bytes.len(),
        OPEN_ITERS,
        open_ms,
        open_render_ms,
        OPEN_RENDER_GATE_MS,
        faulted,
        analyze_query_ms,
        query_faulted,
        outlier_ms,
        top_run,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_ensemble.json");
    std::fs::write(&path, &record).expect("write perf record");
    println!("perf record written to {}:\n{record}", path.display());
}
