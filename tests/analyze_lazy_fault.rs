//! Exact lazy-fault accounting for query evaluation: a query over a
//! lazily opened `.cpens` ensemble (or v2.1 database) materializes
//! exactly the columns it names — resolving names does not fault,
//! percent-of-program thresholds read the stored aggregates without
//! faulting, structural (regex) predicates fault nothing at all, and
//! the raw attribution columns are never touched.

use callpath_analyze::query::{eval_mask, run_query, Query};
use callpath_ensemble::RunData;
use callpath_expdb::ens;
use callpath_workloads::synth::{ensemble_run, EnsembleConfig};

fn small_ensemble() -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "callpath-analyze-fault-{}-runs.cpens",
        std::process::id()
    ));
    if !p.exists() {
        let cfg = EnsembleConfig {
            n_runs: 12,
            base_nodes: 300,
            tail_nodes: 10,
            nnz_per_metric: 96,
            outlier_every: 5,
            ..Default::default()
        };
        let runs: Vec<RunData> = (0..cfg.n_runs)
            .map(|r| RunData::from_model(format!("run-{r:03}"), &ensemble_run(&cfg, r)).unwrap())
            .collect();
        std::fs::write(&p, callpath_ensemble::build(&runs, 2).to_bytes()).unwrap();
    }
    p
}

#[test]
fn a_sorted_query_faults_exactly_the_named_columns() {
    let e = ens::open(&small_ensemble()).unwrap();
    let exp = &e.exp;
    assert_eq!(exp.columns.materialized_columns(), 0, "open faults nothing");

    let mean = format!("{} mean (I)", e.dir.metric_names[0]);
    let stddev = format!("{} stddev (I)", e.dir.metric_names[0]);
    let query = format!(r#"col("{mean}") > 0 and col("{stddev}") >= 0"#);
    // Score by one of the columns the predicate already names, so the
    // whole sorted query touches exactly two columns.
    let report = run_query(exp, &query, Some(&mean), 10, 1).unwrap();
    assert!(report.matched > 0, "query must match something");

    assert_eq!(
        exp.columns.materialized_columns(),
        2,
        "exactly the two named stat columns fault"
    );
    let named = [
        exp.columns.find(&mean).unwrap(),
        exp.columns.find(&stddev).unwrap(),
    ];
    for c in named {
        assert!(
            exp.columns.fault_count(c) > 0,
            "{c:?} was named, must fault"
        );
    }
    for c in exp.columns.columns() {
        if !named.contains(&c) {
            assert_eq!(
                exp.columns.fault_count(c),
                0,
                "column '{}' was not named by the query",
                exp.columns.desc(c).name
            );
        }
    }
    assert_eq!(
        exp.raw.materialized_metrics(),
        0,
        "query evaluation must never touch the raw attribution columns"
    );
}

#[test]
fn percent_thresholds_read_stored_aggregates_without_faulting() {
    let e = ens::open(&small_ensemble()).unwrap();
    let exp = &e.exp;
    let max = format!("{} max (I)", e.dir.metric_names[1]);
    // `> 5%` needs the column's program total: that comes from the
    // stored aggregates, not from decoding the column.
    let q = Query::parse(&format!(r#"col("{max}") > 5%"#)).unwrap();
    let mask = eval_mask(exp, &q.pred, 1).unwrap();
    assert!(mask.iter().any(|&m| m), "something exceeds 5% of total");
    assert_eq!(
        exp.columns.materialized_columns(),
        1,
        "only the compared column faults; its aggregate is stored"
    );
}

#[test]
fn structural_queries_fault_no_columns_at_all() {
    let e = ens::open(&small_ensemble()).unwrap();
    let exp = &e.exp;
    let q = Query::parse(r#"subtree(proc ~ "proc_00") or label ~ "loop""#).unwrap();
    let mask = eval_mask(exp, &q.pred, 2).unwrap();
    assert!(mask.iter().any(|&m| m), "structural query must match");
    assert_eq!(
        exp.columns.materialized_columns(),
        0,
        "regex predicates read the CCT, never the columns"
    );
    assert_eq!(exp.raw.materialized_metrics(), 0);
}
