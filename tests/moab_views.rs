//! E3 + E4 — Figs. 4 and 5: the MOAB mesh benchmark.
//!
//! Fig. 4 (Callers View): `_intel_fast_memset.A` accounts for ≈9.7% of
//! all L1 data-cache misses, ≈9.6% through `Sequence_data::create`.
//!
//! Fig. 5 (Flat View): all ≈18.9% of `MBCore::get_coords`'s cycles sit in
//! one loop; inside it an inlined red-black-tree search contains an
//! inlined `SequenceCompare` accounting for ≈19.8% of L1 misses. The
//! whole hierarchy — loop, inlined find, inlined search loop, inlined
//! compare — must be recovered from the binary image and presented.

use callpath_core::prelude::*;
use callpath_profiler::ExecConfig;
use callpath_workloads::{moab, pipeline};

fn build() -> Experiment {
    pipeline::build_experiment(&moab::program(), &ExecConfig::default())
}

fn l1_incl(exp: &Experiment) -> ColumnId {
    exp.inclusive_col(exp.raw.find("PAPI_L1_DCM").unwrap())
}

fn cyc_incl(exp: &Experiment) -> ColumnId {
    exp.inclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap())
}

fn child_by_label(view: &mut View<'_>, parent: Option<u32>, label: &str) -> u32 {
    let candidates = match parent {
        Some(p) => view.children(p),
        None => view.roots(),
    };
    candidates
        .into_iter()
        .find(|&n| view.label(n) == label)
        .unwrap_or_else(|| panic!("no '{label}' under {parent:?}"))
}

#[test]
fn callers_view_attributes_memset_misses() {
    let exp = build();
    let col = l1_incl(&exp);
    let total = exp.aggregate(col);
    let mut view = View::callers(&exp);

    let memset = child_by_label(&mut view, None, "_intel_fast_memset.A");
    let share = 100.0 * view.value(col, memset) / total;
    assert!((share - 9.7).abs() < 0.7, "memset total share {share:.2}%");

    // Expanding shows two callers; create dominates at ≈9.6%.
    let callers = view.children(memset);
    assert_eq!(callers.len(), 2, "two calling contexts");
    let create = callers
        .iter()
        .copied()
        .find(|&c| view.label(c) == "Sequence_data::create")
        .expect("create is a caller");
    let other = callers
        .iter()
        .copied()
        .find(|&c| view.label(c) == "init_buffers")
        .expect("init_buffers is the other caller");
    let create_share = 100.0 * view.value(col, create) / total;
    let other_share = 100.0 * view.value(col, other) / total;
    assert!(
        (create_share - 9.6).abs() < 0.7,
        "create share {create_share:.2}%"
    );
    assert!(other_share < 0.5, "other share {other_share:.2}%");
    assert!(create_share > 10.0 * other_share, "create dominates");
}

#[test]
fn callers_view_is_lazy_until_expanded() {
    let exp = build();
    let view = View::callers(&exp);
    let top_level = view.roots().len();
    assert_eq!(
        view.node_count(),
        top_level,
        "no caller chains materialized before expansion"
    );
}

#[test]
fn flat_view_get_coords_loop_holds_all_its_cycles() {
    let exp = build();
    let cyc = cyc_incl(&exp);
    let total = exp.aggregate(cyc);
    let mut view = View::flat(&exp);

    let module = child_by_label(&mut view, None, "mbperf_IMesh");
    let core_cpp = child_by_label(&mut view, Some(module), "MBCore.cpp");
    let get_coords = child_by_label(&mut view, Some(core_cpp), "MBCore::get_coords");
    let gc_share = 100.0 * view.value(cyc, get_coords) / total;
    assert!((gc_share - 18.9).abs() < 1.0, "get_coords {gc_share:.2}%");

    // One loop under it carrying all of its cost.
    let lp = child_by_label(&mut view, Some(get_coords), "loop at MBCore.cpp:685");
    assert!(
        (view.value(cyc, lp) - view.value(cyc, get_coords)).abs()
            < 0.01 * view.value(cyc, get_coords),
        "the loop holds all of get_coords' cycles"
    );
}

#[test]
fn flat_view_recovers_the_inline_hierarchy() {
    let exp = build();
    let l1 = l1_incl(&exp);
    let total = exp.aggregate(l1);
    let mut view = View::flat(&exp);

    let module = child_by_label(&mut view, None, "mbperf_IMesh");
    let core_cpp = child_by_label(&mut view, Some(module), "MBCore.cpp");
    let get_coords = child_by_label(&mut view, Some(core_cpp), "MBCore::get_coords");
    let lp = child_by_label(&mut view, Some(get_coords), "loop at MBCore.cpp:685");
    // loop -> inlined find -> inlined search loop -> inlined compare.
    let find = child_by_label(&mut view, Some(lp), "inlined from _Rb_tree::find");
    let search = child_by_label(&mut view, Some(find), "loop at stl_tree.h:201");
    let compare = child_by_label(&mut view, Some(search), "inlined from SequenceCompare");
    let cmp_share = 100.0 * view.value(l1, compare) / total;
    assert!(
        (cmp_share - 19.8).abs() < 1.0,
        "SequenceCompare misses {cmp_share:.2}%"
    );
}

#[test]
fn flattening_exposes_loops_for_cross_routine_comparison() {
    // Fig. 6's flattening use-case: strip modules/files/procedures so
    // loops in different routines can be compared side by side.
    let exp = build();
    let mut flat = FlatView::build(&exp, StorageKind::Dense);
    let start = flat.tree.roots();
    // Three flattening steps strip module -> file -> procedure, leaving
    // loops (and call sites) side by side. The forcing variant fills the
    // lazy shell as it descends.
    let roots = flat.flatten(&exp, &start, 3);
    let labels: Vec<String> = roots
        .iter()
        .map(|&n| flat.tree.label(n, &exp.cct.names))
        .collect();
    let loops = labels.iter().filter(|l| l.starts_with("loop at")).count();
    assert!(loops >= 2, "several loops side by side: {labels:?}");
}

#[test]
fn cct_separates_what_flat_merges() {
    // The memset cost is one node in the Flat View's procedure list but
    // two distinct contexts in the CCT.
    let exp = build();
    let mut count = 0;
    for n in exp.cct.all_nodes() {
        if let ScopeKind::Frame { proc, .. } = exp.cct.kind(n) {
            if exp.cct.names.proc_name(proc) == "_intel_fast_memset.A" {
                count += 1;
            }
        }
    }
    assert_eq!(count, 2, "two dynamic memset contexts in the CCT");
}

#[test]
fn library_routines_live_in_their_own_load_module() {
    // memset ships in libirc: the Flat View shows a second load module
    // (real profiles always span several; Fig. 5's first hierarchy level
    // is the load module).
    let exp = build();
    let mut view = View::flat(&exp);
    let roots = view.roots();
    let labels: Vec<String> = roots.iter().map(|&r| view.label(r)).collect();
    assert!(labels.contains(&"mbperf_IMesh".to_owned()), "{labels:?}");
    assert!(labels.contains(&"libirc.so".to_owned()), "{labels:?}");
    let libirc = child_by_label(&mut view, None, "libirc.so");
    // All of libirc's cost is the memset routine's.
    let l1 = l1_incl(&exp);
    let total = exp.aggregate(l1);
    let share = 100.0 * view.value(l1, libirc) / total;
    assert!((share - 9.7).abs() < 0.7, "libirc module share {share:.2}%");
    // Module inclusive == its single procedure's inclusive.
    let file = view.children(libirc)[0];
    let proc = child_by_label(&mut view, Some(file), "_intel_fast_memset.A");
    assert_eq!(view.value(l1, proc), view.value(l1, libirc));
}
