//! Property tests for the sharded parallel ingestion path: for random
//! workloads and every worker count, [`ParallelCorrelator`] must produce
//! output *identical* to the sequential [`Correlator`] — same CCT shape,
//! same node ids, same metric columns, same totals, same per-rank
//! costs. Plus a regression test that the cached inclusive columns are
//! invalidated when raw metrics mutate.

use callpath_core::prelude::*;
use callpath_prof::{Correlator, ParallelCorrelator, PerNodeCosts};
use callpath_profiler::{execute, lower, Counter, ExecConfig, RawProfile};
use callpath_structure::{recover, Structure};
use callpath_workloads::generator::{random_program, GenConfig};
use proptest::prelude::*;

/// Simulate `n_ranks` ranks of a random program with rank-dependent work
/// scales and jitter seeds.
fn random_workload(
    seed: u64,
    n_procs: usize,
    n_ranks: usize,
) -> (Structure, Vec<RawProfile>, ExecConfig) {
    let program = random_program(GenConfig {
        seed,
        n_procs,
        calls_per_proc: 2,
        loop_probability: 0.4,
        work_cycles: 5_000,
    });
    let bin = lower(&program);
    let base = ExecConfig {
        jitter_seed: Some(seed ^ 0x9e37),
        ..ExecConfig::single(Counter::Cycles, 509)
    };
    let profiles = (0..n_ranks)
        .map(|r| {
            let cfg = ExecConfig {
                work_scale: 1.0 + (r % 5) as f64 * 0.4,
                jitter_seed: base.jitter_seed.map(|s| s.wrapping_add(r as u64)),
                ..base.clone()
            };
            execute(&bin, &cfg).unwrap().profile
        })
        .collect();
    (recover(&bin).unwrap(), profiles, base)
}

/// Assert the two experiments are identical: tree shape, node ids (via
/// kind+parent at every id), and every metric column entry-for-entry.
fn assert_identical(seq: &Experiment, par: &Experiment, ctx: &str) {
    assert_eq!(seq.cct.len(), par.cct.len(), "{ctx}: node count");
    for n in seq.cct.all_nodes() {
        assert_eq!(seq.cct.kind(n), par.cct.kind(n), "{ctx}: kind of {n:?}");
        assert_eq!(
            seq.cct.parent(n),
            par.cct.parent(n),
            "{ctx}: parent of {n:?}"
        );
    }
    assert_eq!(
        seq.raw.metric_count(),
        par.raw.metric_count(),
        "{ctx}: metric count"
    );
    for mi in 0..seq.raw.metric_count() {
        let m = MetricId::from_usize(mi);
        let a: Vec<(u32, f64)> = seq.raw.column(m).nonzero_sorted().collect();
        let b: Vec<(u32, f64)> = par.raw.column(m).nonzero_sorted().collect();
        assert_eq!(a, b, "{ctx}: raw column {mi}");
        assert_eq!(seq.raw.total(m), par.raw.total(m), "{ctx}: total {mi}");
    }
    for c in seq.columns.columns() {
        let a: Vec<(u32, f64)> = seq.columns.vec(c).nonzero_sorted().collect();
        let b: Vec<(u32, f64)> = par.columns.vec(c).nonzero_sorted().collect();
        assert_eq!(a, b, "{ctx}: presentation column {c:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_ingestion_is_byte_identical_to_sequential(
        seed in 0u64..1_000,
        n_procs in 4usize..24,
        n_ranks in 1usize..12,
    ) {
        let (structure, profiles, cfg) = random_workload(seed, n_procs, n_ranks);
        let mut seq = Correlator::new(&structure, cfg.periods);
        let seq_costs: Vec<PerNodeCosts> = profiles.iter().map(|p| seq.add(p)).collect();
        let seq_exp = seq.finish(StorageKind::Dense);

        for threads in [1usize, 2, 4, 8] {
            let (par_exp, par_costs) = ParallelCorrelator::new(&structure, cfg.periods)
                .with_threads(threads)
                .correlate(&profiles, StorageKind::Dense);
            let ctx = format!("seed={seed} procs={n_procs} ranks={n_ranks} threads={threads}");
            assert_identical(&seq_exp, &par_exp, &ctx);
            prop_assert_eq!(&par_costs, &seq_costs, "{}: per-rank costs", ctx);
        }
    }

    #[test]
    fn storage_flavor_does_not_change_parallel_results(
        seed in 0u64..1_000,
        n_ranks in 1usize..8,
    ) {
        let (structure, profiles, cfg) = random_workload(seed, 10, n_ranks);
        let pc = ParallelCorrelator::new(&structure, cfg.periods).with_threads(4);
        let (dense, dc) = pc.correlate(&profiles, StorageKind::Dense);
        let (sparse, sc) = pc.correlate(&profiles, StorageKind::Sparse);
        let (csr, cc) = pc.correlate(&profiles, StorageKind::Csr);
        prop_assert_eq!(&dc, &sc);
        prop_assert_eq!(&dc, &cc);
        for c in dense.columns.columns() {
            let d: Vec<(u32, f64)> = dense.columns.vec(c).nonzero_sorted().collect();
            let s: Vec<(u32, f64)> = sparse.columns.vec(c).nonzero_sorted().collect();
            let r: Vec<(u32, f64)> = csr.columns.vec(c).nonzero_sorted().collect();
            prop_assert_eq!(&d, &s, "sparse column {:?}", c);
            prop_assert_eq!(&d, &r, "csr column {:?}", c);
        }
    }
}

/// Regression: the experiment's cached inclusive/exclusive attribution
/// columns must be recomputed — not served stale — after `add_cost`
/// mutates the raw metrics.
#[test]
fn inclusive_cache_invalidates_after_mutation() {
    let (structure, profiles, cfg) = random_workload(3, 8, 4);
    let (mut exp, _) = ParallelCorrelator::new(&structure, cfg.periods)
        .with_threads(2)
        .correlate(&profiles, StorageKind::Csr);
    let m = MetricId(0);
    let root = exp.cct.root();
    let before = exp.inclusive(m, root);
    // Find a statement to perturb; its whole ancestor chain must see the
    // delta in the refreshed inclusive column.
    let stmt = exp
        .cct
        .all_nodes()
        .find(|&n| exp.cct.kind(n).is_stmt())
        .expect("workload has statements");
    exp.raw.add_cost(m, stmt, 12_345.0);
    assert_eq!(exp.inclusive(m, root), before + 12_345.0);
    for a in exp.cct.ancestors(stmt) {
        assert!(
            exp.inclusive(m, a) >= 12_345.0,
            "ancestor {a:?} missed the delta"
        );
    }
}
