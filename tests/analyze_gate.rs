//! The perf gate, end to end through the `callpath-analyze` binary:
//! both exit paths (0 on pass/advisory, 1 on a hard regression), the
//! machine-readable report, usage errors exiting 2, and the self-gate
//! the CI script runs — the repo's own committed policy against a
//! BENCH-shaped record, which must be deterministic in both directions.

use std::path::{Path, PathBuf};
use std::process::Command;

fn analyze() -> &'static str {
    env!("CARGO_BIN_EXE_callpath-analyze")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("callpath-gate-{}-{name}", std::process::id()));
    p
}

/// Write a minimal BENCH record directory with one nav-shaped record.
fn bench_dir(name: &str, open_ms: f64, nav_ms: f64) -> PathBuf {
    let dir = tmp(name);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("BENCH_session_nav.json"),
        format!(
            "{{\"bench\":\"session_nav\",\"open_ms\":{open_ms},\"nav_ms\":{nav_ms},\"nodes\":1000}}\n"
        ),
    )
    .unwrap();
    dir
}

const POLICY: &str = r#"
# Advisory 10% on every timing field; hard 25% on open/nav.
[defaults]
tolerance_pct = 10.0
fields = "_(ms|ns)$"

[[rule]]
bench = ".*"
field = "^(open|nav)_ms$"
tolerance_pct = 25.0
hard = true
"#;

fn run_gate(baseline: &Path, candidate: &Path, policy: &Path, json: bool) -> (i32, String, String) {
    let mut cmd = Command::new(analyze());
    cmd.args([
        "gate",
        "--baseline",
        baseline.to_str().unwrap(),
        "--candidate",
        candidate.to_str().unwrap(),
        "--policy",
        policy.to_str().unwrap(),
    ]);
    if json {
        cmd.arg("--json");
    }
    let out = cmd.output().expect("run callpath-analyze gate");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn within_tolerance_exits_zero_and_advisory_does_not_fail() {
    let policy = tmp("pass-policy.toml");
    std::fs::write(&policy, POLICY).unwrap();
    let base = bench_dir("pass-base", 10.0, 4.0);
    // open_ms +20% is under the 25% hard rule; nodes is not a gated
    // field at all; nav_ms +15% trips only the advisory default? No —
    // the hard rule governs nav_ms too, and 15% < 25%. Still exit 0.
    let cand = bench_dir("pass-cand", 12.0, 4.6);
    let (code, stdout, stderr) = run_gate(&base, &cand, &policy, false);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("-> PASS"), "{stdout}");

    for d in [&base, &cand] {
        std::fs::remove_dir_all(d).ok();
    }
    std::fs::remove_file(&policy).ok();
}

#[test]
fn hard_regression_exits_one_with_a_structured_report() {
    let policy = tmp("fail-policy.toml");
    std::fs::write(&policy, POLICY).unwrap();
    let base = bench_dir("fail-base", 10.0, 4.0);
    let cand = bench_dir("fail-cand", 14.0, 4.0); // +40% open_ms: hard fail
    let (code, stdout, _) = run_gate(&base, &cand, &policy, false);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("FAIL (hard)"), "{stdout}");
    assert!(stdout.contains("-> FAIL"), "{stdout}");

    // The JSON form carries the same verdicts.
    let (code, stdout, _) = run_gate(&base, &cand, &policy, true);
    assert_eq!(code, 1);
    assert!(stdout.contains("\"failed\":true"), "{stdout}");
    assert!(stdout.contains("\"verdict\":\"FAIL\""), "{stdout}");

    for d in [&base, &cand] {
        std::fs::remove_dir_all(d).ok();
    }
    std::fs::remove_file(&policy).ok();
}

#[test]
fn usage_and_io_errors_exit_two() {
    // Missing required flags.
    let out = Command::new(analyze()).arg("gate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Unreadable baseline.
    let out = Command::new(analyze())
        .args([
            "gate",
            "--baseline",
            "/nonexistent/bench",
            "--candidate",
            "/nonexistent/bench",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Unknown subcommand.
    let out = Command::new(analyze()).arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// The committed CI policy gates the repo's own BENCH trajectory: a
/// record compared against itself is all zero deltas, which must pass
/// deterministically — the non-flaky advisory step `scripts/ci.sh`
/// relies on.
#[test]
fn self_gate_against_the_committed_policy_is_deterministic() {
    let policy = Path::new(env!("CARGO_MANIFEST_DIR")).join("scripts/perf_policy.toml");
    assert!(
        policy.exists(),
        "scripts/perf_policy.toml must be committed"
    );
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (code, stdout, stderr) = run_gate(repo, repo, &policy, false);
    assert_eq!(code, 0, "self-gate must pass\n{stdout}\n{stderr}");
    assert!(stdout.contains("-> PASS"), "{stdout}");
    // Deterministic: byte-identical on a second run.
    let (_, again, _) = run_gate(repo, repo, &policy, false);
    assert_eq!(stdout, again, "self-gate output must be deterministic");

    // And the hard half of the committed policy really is hard: a 30%
    // nav regression against the same records must exit 1.
    let records = callpath_analyze::load_bench_records(repo).unwrap();
    assert!(
        !records.is_empty(),
        "the repo should carry BENCH_*.json records"
    );
    let dir = tmp("self-gate-inflated");
    std::fs::create_dir_all(&dir).unwrap();
    for r in &records {
        let fields: Vec<String> = r
            .fields
            .iter()
            .map(|(k, v)| {
                let v = if k.ends_with("_ms") { v * 1.3 } else { *v };
                format!("\"{k}\":{v}")
            })
            .collect();
        std::fs::write(
            dir.join(format!("BENCH_{}.json", r.name)),
            format!("{{\"bench\":\"{}\",{}}}\n", r.name, fields.join(",")),
        )
        .unwrap();
    }
    let (code, stdout, _) = run_gate(repo, &dir, &policy, false);
    assert_eq!(
        code, 1,
        "a 30% timing regression must hard-fail the committed policy\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
