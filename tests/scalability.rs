//! E7 — Section VII's scalability claims, validated functionally (the
//! timing side lives in the Criterion benches):
//!
//! * lazy Callers View construction materializes a small fraction of the
//!   eager tree until expansion is requested;
//! * hot-path-driven expansion touches only the nodes along the path;
//! * streaming summarization handles many ranks with memory proportional
//!   to nodes × metrics, not ranks;
//! * sparse metric storage holds only non-zero entries.

use callpath_core::prelude::*;
use callpath_parallel::{run_spmd, summarize_ranks, SpmdConfig};
use callpath_profiler::{Costs, Counter, ExecConfig, Op, ProgramBuilder};
use callpath_workloads::generator::random_experiment;

#[test]
fn lazy_callers_view_materializes_a_fraction() {
    let exp = random_experiment(3, 20_000, 60);
    let lazy = CallersView::build(&exp, StorageKind::Dense);
    let eager = CallersView::build_eager(&exp, StorageKind::Dense);
    assert!(
        lazy.tree.len() * 10 <= eager.tree.len(),
        "lazy {} vs eager {} nodes",
        lazy.tree.len(),
        eager.tree.len()
    );
    assert!(
        lazy.tree.heap_bytes() < eager.tree.heap_bytes(),
        "lazy {}B vs eager {}B",
        lazy.tree.heap_bytes(),
        eager.tree.heap_bytes()
    );
}

#[test]
fn hot_path_expansion_is_narrow() {
    let exp = random_experiment(5, 20_000, 60);
    let mut view = View::callers(&exp);
    let before = view.node_count();
    let roots = view.roots();
    // Hot-path the heaviest top-level entry.
    let mut sorted = roots.clone();
    sort_by_column(&view, &mut sorted, ColumnId(0));
    let path = view.hot_path(sorted[0], ColumnId(0), HotPathConfig::default());
    let after = view.node_count();
    let eager = CallersView::build_eager(&exp, StorageKind::Dense)
        .tree
        .len();
    assert!(!path.is_empty());
    assert!(
        (after - before) * 5 < eager,
        "hot path materialized {} of {} eager nodes",
        after - before,
        eager
    );
}

#[test]
fn summarization_scales_in_ranks_without_keeping_them() {
    // 256 simulated ranks of a small program; summaries must be exact.
    let mut b = ProgramBuilder::new("many");
    let f = b.file("m.c");
    let main = b.declare("main", f, 1);
    b.body(main, vec![Op::work(2, Costs::cycles(1_000))]);
    b.entry(main);
    let n_ranks = 256;
    let scales: Vec<f64> = (0..n_ranks).map(|r| 1.0 + (r % 4) as f64).collect();
    let exec = ExecConfig {
        jitter_seed: None,
        ..ExecConfig::single(Counter::Cycles, 1)
    };
    let run = run_spmd(&b.build(), &SpmdConfig::new(scales, exec));
    let s = summarize_ranks(&run.experiment, &[Counter::Cycles], &run.rank_direct, 0);
    let root = run.experiment.cct.root();
    let w = s.get(root, MetricId(0));
    assert_eq!(w.count() as usize, n_ranks);
    assert_eq!(w.min(), 1_000.0);
    assert_eq!(w.max(), 4_000.0);
    assert!((w.mean() - 2_500.0).abs() < 1e-9);
}

#[test]
fn sparse_storage_is_proportional_to_nonzeros() {
    let mut sparse = MetricVec::sparse();
    let mut dense = MetricVec::dense(1_000_000);
    for i in 0..100u32 {
        sparse.add(i * 10_000, 1.0);
        dense.add(i * 10_000, 1.0);
    }
    assert_eq!(sparse.nonzero_count(), 100);
    assert!(
        sparse.heap_bytes() * 100 < dense.heap_bytes(),
        "sparse {}B vs dense {}B",
        sparse.heap_bytes(),
        dense.heap_bytes()
    );
    // The borrowed iterators agree entry-for-entry; a CSR column built
    // the same way matches both.
    let mut csr = MetricVec::csr();
    for i in 0..100u32 {
        csr.add(i * 10_000, 1.0);
    }
    assert!(sparse.nonzero_sorted().eq(dense.nonzero_sorted()));
    assert!(csr.nonzero_sorted().eq(dense.nonzero_sorted()));
    assert!(csr.heap_bytes() * 100 < dense.heap_bytes());
}

#[test]
fn large_cct_views_build_and_agree() {
    // A 100k-node CCT: all three views build, and the program total is
    // consistent everywhere.
    let exp = random_experiment(11, 100_000, 100);
    let total = exp.raw.total(MetricId(0));
    let ccv_total = exp.columns.get(ColumnId(0), exp.cct.root().0);
    assert!((ccv_total - total).abs() < 1e-6 * total);

    let flat = View::flat(&exp);
    let flat_total: f64 = flat
        .roots()
        .iter()
        .map(|&r| flat.value(ColumnId(0), r))
        .sum();
    assert!((flat_total - total).abs() < 1e-6 * total);

    let callers = View::callers(&exp);
    // Entry procedure's top-level inclusive equals the program total.
    let main_entry = callers
        .roots()
        .into_iter()
        .find(|&r| callers.label(r) == "proc_0000")
        .unwrap();
    assert!((callers.value(ColumnId(0), main_entry) - total).abs() < 1e-6 * total);
}
