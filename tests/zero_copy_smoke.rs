//! Zero-copy scaling smoke test (run via `scripts/bench_smoke.sh`):
//! open a ~10⁶-node, 1024-column synthetic v2.1 database through the
//! mmap-backed lazy path and emit `BENCH_zero_copy.json`.
//!
//! This is the tentpole's acceptance gate at scale:
//!
//! * **cold open is topology-bounded** — opening the million-node file
//!   must cost at most 10× opening a 33-node file with the *same*
//!   metric schema, even though the big file carries ~30 000× more
//!   nodes (the v2 baseline decodes every node record; v2.1 borrows
//!   the arrays and pays one structural O(n) scan);
//! * **first render faults only what it needs** — the fault counters
//!   must show one presentation-column fault (the sorted column), not
//!   one per column;
//! * **decode-all stays usable** — the everything-materialized path is
//!   recorded so batch-consumer regressions show up as diffs.
//!
//! `#[ignore]`d by default: timing assertions belong in release builds
//! on a quiet machine, not in every `cargo test` run.

use callpath_core::prelude::*;
use callpath_core::source::SourceStore;
use callpath_expdb::{bin2, decode_all, open_lazy_path, FileImage};
use callpath_viewer::{Command, Session};
use callpath_workloads::synth::{synth_model, SynthConfig};
use std::time::Instant;

const ITERS: usize = 21;
/// The v2 contrast open and first render touch every node and run
/// hundreds of times slower than the lazy open; a handful of samples
/// is enough for a stable median without blowing the script's budget.
const HEAVY_ITERS: usize = 3;
/// Decode-all attributes all 1024 metrics over the million-node tree —
/// minutes of single-core work. One sample records the trajectory;
/// averaging it is not worth tripling the script's wall clock.
const DECODE_ITERS: usize = 1;

/// Cold open must scale with the *touched* sections, not the node
/// count: the big open may cost at most this multiple of the small one.
const OPEN_SCALE_BUDGET: f64 = 10.0;

fn p50_ms_n(iters: usize, mut run: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[iters / 2]
}

fn p50_ms(run: impl FnMut()) -> f64 {
    p50_ms_n(ITERS, run)
}

/// The first-paint session script: one sorted visible column, hot path,
/// render. Returns the rendered text so the work cannot be optimized out.
fn first_render(exp: &Experiment) -> String {
    let mut session = Session::new(exp, SourceStore::new());
    for c in 1..exp.columns.column_count() as u32 {
        session.apply(Command::HideColumn(ColumnId(c))).unwrap();
    }
    session.apply(Command::SortBy(ColumnId(0))).unwrap();
    session.apply(Command::HotPath).unwrap();
    session.render()
}

fn write_db(name: &str, bytes: &[u8]) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, bytes).expect("write synthetic database");
    path
}

#[test]
#[ignore = "wall-clock smoke test; run via scripts/bench_smoke.sh"]
fn zero_copy_smoke() {
    let big_cfg = SynthConfig::million();
    // Same metric schema, 33-node topology: the per-column descriptor
    // work is identical, so the open-time ratio isolates node scaling.
    let small_cfg = SynthConfig {
        n_nodes: 33,
        ..big_cfg
    };

    let big = synth_model(&big_cfg);
    let v21 = bin2::write_v21(&big);
    let v2 = bin2::write(&big);
    let small_v21 = bin2::write_v21(&synth_model(&small_cfg));
    let big_path = write_db("zero_copy_big.cpdb", &v21);
    let big_v2_path = write_db("zero_copy_big_v2.cpdb", &v2);
    let small_path = write_db("zero_copy_small.cpdb", &small_v21);
    let mapped = FileImage::open(&big_path).unwrap().is_mapped();

    let small_cold = p50_ms(|| {
        std::hint::black_box(open_lazy_path(&small_path).unwrap());
    });
    let big_cold = p50_ms(|| {
        std::hint::black_box(open_lazy_path(&big_path).unwrap());
    });
    // The same bytes minus alignment: a v2 open of the same model must
    // decode every node record before it can return.
    let big_v2_cold = p50_ms_n(HEAVY_ITERS, || {
        std::hint::black_box(open_lazy_path(&big_v2_path).unwrap());
    });

    // One cold first paint, with fault counters bracketing it.
    let faults_before = [
        callpath_obs::counter_value("expdb.lazy.fault.column"),
        callpath_obs::counter_value("expdb.lazy.fault.raw"),
        callpath_obs::counter_value("expdb.lazy.fault.mapped"),
    ];
    let e = open_lazy_path(&big_path).unwrap();
    std::hint::black_box(first_render(&e));
    let [fault_columns, fault_raw, fault_mapped] = [
        callpath_obs::counter_value("expdb.lazy.fault.column") - faults_before[0],
        callpath_obs::counter_value("expdb.lazy.fault.raw") - faults_before[1],
        callpath_obs::counter_value("expdb.lazy.fault.mapped") - faults_before[2],
    ];
    drop(e);
    if callpath_obs::enabled() {
        assert_eq!(
            fault_columns, 1,
            "first render must fault exactly the sorted column"
        );
    }

    let first = p50_ms_n(HEAVY_ITERS, || {
        let e = open_lazy_path(&big_path).unwrap();
        std::hint::black_box(first_render(&e));
    });
    let decode_all_ms = p50_ms_n(DECODE_ITERS, || {
        let e = open_lazy_path(&big_path).unwrap();
        decode_all(&e, 0);
        std::hint::black_box(&e);
    });

    let ratio = big_cold / small_cold.max(1e-9);
    assert!(
        ratio <= OPEN_SCALE_BUDGET,
        "million-node cold open ({big_cold:.3} ms) is {ratio:.1}x the 33-node open \
         ({small_cold:.3} ms); budget is {OPEN_SCALE_BUDGET}x"
    );
    assert!(
        big_cold < big_v2_cold,
        "v2.1 lazy open ({big_cold:.3} ms) must beat the v2 eager-topology open \
         ({big_v2_cold:.3} ms)"
    );

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mode = if resolve_threads(0) > 1 {
        "parallel"
    } else {
        "sequential"
    };
    let record = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"zero_copy\",\n",
            "  \"workload\": \"synthetic CCT, seed {}\",\n",
            "  \"cores\": {},\n",
            "  \"mode\": \"{}\",\n",
            "  \"mmap\": {},\n",
            "  \"cct_nodes\": {},\n",
            "  \"metrics\": {},\n",
            "  \"nnz_per_metric\": {},\n",
            "  \"v21_bytes\": {},\n",
            "  \"v2_bytes\": {},\n",
            "  \"iters\": {},\n",
            "  \"heavy_iters\": {},\n",
            "  \"decode_iters\": {},\n",
            "  \"small_cct_nodes\": {},\n",
            "  \"small_cold_open_p50_ms\": {:.3},\n",
            "  \"cold_open_p50_ms\": {:.3},\n",
            "  \"open_scale_ratio\": {:.2},\n",
            "  \"open_scale_budget\": {:.1},\n",
            "  \"v2_cold_open_p50_ms\": {:.3},\n",
            "  \"first_render_p50_ms\": {:.3},\n",
            "  \"first_render_fault_columns\": {},\n",
            "  \"first_render_fault_raw\": {},\n",
            "  \"first_render_fault_mapped\": {},\n",
            "  \"decode_all_p50_ms\": {:.3}\n",
            "}}\n"
        ),
        big_cfg.seed,
        cores,
        mode,
        mapped,
        big_cfg.n_nodes + 1,
        big_cfg.n_metrics,
        big_cfg.nnz_per_metric,
        v21.len(),
        v2.len(),
        ITERS,
        HEAVY_ITERS,
        DECODE_ITERS,
        small_cfg.n_nodes + 1,
        small_cold,
        big_cold,
        ratio,
        OPEN_SCALE_BUDGET,
        big_v2_cold,
        first,
        fault_columns,
        fault_raw,
        fault_mapped,
        decode_all_ms,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_zero_copy.json");
    std::fs::write(&path, &record).expect("write perf record");
    println!("perf record written to {}:\n{record}", path.display());
}
