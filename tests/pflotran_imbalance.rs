//! E6 — Fig. 7 and Section VI-C: load-imbalance identification for the
//! PFLOTRAN-shaped SPMD workload.
//!
//! Paper facts (shape):
//! * sorting by total inclusive idleness summed over all MPI processes
//!   and hot-pathing drills into the main iteration loop at
//!   `timestepper.F90:384`;
//! * the three per-process charts — scattered inclusive cycles, the same
//!   sorted, and a histogram — are visibly bimodal, confirming uneven
//!   work partition.

use callpath_core::prelude::*;
use callpath_parallel::{
    ascii_histogram, ascii_scatter, ascii_sorted, histogram, run_spmd, summarize_ranks,
    ImbalanceStats, SpmdConfig,
};
use callpath_profiler::{Counter, ExecConfig};
use callpath_workloads::pflotran;

const RANKS: usize = 64;

fn run() -> callpath_parallel::SpmdRun {
    let part = pflotran::Partition::default();
    let scales: Vec<f64> = (0..RANKS).map(|r| part.scale(r, RANKS)).collect();
    run_spmd(
        &pflotran::program(),
        &SpmdConfig::new(scales, ExecConfig::default()),
    )
}

fn idleness_incl(exp: &Experiment) -> ColumnId {
    exp.inclusive_col(exp.raw.find("IDLENESS").unwrap())
}

#[test]
fn hot_path_on_summed_idleness_finds_the_timestep_loop() {
    let run = run();
    let exp = &run.experiment;
    let col = idleness_incl(exp);
    let mut view = View::calling_context(exp);
    let roots = view.roots();
    let path = view.hot_path(roots[0], col, HotPathConfig::default());
    let labels: Vec<String> = path.iter().map(|&n| view.label(n)).collect();
    assert!(
        labels.iter().any(|l| l == "loop at timestepper.F90:384"),
        "hot path must pass the paper's loop: {labels:?}"
    );
}

#[test]
fn idleness_sums_only_over_waiting_ranks() {
    let run = run();
    let exp = &run.experiment;
    let col = idleness_incl(exp);
    let root = exp.cct.root();
    let total_idle = exp.columns.get(col, root.0);
    assert!(total_idle > 0.0, "imbalance must produce idleness");
    // Exactly the light half waits: per step, each light rank waits
    // (heavy - light) per-step cycles.
    let light: Vec<usize> = (0..RANKS)
        .filter(|&r| pflotran::Partition::default().scale(r, RANKS) == 1.0)
        .collect();
    assert_eq!(light.len(), RANKS / 2);
    // Ground truth: light step time ≈ STEP_CYCLES, heavy ≈ 1.6×.
    let per_light_wait =
        (run.rank_cycles.iter().max().unwrap() - run.rank_cycles.iter().min().unwrap()) as f64;
    let expected = per_light_wait * light.len() as f64;
    assert!(
        (total_idle - expected).abs() / expected < 0.01,
        "total idleness {total_idle:.3e} vs expected {expected:.3e}"
    );
}

#[test]
fn rank_series_is_bimodal() {
    let run = run();
    let root = run.experiment.cct.root();
    let series = run.rank_inclusive_series(root, Counter::Cycles);
    assert_eq!(series.len(), RANKS);
    let stats = ImbalanceStats::of(&series);
    assert!(stats.cov > 0.15, "bimodal partition: cov {}", stats.cov);
    assert!(
        (stats.max / stats.min - 1.6).abs() < 0.1,
        "heavy/light ratio {:.2}",
        stats.max / stats.min
    );
    // Histogram: two occupied extremes, hollow middle.
    let h = histogram(&series, 8);
    assert!(h[0].2 >= RANKS / 2 - 2, "{h:?}");
    assert!(h[7].2 >= RANKS / 2 - 2, "{h:?}");
    let middle: usize = h[2..6].iter().map(|&(_, _, c)| c).sum();
    assert!(middle <= 2, "hollow middle: {h:?}");
}

#[test]
fn fig7_charts_render() {
    let run = run();
    let root = run.experiment.cct.root();
    let series = run.rank_inclusive_series(root, Counter::Cycles);
    let scatter = ascii_scatter(&series, 64, 10);
    let sorted = ascii_sorted(&series, 64, 10);
    let hist = ascii_histogram(&series, 8, 40);
    assert!(scatter.contains('·'));
    assert!(sorted.contains('▪'));
    assert!(hist.lines().count() == 8);
    // The scatter alternates between two levels; the sorted chart has all
    // low marks before all high marks.
    assert!(scatter.lines().count() > sorted.lines().count() - 3);
}

#[test]
fn summary_statistics_expose_the_imbalance_per_node() {
    let run = run();
    let s = summarize_ranks(
        &run.experiment,
        &[Counter::Cycles, Counter::Idleness],
        &run.rank_direct,
        0,
    );
    let root = run.experiment.cct.root();
    let cyc = s.get(root, MetricId(0));
    assert_eq!(cyc.count() as usize, RANKS);
    // Mean sits between the modes; stddev is a strong signal.
    assert!(cyc.min() < cyc.mean() && cyc.mean() < cyc.max());
    assert!(cyc.coeff_of_variation() > 0.15);
    // Idleness is anti-correlated: only light ranks idle.
    let idle = s.get(root, MetricId(1));
    assert_eq!(idle.min(), 0.0, "heavy ranks never wait");
    assert!(idle.max() > 0.0);
}

#[test]
fn summary_columns_render_in_the_viewer() {
    let run = run();
    let s = summarize_ranks(&run.experiment, &[Counter::Cycles], &run.rank_direct, 0);
    let mut exp = run.experiment;
    s.append_columns(&mut exp, &[Stat::Mean, Stat::Min, Stat::Max, Stat::StdDev]);
    let mut view = View::calling_context(&exp);
    let text = callpath_viewer::render(
        &mut view,
        &callpath_viewer::RenderConfig {
            expand: callpath_viewer::ExpandMode::Levels(1),
            ..Default::default()
        },
    );
    // Long column names are head…tail truncated in the header but remain
    // distinguishable by their statistic suffix.
    assert!(text.contains("(I) mean"), "{text}");
    assert!(text.contains(") stddev"), "{text}");
}
