//! Property tests for the interactive read path: the generation-stamped
//! [`SortCache`] and the top-k window selection must be *observably
//! identical* to naively re-sorting every child list with a full
//! `sort_by` on every query — under random metric mutations, random
//! column/direction choices, and structural growth (lazy Flat-View
//! fills, appended summary columns).

use callpath_core::prelude::*;
use callpath_parallel::{run_spmd, summarize_view_nodes, SpmdConfig};
use callpath_profiler::{Costs, ExecConfig, Op, ProgramBuilder};
use callpath_workloads::generator::random_experiment;
use proptest::prelude::*;
use std::cmp::Ordering;

/// The reference implementation: fresh labels, full stable `sort_by`,
/// exactly the comparator contract the viewer promises (metric order
/// per direction, label ascending on ties; name sort is label
/// ascending).
fn naive_sorted(view: &View<'_>, nodes: &[u32], key: SortKey) -> Vec<u32> {
    let mut out = nodes.to_vec();
    let label = |n: u32| view.label(n);
    match key {
        SortKey::Name => out.sort_by_key(|&a| label(a)),
        SortKey::Column { column, dir } => out.sort_by(|&a, &b| {
            let va = view.value(column, a);
            let vb = view.value(column, b);
            let ord = match dir {
                SortDir::Descending => vb.partial_cmp(&va),
                SortDir::Ascending => va.partial_cmp(&vb),
            };
            ord.unwrap_or(Ordering::Equal)
                .then_with(|| label(a).cmp(&label(b)))
        }),
    }
    out
}

/// The session's caching discipline, reproduced here so the property
/// holds for the exact lookup/insert protocol the viewer uses (stamp at
/// the generation observed *after* computing, so lazy fills that run
/// during the compute don't invalidate the fresh entry).
fn cached(
    view: &mut View<'_>,
    cache: &mut SortCache,
    labels: &mut LabelCache,
    slot: u64,
    key: SortKey,
    nodes: &[u32],
) -> Vec<u32> {
    let generation = view.generation();
    if let Some(order) = cache.lookup(slot, key, generation) {
        return order;
    }
    let mut out = nodes.to_vec();
    sort_nodes_with(view, labels, &mut out, key);
    cache.insert(slot, key, view.generation(), out.clone());
    out
}

fn pick_key(op: u8) -> SortKey {
    match op % 5 {
        0 => SortKey::Name,
        1 => SortKey::Column {
            column: ColumnId(0),
            dir: SortDir::Descending,
        },
        2 => SortKey::Column {
            column: ColumnId(0),
            dir: SortDir::Ascending,
        },
        3 => SortKey::Column {
            column: ColumnId(1),
            dir: SortDir::Descending,
        },
        _ => SortKey::Column {
            column: ColumnId(1),
            dir: SortDir::Ascending,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under an interleaving of queries and metric mutations, every
    /// cached order — hit or recompute — equals the naive full re-sort.
    #[test]
    fn cached_orders_match_naive_recomputation(
        seed in 0u64..5_000,
        size in 5usize..200,
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>(), -1_000i32..1_000),
            4..14,
        ),
    ) {
        let exp = random_experiment(seed, size, 10);
        let mut view = View::flat(&exp);
        let mut cache = SortCache::new();
        let mut labels = LabelCache::new();
        for (op, a, b, delta) in ops {
            let key = pick_key(op);
            // Alternate between the top-level list and a child list
            // (forcing a lazy fill on first touch).
            let roots = view.roots();
            prop_assert!(!roots.is_empty());
            let (slot, nodes) = if a % 2 == 0 {
                (TOP_SLOT_BASE, roots)
            } else {
                let p = roots[a as usize % roots.len()];
                (p as u64, view.children(p))
            };

            let got = cached(&mut view, &mut cache, &mut labels, slot, key, &nodes);
            prop_assert_eq!(&got, &naive_sorted(&view, &nodes, key));

            // A second identical query must be served by the cache and
            // still agree with the reference.
            let (hits_before, sorts_before) = cache.stats();
            let again = cached(&mut view, &mut cache, &mut labels, slot, key, &nodes);
            let (hits_after, sorts_after) = cache.stats();
            prop_assert_eq!(&again, &got);
            prop_assert_eq!(hits_after, hits_before + 1);
            prop_assert_eq!(sorts_after, sorts_before);

            // Mutate a metric value; the next query must reflect it.
            if let View::Flat { view: flat, .. } = &mut view {
                let len = flat.tree.len() as u32;
                let col = ColumnId(u32::from(b % 2 == 0));
                flat.tree.columns.add(col, b as u32 % len, f64::from(delta));
            }
            let after = cached(&mut view, &mut cache, &mut labels, slot, key, &nodes);
            prop_assert_eq!(&after, &naive_sorted(&view, &nodes, key));
        }
    }

    /// The top-k partial selection produces exactly the first k entries
    /// of the full stable sort, for every direction and window size.
    #[test]
    fn top_k_window_matches_full_sort_prefix(
        seed in 0u64..5_000,
        size in 5usize..200,
        k in 0usize..12,
        col in 0u32..2,
        ascending in any::<bool>(),
        from_children in any::<bool>(),
    ) {
        let exp = random_experiment(seed, size, 10);
        let mut view = View::flat(&exp);
        let mut labels = LabelCache::new();
        let dir = if ascending { SortDir::Ascending } else { SortDir::Descending };
        let roots = view.roots();
        let nodes = if from_children && !roots.is_empty() {
            view.children(roots[seed as usize % roots.len()])
        } else {
            roots
        };
        let key = SortKey::Column { column: ColumnId(col), dir };
        let want = naive_sorted(&view, &nodes, key);
        let mut got = nodes.clone();
        top_k_by_column(&view, &mut labels, &mut got, ColumnId(col), dir, k);
        prop_assert_eq!(got.as_slice(), &want[..k.min(want.len())]);
    }
}

/// Appending summary columns to a view tree (the `hpcprof` finalization
/// step in `callpath-parallel`) bumps the tree's column generation, so
/// stale cached orders die and the new column sorts correctly.
#[test]
fn append_view_columns_invalidates_cached_orders() {
    let mut b = ProgramBuilder::new("x");
    let f = b.file("x.c");
    let g = b.declare("g", f, 10);
    let h = b.declare("h", f, 30);
    let main = b.declare("main", f, 1);
    b.body(g, vec![Op::work(11, Costs::cycles(1_000))]);
    b.body(h, vec![Op::work(31, Costs::cycles(500))]);
    b.body(main, vec![Op::call(2, g), Op::call(3, h)]);
    b.entry(main);
    let program = b.build();
    let run = run_spmd(
        &program,
        &SpmdConfig::new(vec![1.0, 3.0], ExecConfig::default()),
    );
    let exp = &run.experiment;

    let mut view = View::flat(exp);
    let mut cache = SortCache::new();
    let mut labels = LabelCache::new();
    let key = SortKey::Column {
        column: ColumnId(0),
        dir: SortDir::Descending,
    };

    let roots = view.roots();
    let first = cached(
        &mut view,
        &mut cache,
        &mut labels,
        TOP_SLOT_BASE,
        key,
        &roots,
    );
    assert_eq!(cache.stats(), (0, 1), "first query computes");
    let again = cached(
        &mut view,
        &mut cache,
        &mut labels,
        TOP_SLOT_BASE,
        key,
        &roots,
    );
    assert_eq!(again, first);
    assert_eq!(cache.stats(), (1, 1), "second query hits");

    // Append mean/max summary columns directly onto the flat tree.
    let gen_before = view.generation();
    let new_cols = {
        let View::Flat { exp, view: flat } = &mut view else {
            unreachable!()
        };
        let s = summarize_view_nodes(
            exp,
            &flat.tree,
            &[callpath_profiler::Counter::Cycles],
            &run.rank_direct,
            2,
        );
        s.append_view_columns(exp, &mut flat.tree, &[Stat::Mean, Stat::Max])
    };
    assert!(
        view.generation() > gen_before,
        "append bumps the generation"
    );

    // The old entry is stale: the same query recomputes (no false hit)...
    let recomputed = cached(
        &mut view,
        &mut cache,
        &mut labels,
        TOP_SLOT_BASE,
        key,
        &roots,
    );
    assert_eq!(cache.stats(), (1, 2), "stale entry forces a recompute");
    assert_eq!(recomputed, naive_sorted(&view, &roots, key));

    // ...and sorting by a freshly appended column matches the reference.
    let mean_key = SortKey::Column {
        column: new_cols[0],
        dir: SortDir::Descending,
    };
    let by_mean = cached(
        &mut view,
        &mut cache,
        &mut labels,
        TOP_SLOT_BASE,
        mean_key,
        &roots,
    );
    assert_eq!(by_mean, naive_sorted(&view, &roots, mean_key));
}
