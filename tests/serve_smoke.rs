//! End-to-end smoke of `callpath-serve`: boot the real binary on an
//! ephemeral port, drive a concurrent open/expand/sort/hot-path
//! workload from several client threads against s3d, and require the
//! served renders to be byte-identical to a direct [`Session`] running
//! the same commands. A malformed-request fuzz and a SIGINT drain
//! round out the robustness contract from DESIGN.md §14.
//!
//! The `#[ignore]`d bench variant records `BENCH_serve.json` — exact
//! client-side p50/p95 request latency plus sessions held — and is run
//! in release mode by `scripts/bench_smoke.sh`.

use callpath::serve::json::{self, Json};
use callpath_core::prelude::{ColumnId, SourceStore, ViewKind};
use callpath_expdb::open_lazy_path;
use callpath_viewer::{Command, Session};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command as Proc, Stdio};
use std::time::{Duration, Instant};

fn serve_bin() -> &'static str {
    env!("CARGO_BIN_EXE_callpath-serve")
}

fn record_bin() -> &'static str {
    env!("CARGO_BIN_EXE_callpath-record")
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "callpath-serve-smoke-{}-{name}",
        std::process::id()
    ));
    p
}

/// Record the s3d workload once per process.
fn s3d_db() -> std::path::PathBuf {
    let db = tmp("s3d.cpdb");
    if !db.exists() {
        let out = Proc::new(record_bin())
            .args(["--workload", "s3d", "-o", db.to_str().unwrap()])
            .output()
            .expect("run callpath-record");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    db
}

/// A running server plus the address it bound.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn start(extra: &[&str]) -> ServerProc {
        let mut child = Proc::new(serve_bin())
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn callpath-serve");
        let stdout = child.stdout.as_mut().unwrap();
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listening line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
            .to_owned();
        ServerProc { child, addr }
    }

    /// SIGINT, then require a clean exit within the drain budget.
    fn interrupt_and_wait(mut self) {
        let pid = self.child.id().to_string();
        assert!(Proc::new("kill")
            .args(["-INT", &pid])
            .status()
            .unwrap()
            .success());
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(status) = self.child.try_wait().unwrap() {
                assert!(status.success(), "server exited with {status}");
                return;
            }
            assert!(
                Instant::now() < deadline,
                "server did not drain after SIGINT"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One protocol connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to server");
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn call(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("send request");
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        json::parse(reply.trim()).unwrap_or_else(|e| panic!("bad reply {reply:?}: {e}"))
    }

    /// Like [`Client::call`], but tolerates the server dropping the
    /// connection instead of replying (the contract for requests past
    /// the line-length cap, where resynchronization is impossible).
    fn try_call(&mut self, line: &str) -> Option<Json> {
        writeln!(self.writer, "{line}").ok()?;
        self.writer.flush().ok()?;
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(
                json::parse(reply.trim()).unwrap_or_else(|e| panic!("bad reply {reply:?}: {e}")),
            ),
        }
    }

    /// Call and require `ok:true`, returning `result`.
    fn ok(&mut self, line: &str) -> Json {
        let v = self.call(line);
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "request failed: {line} -> {}",
            v.to_json()
        );
        v.get("result").cloned().unwrap()
    }

    fn open(&mut self, db: &std::path::Path) -> u64 {
        let line = format!(
            r#"{{"method":"open","params":{{"path":"{}"}}}}"#,
            db.display()
        );
        self.ok(&line)
            .get("session")
            .and_then(Json::as_u64)
            .expect("session id")
    }
}

/// The navigation script every client runs, as (request template,
/// equivalent direct-session command). `SID` is substituted.
fn script() -> Vec<(String, Command)> {
    vec![
        (
            r#"{"method":"find","params":{"session":SID,"needle":"transport"}}"#.into(),
            Command::Find("transport".into()),
        ),
        (
            r#"{"method":"sort","params":{"session":SID,"column":1}}"#.into(),
            Command::SortBy(ColumnId(1)),
        ),
        (
            r#"{"method":"hot-path","params":{"session":SID}}"#.into(),
            Command::HotPath,
        ),
        (
            r#"{"method":"view","params":{"session":SID,"view":"flat"}}"#.into(),
            Command::SwitchView(ViewKind::Flat),
        ),
        (
            r#"{"method":"flatten","params":{"session":SID}}"#.into(),
            Command::Flatten,
        ),
        (
            r#"{"method":"view","params":{"session":SID,"view":"callers"}}"#.into(),
            Command::SwitchView(ViewKind::Callers),
        ),
        (
            r#"{"method":"view","params":{"session":SID,"view":"ccv"}}"#.into(),
            Command::SwitchView(ViewKind::CallingContext),
        ),
    ]
}

/// The renders the direct session produces for [`script`].
fn expected_renders(db: &std::path::Path) -> Vec<String> {
    let exp = open_lazy_path(db).expect("open db directly");
    let mut session = Session::new(&exp, SourceStore::new());
    script()
        .into_iter()
        .map(|(_, cmd)| {
            session.apply(cmd).expect("direct command");
            session.render_numbered().0
        })
        .collect()
}

/// Drive one full scripted session; returns per-request latencies.
fn run_script(client: &mut Client, db: &std::path::Path, expected: &[String]) -> Vec<Duration> {
    let sid = client.open(db);
    let mut latencies = Vec::new();
    for (i, (template, _)) in script().into_iter().enumerate() {
        let line = template.replace("SID", &sid.to_string());
        let start = Instant::now();
        let result = client.ok(&line);
        latencies.push(start.elapsed());
        let got = result.get("render").and_then(Json::as_str).unwrap();
        assert_eq!(got, expected[i], "render diverged at step {i}: {line}");
    }
    latencies
}

const CLIENT_THREADS: usize = 4;

#[test]
fn concurrent_clients_get_byte_identical_renders() {
    let db = s3d_db();
    let server = ServerProc::start(&[]);
    let expected = expected_renders(&db);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|_| {
                let addr = server.addr.clone();
                let db = db.clone();
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = Client::connect(&addr);
                    // Two scripted sessions per connection: exercises
                    // session multiplexing, not just parallel sockets.
                    for _ in 0..2 {
                        run_script(&mut client, &db, expected);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    // The server survived and the counters saw every request.
    let mut client = Client::connect(&server.addr);
    let stats = client.ok(r#"{"method":"stats"}"#);
    let opened = stats.get("sessions_opened").and_then(Json::as_u64).unwrap();
    assert_eq!(opened as usize, CLIENT_THREADS * 2);
    assert_eq!(stats.get("errors").and_then(Json::as_u64), Some(0));

    server.interrupt_and_wait();
}

#[test]
fn malformed_requests_over_tcp_never_kill_the_server() {
    let db = s3d_db();
    let server = ServerProc::start(&[]);

    let mut client = Client::connect(&server.addr);
    let sid = client.open(&db);
    for junk in [
        r#"{"id":1,"met"#,
        "not json",
        r#"{"method":"frobnicate"}"#,
        r#"{"method":"expand","params":{"session":1,"node":4294967296}}"#,
        r#"{"method":"render","params":{"session":424242}}"#,
        r#"{"method":"open","params":{"path":"/nonexistent.cpdb"}}"#,
        "[[[[[[",
        "{}",
    ] {
        let v = client.call(junk);
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(false),
            "junk was accepted: {junk}"
        );
        assert!(v.get("error").and_then(|e| e.get("code")).is_some());
    }
    // An oversized line is rejected: either a structured `ok:false`
    // reply or a dropped connection (the reply can be lost to the RST
    // when the server closes with the tail of the line still in
    // flight) — but never a success and never a dead server.
    let huge = format!(r#"{{"method":"ping","pad":"{}"}}"#, "x".repeat(2 << 20));
    if let Some(v) = client.try_call(&huge) {
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    }

    // A fresh connection still gets service, and the pre-fuzz session
    // is intact.
    let mut client = Client::connect(&server.addr);
    let line = format!(r#"{{"method":"render","params":{{"session":{sid}}}}}"#);
    client.ok(&line);

    server.interrupt_and_wait();
}

#[test]
fn eviction_is_reported_in_stats() {
    let db = s3d_db();
    let server = ServerProc::start(&["--max-sessions", "2"]);
    let mut client = Client::connect(&server.addr);
    for _ in 0..5 {
        client.open(&db);
    }
    let stats = client.ok(r#"{"method":"stats"}"#);
    assert_eq!(stats.get("sessions").and_then(Json::as_u64), Some(2));
    assert_eq!(stats.get("evictions").and_then(Json::as_u64), Some(3));
    server.interrupt_and_wait();
}

/// Release-mode bench: exact client-side request latencies across
/// concurrent scripted sessions, written to `BENCH_serve.json`.
#[test]
#[ignore]
fn serve_bench() {
    const ROUNDS: usize = 25;
    let db = s3d_db();
    let server = ServerProc::start(&[]);
    let expected = expected_renders(&db);

    let mut all_latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|_| {
                let addr = server.addr.clone();
                let db = db.clone();
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = Client::connect(&addr);
                    let mut latencies = Vec::new();
                    for _ in 0..ROUNDS {
                        latencies.extend(run_script(&mut client, &db, expected));
                    }
                    latencies
                })
            })
            .collect();
        for h in handles {
            all_latencies.extend(h.join().expect("client thread"));
        }
    });

    let mut client = Client::connect(&server.addr);
    let stats = client.ok(r#"{"method":"stats"}"#);
    let sessions_held = stats.get("sessions").and_then(Json::as_u64).unwrap();
    let requests = stats.get("requests").and_then(Json::as_u64).unwrap();

    all_latencies.sort();
    let quantile = |q: f64| -> f64 {
        let idx = ((all_latencies.len() - 1) as f64 * q).round() as usize;
        all_latencies[idx].as_secs_f64() * 1e3
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let record = format!(
        "{{\n  \"bench\": \"serve_smoke\",\n  \"cores\": {},\n  \"client_threads\": {},\n  \"requests_measured\": {},\n  \"requests_total_server\": {},\n  \"sessions_held\": {},\n  \"p50_request_ms\": {:.4},\n  \"p95_request_ms\": {:.4},\n  \"max_request_ms\": {:.4}\n}}\n",
        cores,
        CLIENT_THREADS,
        all_latencies.len(),
        requests,
        sessions_held,
        quantile(0.50),
        quantile(0.95),
        quantile(1.0),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_serve.json");
    std::fs::write(&path, &record).expect("write bench record");
    println!("perf record written to {}:\n{record}", path.display());

    server.interrupt_and_wait();
}
