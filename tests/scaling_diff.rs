//! Section VI-A's first technique: "pinpoint and quantify scalability
//! bottlenecks in context [by] scaling and differencing call path
//! profiles from a pair of executions" (after Coarfa et al., ref. [3]).
//!
//! Two scenarios:
//! * **before/after**: diff the untuned and tuned S3D runs; the loss
//!   column must localize the entire improvement in the flux-diffusion
//!   loop;
//! * **weak scaling**: diff per-rank PFLOTRAN profiles from light and
//!   heavy ranks; the loss concentrates in the compute routines that
//!   received more cells.

use callpath_core::prelude::*;
use callpath_profiler::ExecConfig;
use callpath_workloads::{pipeline, s3d};

fn find_frame(exp: &Experiment, name: &str) -> Option<NodeId> {
    exp.cct.all_nodes().find(|&n| {
        matches!(exp.cct.kind(n), ScopeKind::Frame { proc, .. }
            if exp.cct.names.proc_name(proc) == name)
    })
}

#[test]
fn before_after_diff_localizes_the_tuning_win() {
    let tuned = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::tuned()),
        &ExecConfig::default(),
    );
    let base = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    // Loss of the *base* relative to the tuned run: where is the base
    // wasting time that the tuned version does not?
    let analysis = scaling_loss(&tuned, "tuned", &base, "base", "PAPI_TOT_CYC", 1.0).unwrap();
    let exp = &analysis.experiment;

    // Hot path on the loss column must drill into diffusive_flux_.
    let mut view = View::calling_context(exp);
    let roots = view.roots();
    let path = view.hot_path(roots[0], analysis.loss_incl, HotPathConfig::default());
    let labels: Vec<String> = path.iter().map(|&n| view.label(n)).collect();
    assert!(
        labels.contains(&"diffusive_flux_".to_owned()),
        "loss hot path: {labels:?}"
    );

    // The flux frame's loss ≈ the whole-program delta; chemkin's ≈ 0.
    let flux = find_frame(exp, "diffusive_flux_").unwrap();
    let chemkin = find_frame(exp, "chemkin_m_reaction_rate_").unwrap();
    let program_delta = exp.columns.get(analysis.loss_incl, exp.cct.root().0);
    let flux_loss = exp.columns.get(analysis.loss_incl, flux.0);
    let chemkin_loss = exp.columns.get(analysis.loss_incl, chemkin.0).abs();
    assert!(program_delta > 0.0);
    assert!(
        (flux_loss - program_delta).abs() / program_delta < 0.05,
        "flux carries the delta: {flux_loss:.3e} of {program_delta:.3e}"
    );
    assert!(
        chemkin_loss < 0.02 * program_delta,
        "chemkin unchanged: {chemkin_loss:.3e}"
    );

    // And the paper's headline number: base/tuned ratio in the flux loop.
    let base_col = exp.columns.get(analysis.peer_incl, flux.0);
    let tuned_col = exp.columns.get(analysis.base_incl, flux.0);
    let speedup = base_col / tuned_col;
    assert!((speedup - 2.9).abs() < 0.2, "{speedup:.2}x");
}

#[test]
fn weak_scaling_diff_between_ranks() {
    use callpath_profiler::{execute, lower, Counter};
    use callpath_structure::recover;
    // One light rank and one 1.6x-loaded rank of the PFLOTRAN program;
    // per-rank profiles should be identical under perfect weak scaling.
    let program = callpath_workloads::pflotran::program();
    let bin = lower(&program);
    let s = recover(&bin).unwrap();
    let cfg = ExecConfig::default();
    let light = execute(&bin, &cfg).unwrap();
    let heavy = execute(
        &bin,
        &ExecConfig {
            work_scale: 1.6,
            ..cfg.clone()
        },
    )
    .unwrap();
    let light_exp = callpath_prof::correlate(&s, &light.profile, cfg.periods, StorageKind::Dense);
    let heavy_exp = callpath_prof::correlate(&s, &heavy.profile, cfg.periods, StorageKind::Dense);

    let analysis = scaling_loss(
        &light_exp,
        "light",
        &heavy_exp,
        "heavy",
        "PAPI_TOT_CYC",
        1.0,
    )
    .unwrap();
    let exp = &analysis.experiment;
    let root = exp.cct.root();
    let total_loss = exp.columns.get(analysis.loss_incl, root.0);
    let expected = (heavy.totals[Counter::Cycles] - light.totals[Counter::Cycles]) as f64;
    assert!(
        (total_loss - expected).abs() / expected < 0.02,
        "loss {total_loss:.3e} vs truth {expected:.3e}"
    );
    // The % scaling loss column: ~37.5% of the heavy run is excess
    // (0.6/1.6).
    let frac = exp.columns.get(analysis.loss_frac, root.0);
    assert!((frac - 0.6 / 1.6).abs() < 0.02, "fraction {frac:.3}");
}

#[test]
fn merged_experiment_presents_in_all_views() {
    let a = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    let b = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::tuned()),
        &ExecConfig::default(),
    );
    let merged = merge_experiments(&a, "base", &b, "tuned", StorageKind::Dense);
    assert_eq!(merged.raw.metric_count(), 6, "3 metrics per side");
    // All three views build and the callers view distinguishes both runs.
    let callers = View::callers(&merged);
    let flux = callers
        .roots()
        .into_iter()
        .find(|&r| callers.label(r) == "diffusive_flux_")
        .unwrap();
    let base_cyc = merged.inclusive_col(merged.raw.find("PAPI_TOT_CYC@base").unwrap());
    let tuned_cyc = merged.inclusive_col(merged.raw.find("PAPI_TOT_CYC@tuned").unwrap());
    assert!(
        callers.value(base_cyc, flux) > 2.0 * callers.value(tuned_cyc, flux),
        "both runs visible side by side in one view"
    );
    let _ = View::flat(&merged);
    let _ = View::calling_context(&merged);
}

#[test]
fn strong_scaling_diff_exposes_the_serial_section() {
    use callpath_workloads::pflotran;
    // Per-rank profiles at 4 and 8 ranks: the solve should halve, the
    // serial checkpoint cannot. Expectation scale = 0.5.
    let program = pflotran::strong_scaling_program();
    let run_at = |n: usize| {
        let cfg = ExecConfig {
            work_scale: pflotran::strong_scale(n),
            ..ExecConfig::default()
        };
        pipeline::build_experiment(&program, &cfg)
    };
    let q4 = run_at(4);
    let q8 = run_at(8);
    let analysis = scaling_loss(&q4, "4r", &q8, "8r", "PAPI_TOT_CYC", 0.5).unwrap();
    let exp = &analysis.experiment;

    // Hot path on the loss lands in checkpoint_io.
    let mut view = View::calling_context(exp);
    let roots = view.roots();
    let path = view.hot_path(roots[0], analysis.loss_incl, HotPathConfig::default());
    let labels: Vec<String> = path.iter().map(|&n| view.label(n)).collect();
    assert!(
        labels.contains(&"checkpoint_io".to_owned()),
        "strong-scaling loss hot path: {labels:?}"
    );

    // Quantitative: the solve's loss ≈ 0; checkpoint's loss ≈ half its
    // own cost (it "should" have halved but did not).
    let solve = find_frame(exp, "flow_solve").unwrap();
    let ckpt = find_frame(exp, "checkpoint_io").unwrap();
    let solve_loss = exp.columns.get(analysis.loss_incl, solve.0);
    let ckpt_loss = exp.columns.get(analysis.loss_incl, ckpt.0);
    let ckpt_cost_8r = exp.columns.get(analysis.peer_incl, ckpt.0);
    assert!(
        solve_loss.abs() < 0.02 * ckpt_cost_8r,
        "solve scales perfectly: loss {solve_loss:.3e}"
    );
    assert!(
        (ckpt_loss - 0.5 * ckpt_cost_8r).abs() < 0.02 * ckpt_cost_8r,
        "checkpoint loss {ckpt_loss:.3e} vs half of {ckpt_cost_8r:.3e}"
    );
}

#[test]
fn merged_experiments_survive_the_database() {
    // A diff result (metric names with '@', derived loss formulas) must
    // round-trip through both database formats.
    let a = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    let b = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::tuned()),
        &ExecConfig::default(),
    );
    let analysis = scaling_loss(&a, "base", &b, "tuned", "PAPI_TOT_CYC", 1.0).unwrap();
    let exp = &analysis.experiment;

    let xml = callpath_expdb::to_xml(exp);
    let back = callpath_expdb::from_xml(&xml).unwrap();
    assert_eq!(back.columns.column_count(), exp.columns.column_count());
    let root = exp.cct.root();
    for c in 0..exp.columns.column_count() as u32 {
        assert_eq!(
            back.columns.get(ColumnId(c), root.0),
            exp.columns.get(ColumnId(c), root.0),
            "column {c}"
        );
    }
    let bin = callpath_expdb::to_binary(exp);
    let back = callpath_expdb::from_binary(&bin).unwrap();
    assert_eq!(
        back.columns.get(analysis.loss_incl, root.0),
        exp.columns.get(analysis.loss_incl, root.0)
    );
}
