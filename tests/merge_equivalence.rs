//! Property tests for the pruned-journal pairwise merge: across worker
//! counts and adversarial profile mixes — empty ranks, shards holding a
//! single rank, duplicate call paths from cloned profiles — the
//! parallel reduction must produce an `Experiment` and per-rank costs
//! byte/ID-identical to the sequential correlator. This is the
//! equivalence contract the tree merge's determinism argument
//! (DESIGN.md §13) is on the hook for.

use callpath_core::prelude::*;
use callpath_prof::{Correlator, ParallelCorrelator, PerNodeCosts};
use callpath_profiler::{execute, lower, Counter, ExecConfig, RawProfile};
use callpath_structure::{recover, Structure};
use callpath_workloads::generator::{random_program, GenConfig};
use proptest::prelude::*;

const THREAD_POINTS: [usize; 4] = [1, 2, 3, 8];

fn base_workload(seed: u64, n_procs: usize) -> (Structure, callpath_profiler::Binary, ExecConfig) {
    let program = random_program(GenConfig {
        seed,
        n_procs,
        calls_per_proc: 2,
        loop_probability: 0.4,
        work_cycles: 5_000,
    });
    let bin = lower(&program);
    let cfg = ExecConfig {
        jitter_seed: Some(seed ^ 0x51c2),
        ..ExecConfig::single(Counter::Cycles, 509)
    };
    (recover(&bin).unwrap(), bin, cfg)
}

/// Build an adversarial rank mix: `empty_mask` bit r makes rank r an
/// empty profile (a rank that recorded no samples at all), `dup_mask`
/// bit r makes rank r a byte-for-byte clone of rank 0's profile, so
/// identical call paths arrive from multiple shards.
fn rank_mix(
    bin: &callpath_profiler::Binary,
    cfg: &ExecConfig,
    n_ranks: usize,
    empty_mask: u16,
    dup_mask: u16,
) -> Vec<RawProfile> {
    let first = execute(bin, cfg).unwrap().profile;
    (0..n_ranks)
        .map(|r| {
            if empty_mask & (1 << r) != 0 {
                RawProfile::new()
            } else if r == 0 || dup_mask & (1 << r) != 0 {
                first.clone()
            } else {
                let rank_cfg = ExecConfig {
                    work_scale: 1.0 + (r % 5) as f64 * 0.4,
                    jitter_seed: cfg.jitter_seed.map(|s| s.wrapping_add(r as u64)),
                    ..cfg.clone()
                };
                execute(bin, &rank_cfg).unwrap().profile
            }
        })
        .collect()
}

fn sequential_reference(
    structure: &Structure,
    cfg: &ExecConfig,
    profiles: &[RawProfile],
) -> (Experiment, Vec<PerNodeCosts>) {
    let mut seq = Correlator::new(structure, cfg.periods);
    let costs: Vec<PerNodeCosts> = profiles.iter().map(|p| seq.add(p)).collect();
    (seq.finish(StorageKind::Dense), costs)
}

/// Full identity check: tree shape and ids, raw columns bit-for-bit,
/// presentation columns bit-for-bit, per-rank costs entry-for-entry.
fn assert_equivalent(structure: &Structure, cfg: &ExecConfig, profiles: &[RawProfile], ctx: &str) {
    let (seq_exp, seq_costs) = sequential_reference(structure, cfg, profiles);
    for threads in THREAD_POINTS {
        let (par_exp, par_costs) = ParallelCorrelator::new(structure, cfg.periods)
            .with_threads(threads)
            .correlate(profiles, StorageKind::Dense);
        assert_eq!(
            seq_exp.cct.len(),
            par_exp.cct.len(),
            "{ctx} t={threads}: node count"
        );
        for n in seq_exp.cct.all_nodes() {
            assert_eq!(
                seq_exp.cct.kind(n),
                par_exp.cct.kind(n),
                "{ctx} t={threads}: kind of {n:?}"
            );
            assert_eq!(
                seq_exp.cct.parent(n),
                par_exp.cct.parent(n),
                "{ctx} t={threads}: parent of {n:?}"
            );
        }
        assert_eq!(par_costs, seq_costs, "{ctx} t={threads}: per-rank costs");
        for mi in 0..seq_exp.raw.metric_count() {
            let m = MetricId::from_usize(mi);
            let a: Vec<(u32, f64)> = seq_exp.raw.column(m).nonzero_sorted().collect();
            let b: Vec<(u32, f64)> = par_exp.raw.column(m).nonzero_sorted().collect();
            assert_eq!(a, b, "{ctx} t={threads}: raw column {mi}");
        }
        for c in seq_exp.columns.columns() {
            let a: Vec<(u32, f64)> = seq_exp.columns.vec(c).nonzero_sorted().collect();
            let b: Vec<(u32, f64)> = par_exp.columns.vec(c).nonzero_sorted().collect();
            assert_eq!(a, b, "{ctx} t={threads}: column {c:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pairwise_merge_is_identical_to_sequential_under_adversarial_mixes(
        seed in 0u64..1_000,
        n_procs in 4usize..20,
        n_ranks in 4usize..13,
        empty_mask in 0u16..8192,
        dup_mask in 0u16..8192,
    ) {
        let (structure, bin, cfg) = base_workload(seed, n_procs);
        let profiles = rank_mix(&bin, &cfg, n_ranks, empty_mask, dup_mask);
        let ctx = format!(
            "seed={seed} procs={n_procs} ranks={n_ranks} empty={empty_mask:b} dup={dup_mask:b}"
        );
        assert_equivalent(&structure, &cfg, &profiles, &ctx);
    }
}

#[test]
fn single_rank_shards_merge_correctly() {
    // More workers than ranks: every shard holds exactly one rank, so
    // the merge tree is as deep as it gets relative to the input.
    let (structure, bin, cfg) = base_workload(7, 10);
    let profiles = rank_mix(&bin, &cfg, 8, 0, 0);
    let (seq_exp, seq_costs) = sequential_reference(&structure, &cfg, &profiles);
    let (par_exp, par_costs) = ParallelCorrelator::new(&structure, cfg.periods)
        .with_threads(8)
        .correlate(&profiles, StorageKind::Dense);
    assert_eq!(par_exp.cct.len(), seq_exp.cct.len());
    assert_eq!(par_costs, seq_costs);
}

#[test]
fn all_empty_ranks_reduce_to_a_bare_root() {
    let (structure, _bin, cfg) = base_workload(3, 6);
    let profiles: Vec<RawProfile> = (0..6).map(|_| RawProfile::new()).collect();
    let (par_exp, par_costs) = ParallelCorrelator::new(&structure, cfg.periods)
        .with_threads(3)
        .correlate(&profiles, StorageKind::Dense);
    assert_eq!(par_exp.cct.len(), 1, "only the root survives");
    assert!(par_costs.iter().all(|c| c.is_empty()));
}

#[test]
fn odd_shard_counts_preserve_rank_order() {
    // Seven single-rank shards force a pass-through shard at every
    // level of the merge tree; rank order must still come out global.
    let (structure, bin, cfg) = base_workload(11, 12);
    let profiles = rank_mix(&bin, &cfg, 7, 0b0010010, 0);
    assert_equivalent(&structure, &cfg, &profiles, "odd-shards");
}
