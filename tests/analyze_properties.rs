//! Query-evaluation invariants on randomly generated CCTs:
//!
//! * **composition** — a composite predicate's mask equals the
//!   node-by-node boolean combination of its leaves' masks, and
//!   `subtree(p)` equals the quadratic any-descendant-matches
//!   definition;
//! * **threads** — the mask is identical at 1, 2, 4 and 8 worker
//!   threads (the chunk-parallel leaf evaluation is position-stable);
//! * **storage** — an eager in-memory experiment, its v2 binary
//!   round-trip and its lazily opened v2.1 form all answer a query
//!   identically.
//!
//! `scripts/ci.sh` reruns this file with `CALLPATH_THREADS` pinned to 1
//! and 4, so the auto-resolved thread count is covered at both
//! degenerate and fanned-out settings.

use callpath_analyze::query::{eval_mask, run_query, Query};
use callpath_core::prelude::*;
use callpath_workloads::generator::random_experiment;
use proptest::prelude::*;

/// Leaf predicates that exercise every leaf kind on the generator's
/// naming scheme ("proc_NNNN", module "synth", files "synth_N.c",
/// metric "cycles").
const LEAVES: [&str; 4] = [
    r#"proc ~ "proc_00[0-4]""#,
    r#"incl("cycles") > 2%"#,
    r#"excl("cycles") > 0"#,
    r#"file ~ "synth_0\.c""#,
];

fn mask_of(exp: &Experiment, text: &str, threads: usize) -> Vec<bool> {
    let q = Query::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
    eval_mask(exp, &q.pred, threads).unwrap_or_else(|e| panic!("{text}: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `(A and B) or not C` == the same formula applied node-wise to
    /// the leaf masks.
    #[test]
    fn composition_matches_nodewise_boolean_algebra(seed in 0u64..1000) {
        let exp = random_experiment(seed, 250, 24);
        let a = mask_of(&exp, LEAVES[0], 1);
        let b = mask_of(&exp, LEAVES[1], 1);
        let c = mask_of(&exp, LEAVES[2], 1);
        let composite = format!("({} and {}) or not {}", LEAVES[0], LEAVES[1], LEAVES[2]);
        let got = mask_of(&exp, &composite, 1);
        for n in 0..exp.cct.len() {
            prop_assert_eq!(got[n], (a[n] && b[n]) || !c[n], "node {}", n);
        }
    }

    /// `subtree(p)` == "some node in my subtree (me included) matches
    /// p", checked against the quadratic ancestors-based definition.
    #[test]
    fn subtree_matches_the_quadratic_definition(seed in 0u64..1000) {
        let exp = random_experiment(seed.wrapping_add(7000), 200, 16);
        for leaf in [LEAVES[0], LEAVES[1]] {
            let inner = mask_of(&exp, leaf, 1);
            let got = mask_of(&exp, &format!("subtree({leaf})"), 1);
            for n in exp.cct.all_nodes() {
                let want = inner[n.0 as usize]
                    || exp
                        .cct
                        .preorder(n)
                        .any(|d| inner[d.0 as usize]);
                prop_assert_eq!(got[n.0 as usize], want, "node {} of {}", n.0, leaf);
            }
        }
    }

    /// The mask never depends on the worker-thread count.
    #[test]
    fn thread_count_never_changes_a_query(seed in 0u64..1000) {
        let exp = random_experiment(seed.wrapping_add(14000), 300, 24);
        let composite = format!(
            "subtree({} and {}) or ({} and not {})",
            LEAVES[0], LEAVES[1], LEAVES[2], LEAVES[3]
        );
        for text in LEAVES.iter().copied().chain([composite.as_str()]) {
            let base = mask_of(&exp, text, 1);
            for threads in [2usize, 4, 8] {
                prop_assert_eq!(
                    &mask_of(&exp, text, threads),
                    &base,
                    "threads={} query={}",
                    threads,
                    text
                );
            }
        }
    }

    /// Eager in-memory, v2 round-trip and lazy v2.1 storage answer
    /// identically — same matches, same scores, same paths.
    #[test]
    fn eager_and_lazy_storage_agree(seed in 0u64..1000) {
        let exp = random_experiment(seed.wrapping_add(21000), 220, 20);
        let v2 = callpath_expdb::from_binary(&callpath_expdb::to_binary_v2(&exp)).unwrap();
        let lazy = callpath_expdb::open_lazy(callpath_expdb::to_binary_v21(&exp)).unwrap();
        let composite = format!("({} or {}) and not {}", LEAVES[0], LEAVES[3], LEAVES[2]);
        for text in LEAVES.iter().copied().chain([composite.as_str()]) {
            let want = run_query(&exp, text, None, 25, 1).unwrap();
            let got_v2 = run_query(&v2, text, None, 25, 1).unwrap();
            let got_lazy = run_query(&lazy, text, None, 25, 1).unwrap();
            prop_assert_eq!(&got_v2, &want, "v2 diverged on {}", text);
            prop_assert_eq!(&got_lazy, &want, "lazy diverged on {}", text);
        }
    }
}
