//! E10 — Section VIII's comparison point: what the CCT views answer that
//! a gprof-style flat profile cannot.
//!
//! gprof distributes a callee's time to callers **in proportion to call
//! counts**. On Fig. 1's program, `g` is called once each from `f`, `g`
//! and `m` — so gprof splits its time evenly among callers — while the
//! calling-context truth (Fig. 2a) is that `g`-from-`f` costs twice as
//! much as `g`-from-`m` (6 vs 3). The Callers View reports the truth;
//! gprof structurally cannot.

use callpath_baseline::analyze;
use callpath_core::prelude::*;
use callpath_profiler::{execute, lower, Counter, ExecConfig};
use callpath_structure::recover;
use callpath_workloads::fig1;

/// Run Fig. 1's program with exact (period-1) cycle sampling.
fn run() -> (
    callpath_profiler::Binary,
    callpath_profiler::ExecResult,
    Experiment,
) {
    let program = fig1::program(1_000);
    let bin = lower(&program);
    let cfg = ExecConfig {
        jitter_seed: None,
        ..ExecConfig::single(Counter::Cycles, 1)
    };
    let res = execute(&bin, &cfg).unwrap();
    let s = recover(&bin).unwrap();
    let exp = callpath_prof::correlate(&s, &res.profile, cfg.periods, StorageKind::Dense);
    (bin, res, exp)
}

#[test]
fn gprof_splits_by_call_count() {
    let (bin, res, _) = run();
    let report = analyze(&bin, &res, 1);
    let callers = report.callers_of("g");
    // g is called from m, f and g (recursion drops from propagation).
    let from_f = callers
        .iter()
        .find(|a| bin.procs[a.caller].name == "f")
        .expect("arc f->g");
    let from_m = callers
        .iter()
        .find(|a| bin.procs[a.caller].name == "m")
        .expect("arc m->g");
    assert_eq!(from_f.count, 1);
    assert_eq!(from_m.count, 1);
    // Equal call counts => equal attribution. That is gprof's answer.
    assert!(
        (from_f.attributed_cycles - from_m.attributed_cycles).abs() < 1e-9,
        "gprof must split evenly: {} vs {}",
        from_f.attributed_cycles,
        from_m.attributed_cycles
    );
}

/// A program whose callee `w` costs wildly different amounts depending on
/// its caller: `w` calls the heavy `a` behind a reentrancy guard, so
/// `w`-inside-`a` skips the heavy work while `w`-from-`main` performs it.
/// gprof sees two `a→w` arcs vs one `main→w` arc and attributes `w`'s time
/// 2:1 *toward the cheap context* — backwards. The Callers View reports
/// the truth.
fn reentrant_program() -> callpath_profiler::Program {
    use callpath_profiler::{Costs, Op, ProgramBuilder};
    let mut b = ProgramBuilder::new("reent");
    let f = b.file("reent.c");
    let w = b.declare("w", f, 10);
    let a = b.declare("a", f, 20);
    let main = b.declare("main", f, 1);
    b.body(
        w,
        vec![
            Op::work(11, Costs::cycles(1_000)),
            Op::call_recursive(12, a, 1), // guarded: skipped while a is active
        ],
    );
    b.body(a, vec![Op::work(21, Costs::cycles(8_000)), Op::call(22, w)]);
    b.body(main, vec![Op::call(3, a), Op::call(4, w)]);
    b.entry(main);
    b.build()
}

#[test]
fn callers_view_reports_the_contextual_truth_where_gprof_inverts_it() {
    let program = reentrant_program();
    let bin = lower(&program);
    let cfg = ExecConfig {
        jitter_seed: None,
        ..ExecConfig::single(Counter::Cycles, 1)
    };
    let res = execute(&bin, &cfg).unwrap();
    let s = recover(&bin).unwrap();
    let exp = callpath_prof::correlate(&s, &res.profile, cfg.periods, StorageKind::Dense);

    // Truth from the Callers View: w-from-main is the expensive context.
    let mut view = View::callers(&exp);
    let w_top = view
        .roots()
        .into_iter()
        .find(|&r| view.label(r) == "w")
        .unwrap();
    let callers = view.children(w_top);
    let val = |view: &View<'_>, n: u32| view.value(ColumnId(0), n);
    let from_a = callers
        .iter()
        .copied()
        .find(|&c| view.label(c) == "a")
        .unwrap();
    let from_main = callers
        .iter()
        .copied()
        .find(|&c| view.label(c) == "main")
        .unwrap();
    assert_eq!(val(&view, from_a), 2_000.0, "two cheap activations");
    assert_eq!(val(&view, from_main), 10_000.0, "one expensive activation");

    // gprof's answer: split w's total 2:1 toward `a` — the inversion.
    let report = analyze(&bin, &res, 1);
    let arcs = report.callers_of("w");
    let g_from_a = arcs
        .iter()
        .find(|x| bin.procs[x.caller].name == "a")
        .unwrap();
    let g_from_main = arcs
        .iter()
        .find(|x| bin.procs[x.caller].name == "main")
        .unwrap();
    assert_eq!(g_from_a.count, 2);
    assert_eq!(g_from_main.count, 1);
    assert!(
        g_from_a.attributed_cycles > g_from_main.attributed_cycles,
        "gprof points at the wrong caller: a={} main={}",
        g_from_a.attributed_cycles,
        g_from_main.attributed_cycles
    );
}

#[test]
fn flat_self_times_agree_between_tools() {
    // Where gprof IS sound — context-blind self time — both tools must
    // agree exactly.
    let (bin, res, exp) = run();
    let report = analyze(&bin, &res, 1);
    let mut flat = View::flat(&exp);
    let excl = ColumnId(1);
    for entry in &report.flat {
        if entry.self_cycles == 0.0 {
            continue;
        }
        // Find the procedure in our Flat View and compare rule-1 exclusive
        // (which for these loop-free-or-owning procedures equals self
        // time over all contexts... except that the Flat View's exposed
        // aggregation can differ under recursion; g is the recursive one).
        if entry.name == "g" {
            continue;
        }
        let mut found = None;
        let mut stack = flat.roots();
        while let Some(n) = stack.pop() {
            if flat.label(n) == entry.name && !flat.is_call(n) {
                found = Some(n);
                break;
            }
            stack.extend(flat.children(n));
        }
        let n = found.unwrap_or_else(|| panic!("{} in flat view", entry.name));
        let ours = flat.value(excl, n);
        assert!(
            (ours - entry.self_cycles).abs() < 1e-6,
            "{}: flat-view {} vs gprof {}",
            entry.name,
            ours,
            entry.self_cycles
        );
    }
}

#[test]
fn gprof_report_renders() {
    let (bin, res, _) = run();
    let report = analyze(&bin, &res, 1);
    let text = callpath_baseline::render(&report, &bin);
    assert!(text.contains("Flat profile"));
    assert!(text.contains(" g\n") || text.contains(" g "), "{text}");
}
