//! Instrumentation-overhead smoke test (run via `scripts/bench_smoke.sh`):
//! the session-navigation workload from `session_nav.rs`, run twice by
//! the script — once with the default `obs` feature and once with
//! `--no-default-features` — each run writing a fragment under
//! `target/`; the second run merges both into `BENCH_obs_overhead.json`
//! with the relative overhead per operation.
//!
//! The acceptance bar: obs-enabled navigation regresses p50 by less
//! than 2%; obs-disabled compiles to the exact pre-instrumentation
//! code, so its "overhead" is measurement noise by construction.

use callpath_core::prelude::*;
use callpath_core::source::SourceStore;
use callpath_profiler::ExecConfig;
use callpath_viewer::{Command, Session};
use callpath_workloads::{pipeline, s3d};
use std::time::{Duration, Instant};

const SAMPLES: usize = 200;

fn expand_all(session: &mut Session<'_>) {
    loop {
        let (_, rows) = session.render_numbered();
        let before = rows.len();
        for n in rows {
            session.apply(Command::Expand(n)).ok();
        }
        let (_, rows) = session.render_numbered();
        if rows.len() == before {
            break;
        }
    }
}

fn p50_ms(mut samples: Vec<Duration>) -> f64 {
    samples.sort_unstable();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

fn measure() -> (f64, f64, f64) {
    let exp = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );

    let mut expand = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let mut s = Session::new(&exp, SourceStore::new());
        expand_all(&mut s);
        s.render();
        expand.push(t.elapsed());
    }

    let mut s = Session::new(&exp, SourceStore::new());
    expand_all(&mut s);
    s.apply(Command::SortBy(ColumnId(1))).unwrap();
    s.render();
    s.apply(Command::SortBy(ColumnId(0))).unwrap();
    s.render();
    let mut resort = Vec::with_capacity(SAMPLES);
    for i in 0..SAMPLES {
        let t = Instant::now();
        s.apply(Command::SortBy(ColumnId((i % 2) as u32))).unwrap();
        s.render();
        resort.push(t.elapsed());
    }

    let mut s = Session::new(&exp, SourceStore::new());
    let mut hot = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        s.apply(Command::HotPath).unwrap();
        s.render();
        hot.push(t.elapsed());
    }

    (p50_ms(expand), p50_ms(resort), p50_ms(hot))
}

fn fragment_path(mode: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(format!("obs_overhead_{mode}.json"))
}

fn parse_fragment(text: &str) -> Option<(f64, f64, f64)> {
    let mut vals = [None; 3];
    for line in text.lines() {
        let (k, v) = line.split_once('=')?;
        let slot = match k {
            "expand_p50_ms" => 0,
            "resort_p50_ms" => 1,
            "hot_p50_ms" => 2,
            _ => return None,
        };
        vals[slot] = v.parse::<f64>().ok();
    }
    Some((vals[0]?, vals[1]?, vals[2]?))
}

#[test]
#[ignore = "overhead smoke test; run via scripts/bench_smoke.sh"]
fn obs_overhead_smoke() {
    let mode = if callpath_obs::enabled() { "on" } else { "off" };
    let (expand, resort, hot) = measure();
    let frag =
        format!("expand_p50_ms={expand:.4}\nresort_p50_ms={resort:.4}\nhot_p50_ms={hot:.4}\n");
    std::fs::create_dir_all(fragment_path(mode).parent().unwrap()).unwrap();
    std::fs::write(fragment_path(mode), &frag).expect("write fragment");
    println!("obs={mode}: expand {expand:.3} ms, resort {resort:.3} ms, hot {hot:.3} ms");

    // When both fragments exist, merge them into the perf record. Either
    // ordering of the two runs works: the later one does the merge.
    let on = std::fs::read_to_string(fragment_path("on"))
        .ok()
        .and_then(|t| parse_fragment(&t));
    let off = std::fs::read_to_string(fragment_path("off"))
        .ok()
        .and_then(|t| parse_fragment(&t));
    let (Some(on), Some(off)) = (on, off) else {
        println!("(waiting for the other feature mode before writing BENCH_obs_overhead.json)");
        return;
    };
    let pct = |on: f64, off: f64| 100.0 * (on - off) / off;
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let record = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"obs_overhead\",\n",
            "  \"workload\": \"s3d session navigation\",\n",
            "  \"cores\": {},\n",
            "  \"mode\": \"single_thread\",\n",
            "  \"samples\": {},\n",
            "  \"expand_p50_ms_obs_on\": {:.4},\n",
            "  \"expand_p50_ms_obs_off\": {:.4},\n",
            "  \"expand_overhead_pct\": {:.2},\n",
            "  \"resort_p50_ms_obs_on\": {:.4},\n",
            "  \"resort_p50_ms_obs_off\": {:.4},\n",
            "  \"resort_overhead_pct\": {:.2},\n",
            "  \"hot_path_p50_ms_obs_on\": {:.4},\n",
            "  \"hot_path_p50_ms_obs_off\": {:.4},\n",
            "  \"hot_path_overhead_pct\": {:.2}\n",
            "}}\n"
        ),
        cores,
        SAMPLES,
        on.0,
        off.0,
        pct(on.0, off.0),
        on.1,
        off.1,
        pct(on.1, off.1),
        on.2,
        off.2,
        pct(on.2, off.2),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_obs_overhead.json");
    std::fs::write(&path, &record).expect("write perf record");
    println!("perf record written to {}:\n{record}", path.display());
}
