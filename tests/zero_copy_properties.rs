//! Property tests for the v2.1 aligned container: the zero-copy borrow
//! path must be indistinguishable from the owned decode, bit for bit,
//! under randomized tree shapes and column layouts — and corruption
//! must stay detectable through the new section kinds.
//!
//! Three claims are pinned here:
//!
//! 1. **Round trip / fixed point** — `write_v21 → read → write_v21`
//!    reproduces the exact bytes, for random models whose per-column
//!    nnz straddles the fixed/varint cutover.
//! 2. **Borrow ≡ decode** — reads served from a [`MappedCol`] borrow of
//!    the file image return the same `f64::to_bits` as the eager owned
//!    decode of the same file.
//! 3. **Corruption is rejected** — every truncation fails to open, and
//!    every bit flip is caught by the eager reader and by
//!    [`verify_container`] (the lazy open deliberately defers cost-block
//!    checksums to first fault; its topology gap is exactly what
//!    `verify_container` exists to close — see DESIGN.md §11).

use callpath_core::prelude::*;
use callpath_expdb::model::{DbMetric, DbModel, DbNode, DbScope};
use callpath_expdb::{bin2, decode_all, from_binary, open_lazy, verify_container};
use proptest::prelude::*;

/// splitmix64, so models are a pure function of the proptest scalars.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A finite f64 with arbitrary mantissa/sign bits, so value equality
/// checks exercise the full bit pattern (subnormals and -0.0 included).
fn finite(r: u64) -> f64 {
    f64::from_bits(r & 0xffef_ffff_ffff_ffff)
}

/// Random model: frames only (structure rules don't constrain the
/// storage layer under test), random recent-ancestor parents, and
/// per-metric columns whose nnz is `max_nnz`-bounded — chosen to
/// straddle [`bin2::FIXED_CUTOVER`] so both block encodings appear.
fn random_model(seed: u64, n_nodes: usize, n_metrics: usize, max_nnz: usize) -> DbModel {
    let nodes = (0..n_nodes)
        .map(|i| {
            let r = mix(seed, i as u64);
            DbNode {
                parent: (i as u32) - (r as u32) % (i as u32 + 1).min(9),
                scope: DbScope::Frame {
                    proc: (r >> 8) as u32 % 7,
                    module: (r >> 16) as u32 % 2,
                    def_file: (r >> 24) as u32 % 3,
                    def_line: 1 + (r >> 32) as u32 % 90,
                    call_site: (r & 1 == 0)
                        .then_some(((r >> 24) as u32 % 3, (r >> 40) as u32 % 500)),
                },
            }
        })
        .collect();
    let metrics = (0..n_metrics)
        .map(|m| {
            let ms = seed ^ (m as u64).rotate_left(23);
            let nnz = (mix(ms, 0) as usize % (max_nnz + 1)).min(n_nodes);
            let mut keys: Vec<u32> = (1..=n_nodes as u32).collect();
            // Partial shuffle, take nnz, sort: a uniformly random
            // ascending subset of the node ids.
            for k in 0..nnz {
                let j = k + mix(ms, k as u64 + 1) as usize % (n_nodes - k);
                keys.swap(k, j);
            }
            keys.truncate(nnz);
            keys.sort_unstable();
            DbMetric {
                name: format!("M{m}"),
                unit: "ev".into(),
                period: 1.0,
                costs: keys
                    .into_iter()
                    .enumerate()
                    .map(|(k, key)| (key, finite(mix(ms, 1000 + k as u64))))
                    .collect(),
            }
        })
        .collect();
    DbModel {
        procs: (0..7).map(|i| format!("p{i}")).collect(),
        files: (0..3).map(|i| format!("f{i}.c")).collect(),
        modules: vec!["app".into(), "libm.so".into()],
        nodes,
        metrics,
        derived: vec![],
        sparse: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn v21_write_read_is_a_fixed_point(
        seed in 0u64..1000, n_nodes in 1usize..120, max_nnz in 0usize..70
    ) {
        let model = random_model(seed, n_nodes, 5, max_nnz);
        let bytes = bin2::write_v21(&model);
        verify_container(&bytes).unwrap();
        let back = bin2::read(&bytes).unwrap();
        prop_assert_eq!(&back, &model);
        prop_assert_eq!(bin2::write_v21(&back), bytes);
    }

    #[test]
    fn borrowed_reads_match_owned_decodes_bit_for_bit(
        seed in 0u64..1000, n_nodes in 1usize..120, max_nnz in 0usize..70
    ) {
        let model = random_model(seed, n_nodes, 5, max_nnz);
        let bytes = bin2::write_v21(&model);
        let lazy = open_lazy(bytes.clone()).unwrap();
        let eager = from_binary(&bytes).unwrap();
        for (m, metric) in model.metrics.iter().enumerate() {
            let id = MetricId::from_usize(m);
            // Every stored entry, bit for bit, through the borrow...
            for &(k, v) in &metric.costs {
                prop_assert_eq!(lazy.raw.column(id).get(k).to_bits(), v.to_bits());
                prop_assert_eq!(eager.raw.column(id).get(k).to_bits(), v.to_bits());
            }
            // ...and zero where the column stores nothing.
            let stored: Vec<u32> = metric.costs.iter().map(|c| c.0).collect();
            for n in 0..=(n_nodes as u32) {
                if !stored.contains(&n) {
                    prop_assert_eq!(lazy.raw.column(id).get(n), 0.0);
                }
            }
        }
        prop_assert!(lazy.raw.lazy_error().is_none());
    }

    #[test]
    fn fixed_and_varint_encodings_agree_around_the_cutover(
        seed in 0u64..200, nnz in 24usize..44
    ) {
        // Force the column size right at the encoding boundary: the two
        // on-disk layouts must be externally indistinguishable.
        let mut model = random_model(seed, 50, 1, 0);
        model.metrics[0].costs = (0..nnz as u32)
            .map(|k| (k + 1, finite(mix(seed, 77 + k as u64))))
            .collect();
        let v21 = bin2::write_v21(&model);
        let v2 = bin2::write(&model);
        prop_assert_eq!(&bin2::read(&v21).unwrap(), &model);
        prop_assert_eq!(&bin2::read(&v2).unwrap(), &model);
        let lazy = open_lazy(v21).unwrap();
        for &(k, v) in &model.metrics[0].costs {
            prop_assert_eq!(lazy.raw.column(MetricId(0)).get(k).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn every_v21_truncation_errors(seed in 0u64..20) {
        let bytes = bin2::write_v21(&random_model(seed, 30, 4, 50));
        for cut in 0..bytes.len() {
            prop_assert!(from_binary(&bytes[..cut]).is_err(), "eager prefix {cut}");
            prop_assert!(open_lazy(bytes[..cut].to_vec()).is_err(), "lazy prefix {cut}");
            prop_assert!(verify_container(&bytes[..cut]).is_err(), "verify prefix {cut}");
        }
    }

    #[test]
    fn v21_byte_flips_are_rejected(
        seed in 0u64..20, victim in 0usize..100_000, mask in 1u8..255
    ) {
        let bytes = bin2::write_v21(&random_model(seed, 30, 4, 50));
        let mut bad = bytes;
        let i = victim % bad.len();
        bad[i] ^= mask;
        if i == 4 {
            // Flipping the version byte re-routes the file to another
            // reader; no-panic is all that can be promised there.
            let _ = from_binary(&bad);
        } else {
            // The eager reader checksums every section it decodes, and
            // verify_container checksums all of them: both must notice.
            prop_assert!(from_binary(&bad).is_err(), "flip at {i}");
            prop_assert!(verify_container(&bad).is_err(), "verify missed flip at {i}");
            // The lazy open skips topology checksums by design, so a
            // flipped link may legitimately open; it must never panic,
            // and cost-block flips must surface as a fault error.
            if let Ok(lazy) = open_lazy(bad.clone()) {
                decode_all(&lazy, 1);
            }
        }
    }
}
