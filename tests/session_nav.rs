//! Navigation-latency smoke test (run via `scripts/bench_smoke.sh`):
//! drive an interactive [`Session`] over the S3D workload through the
//! three hot interactive operations — expand-everything, re-sort on a
//! warm view, hot-path walk — and emit p50/p95 per-operation latencies
//! as a JSON perf record (`BENCH_session_nav.json`).
//!
//! `#[ignore]`d by default: latency numbers belong in release builds on
//! a quiet machine, not in every `cargo test` run.

use callpath_core::prelude::*;
use callpath_core::source::SourceStore;
use callpath_profiler::ExecConfig;
use callpath_viewer::{Command, Session};
use callpath_workloads::{pipeline, s3d};
use std::time::{Duration, Instant};

const SAMPLES: usize = 40;

fn expand_all(session: &mut Session<'_>) {
    loop {
        let (_, rows) = session.render_numbered();
        let before = rows.len();
        for n in rows {
            session.apply(Command::Expand(n)).ok();
        }
        let (_, rows) = session.render_numbered();
        if rows.len() == before {
            break;
        }
    }
}

/// p50 and p95 (nearest-rank) of a latency sample, in milliseconds.
fn percentiles(mut samples: Vec<Duration>) -> (f64, f64) {
    samples.sort_unstable();
    let rank = |p: f64| {
        let i = ((p * samples.len() as f64).ceil() as usize).max(1) - 1;
        samples[i.min(samples.len() - 1)].as_secs_f64() * 1e3
    };
    (rank(0.50), rank(0.95))
}

#[test]
#[ignore = "latency smoke test; run via scripts/bench_smoke.sh"]
fn session_navigation_latency_smoke() {
    let exp = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );

    // Cold expand-everything: fresh session each sample, so lazy fills
    // and first-time sorts are inside the measurement.
    let mut expand = Vec::with_capacity(SAMPLES);
    let mut rows = 0;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let mut s = Session::new(&exp, SourceStore::new());
        expand_all(&mut s);
        rows = s.render().lines().count();
        expand.push(t.elapsed());
    }

    // Warm re-sort: one fully expanded session, flip the sort column.
    let mut s = Session::new(&exp, SourceStore::new());
    expand_all(&mut s);
    s.apply(Command::SortBy(ColumnId(1))).unwrap();
    s.render();
    s.apply(Command::SortBy(ColumnId(0))).unwrap();
    s.render();
    let (_, sorts_before) = s.sort_stats();
    let mut resort = Vec::with_capacity(SAMPLES);
    for i in 0..SAMPLES {
        let t = Instant::now();
        s.apply(Command::SortBy(ColumnId((i % 2) as u32))).unwrap();
        s.render();
        resort.push(t.elapsed());
    }
    let (_, sorts_after) = s.sort_stats();
    assert_eq!(
        sorts_after, sorts_before,
        "warm re-sort must be cache-served"
    );

    // Hot-path walk: analysis from the top plus a re-render.
    let mut s = Session::new(&exp, SourceStore::new());
    let mut hot = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        s.apply(Command::HotPath).unwrap();
        s.render();
        hot.push(t.elapsed());
    }

    let (expand_p50, expand_p95) = percentiles(expand);
    let (resort_p50, resort_p95) = percentiles(resort);
    let (hot_p50, hot_p95) = percentiles(hot);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let record = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"session_nav\",\n",
            "  \"workload\": \"s3d\",\n",
            "  \"cores\": {},\n",
            "  \"mode\": \"single_thread\",\n",
            "  \"rows\": {},\n",
            "  \"samples\": {},\n",
            "  \"expand_all_p50_ms\": {:.3},\n",
            "  \"expand_all_p95_ms\": {:.3},\n",
            "  \"resort_p50_ms\": {:.3},\n",
            "  \"resort_p95_ms\": {:.3},\n",
            "  \"hot_path_p50_ms\": {:.3},\n",
            "  \"hot_path_p95_ms\": {:.3}\n",
            "}}\n"
        ),
        cores, rows, SAMPLES, expand_p50, expand_p95, resort_p50, resort_p95, hot_p50, hot_p95,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_session_nav.json");
    std::fs::write(&path, &record).expect("write perf record");
    println!("perf record written to {}:\n{record}", path.display());
}
