//! Acceptance test for the interactive read path: once a view is built
//! and rendered, re-sorting and re-rendering it must be served entirely
//! from the generation-stamped sort caches — **zero** additional full
//! child `sort_by` calls (observed through [`Session::sort_stats`]) —
//! while producing byte-identical output.

use callpath_core::prelude::*;
use callpath_core::source::SourceStore;
use callpath_profiler::ExecConfig;
use callpath_viewer::{Command, Session};
use callpath_workloads::{pipeline, s3d};

fn expand_everything(session: &mut Session<'_>) {
    // Fixed-point expansion driven by the numbered render, exactly like
    // a user mashing "expand" on every visible row.
    loop {
        let (_, rows) = session.render_numbered();
        let before = rows.len();
        for n in rows {
            session.apply(Command::Expand(n)).ok();
        }
        let (_, rows) = session.render_numbered();
        if rows.len() == before {
            break;
        }
    }
}

#[test]
fn resorting_a_built_view_costs_zero_full_sorts() {
    let exp = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    let mut session = Session::new(&exp, SourceStore::new());
    expand_everything(&mut session);

    // Warm every (slot, key) pair the steady-state loop below touches:
    // both metric columns and the name ordering.
    session.apply(Command::SortBy(ColumnId(1))).unwrap();
    let by_col1 = session.render();
    session.apply(Command::SortByName(true)).unwrap();
    let by_name = session.render();
    session.apply(Command::SortByName(false)).unwrap();
    session.apply(Command::SortBy(ColumnId(0))).unwrap();
    let by_col0 = session.render();

    let (_, full_sorts_before) = session.sort_stats();
    assert!(full_sorts_before > 0, "warm-up must have sorted something");

    // Steady state: flip through the sort orders repeatedly. Every
    // child list is already cached at the current generation, so no
    // full sort may run — and the output must be byte-identical.
    for _ in 0..3 {
        session.apply(Command::SortBy(ColumnId(1))).unwrap();
        assert_eq!(session.render(), by_col1);
        session.apply(Command::SortByName(true)).unwrap();
        assert_eq!(session.render(), by_name);
        session.apply(Command::SortByName(false)).unwrap();
        session.apply(Command::SortBy(ColumnId(0))).unwrap();
        assert_eq!(session.render(), by_col0);
    }

    let (hits, full_sorts_after) = session.sort_stats();
    assert_eq!(
        full_sorts_after, full_sorts_before,
        "re-sorting a built view ran a full child sort"
    );
    assert!(
        hits > 0,
        "the steady-state loop must be served by the cache"
    );
}

#[test]
fn cache_survives_view_switches_but_not_column_edits() {
    let exp = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    let mut session = Session::new(&exp, SourceStore::new());
    session.apply(Command::Expand(0)).ok();
    let cct = session.render();

    // Visiting the other views builds their own caches; coming back to
    // the CCT must not re-sort it.
    session.apply(Command::SwitchView(ViewKind::Flat)).unwrap();
    session.render();
    session
        .apply(Command::SwitchView(ViewKind::Callers))
        .unwrap();
    session.render();
    let (_, sorts_before) = session.sort_stats();
    session
        .apply(Command::SwitchView(ViewKind::CallingContext))
        .unwrap();
    assert_eq!(session.render(), cct);
    let (_, sorts_after) = session.sort_stats();
    assert_eq!(
        sorts_after, sorts_before,
        "switching back re-sorted the CCT"
    );
}
