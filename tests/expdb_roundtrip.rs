//! E9 — experiment-database round trips, on real pipeline output and on
//! randomly generated experiments (property-based).
//!
//! Section IX lists "replacing our XML format for profiles with a more
//! compact binary format" as future work; both formats exist here, must
//! round-trip losslessly, and the binary one must actually be compact.

use callpath_core::prelude::*;
use callpath_expdb::{from_binary, from_xml, open_lazy, to_binary, to_binary_v2, to_xml};
use callpath_profiler::ExecConfig;
use callpath_workloads::{generator, moab, pipeline, s3d};
use proptest::prelude::*;

fn views_agree(a: &Experiment, b: &Experiment) {
    assert_eq!(a.cct.len(), b.cct.len());
    assert_eq!(a.columns.column_count(), b.columns.column_count());
    for n in a.cct.all_nodes() {
        assert_eq!(a.cct.kind(n), b.cct.kind(n), "{n:?}");
        for c in 0..a.columns.column_count() as u32 {
            let (va, vb) = (
                a.columns.get(ColumnId(c), n.0),
                b.columns.get(ColumnId(c), n.0),
            );
            assert!(
                (va - vb).abs() <= 1e-9 * va.abs().max(1.0),
                "{n:?} col {c}: {va} vs {vb}"
            );
        }
    }
}

#[test]
fn s3d_database_roundtrips_in_all_formats() {
    let exp = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    let xml = to_xml(&exp);
    let from_x = from_xml(&xml).unwrap();
    views_agree(&exp, &from_x);

    let bin = to_binary(&exp);
    let from_b = from_binary(&bin).unwrap();
    views_agree(&exp, &from_b);

    let bin2 = to_binary_v2(&exp);
    let from_b2 = from_binary(&bin2).unwrap();
    views_agree(&exp, &from_b2);
    let lazy = open_lazy(bin2).unwrap();
    views_agree(&exp, &lazy);
}

#[test]
fn binary_format_is_substantially_smaller() {
    let exp = pipeline::build_experiment(&moab::program(), &ExecConfig::default());
    let xml = to_xml(&exp);
    let bin = to_binary(&exp);
    let ratio = xml.len() as f64 / bin.len() as f64;
    assert!(
        ratio > 2.5,
        "binary must be much smaller: xml {} bin {} (ratio {ratio:.2})",
        xml.len(),
        bin.len()
    );
}

#[test]
fn derived_metrics_survive_the_database() {
    let mut exp = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    let cyc_e = exp.exclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());
    let fp_e = exp.exclusive_col(exp.raw.find("PAPI_FP_OPS").unwrap());
    let waste = exp
        .add_derived("fp waste", &format!("${} * 4 - ${}", cyc_e.0, fp_e.0))
        .unwrap();
    let loaded = from_xml(&to_xml(&exp)).unwrap();
    let col = loaded
        .columns
        .find("fp waste")
        .expect("derived column kept");
    assert_eq!(col, waste);
    for n in exp.cct.all_nodes().take(500) {
        assert_eq!(
            loaded.columns.get(col, n.0),
            exp.columns.get(waste, n.0),
            "{n:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_experiments_roundtrip_xml(seed in 0u64..1000, size in 10usize..400) {
        let exp = generator::random_experiment(seed, size, 12);
        let text = to_xml(&exp);
        let back = from_xml(&text).unwrap();
        views_agree(&exp, &back);
        // Fixed point.
        prop_assert_eq!(to_xml(&back), text);
    }

    #[test]
    fn random_experiments_roundtrip_binary(seed in 0u64..1000, size in 10usize..400) {
        let exp = generator::random_experiment(seed, size, 12);
        let bytes = to_binary(&exp);
        let back = from_binary(&bytes).unwrap();
        views_agree(&exp, &back);
        prop_assert_eq!(to_binary(&back), bytes);
    }

    #[test]
    fn random_experiments_roundtrip_v2(seed in 0u64..1000, size in 10usize..400) {
        let exp = generator::random_experiment(seed, size, 12);
        let bytes = to_binary_v2(&exp);
        // Eager decode, then re-encode: byte-identical fixed point.
        let back = from_binary(&bytes).unwrap();
        views_agree(&exp, &back);
        prop_assert_eq!(to_binary_v2(&back), bytes.clone());
        // Lazy open agrees with the generator output too.
        let lazy = open_lazy(bytes.clone()).unwrap();
        views_agree(&exp, &lazy);
        prop_assert_eq!(to_binary_v2(&lazy), bytes);
    }

    #[test]
    fn every_v1_truncation_errors(seed in 0u64..20) {
        let exp = generator::random_experiment(seed, 30, 4);
        let bytes = to_binary(&exp);
        // Truncation at *every* prefix length must be an Err, not a
        // panic and not a silent partial decode.
        for cut in 0..bytes.len() {
            prop_assert!(from_binary(&bytes[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn every_v2_truncation_errors(seed in 0u64..20) {
        let exp = generator::random_experiment(seed, 30, 4);
        let bytes = to_binary_v2(&exp);
        for cut in 0..bytes.len() {
            prop_assert!(from_binary(&bytes[..cut]).is_err(), "prefix {cut}");
            prop_assert!(open_lazy(bytes[..cut].to_vec()).is_err(), "lazy prefix {cut}");
        }
    }

    #[test]
    fn v1_byte_flips_never_panic(seed in 0u64..20, victim in 0usize..10_000, mask in 1u8..255) {
        // v1 carries no checksums, so a flip may decode to a different
        // (valid) database — but it must never panic or OOM.
        let exp = generator::random_experiment(seed, 30, 4);
        let mut bytes = to_binary(&exp);
        let i = victim % bytes.len();
        bytes[i] ^= mask;
        let _ = from_binary(&bytes);
    }

    #[test]
    fn v2_byte_flips_are_rejected(seed in 0u64..20, victim in 0usize..10_000, mask in 1u8..255) {
        let exp = generator::random_experiment(seed, 30, 4);
        let mut bytes = to_binary_v2(&exp);
        let i = victim % bytes.len();
        bytes[i] ^= mask;
        if i == 4 {
            // Flipping the version byte re-routes the file to another
            // reader; no-panic is all that can be promised there.
            let _ = from_binary(&bytes);
        } else {
            // Everything else is under a checksum: full decode must fail.
            prop_assert!(from_binary(&bytes).is_err(), "flip at {i}");
            // The lazy reader must also fail — at open if the flip hits
            // the header/TOC/topology, or at first column fault if it
            // hits a cost block (surfaced as lazy_error, zeros shown).
            match open_lazy(bytes.clone()) {
                Err(_) => {}
                Ok(lazy) => {
                    callpath_expdb::decode_all(&lazy, 1);
                    prop_assert!(
                        lazy.columns.lazy_error().is_some() || lazy.raw.lazy_error().is_some(),
                        "flip at {i} fully decoded through the lazy path"
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_varint_lengths_error_without_huge_allocs(
        seed in 0u64..10, victim in 0usize..10_000
    ) {
        // Stamp a maximal 10-byte varint (~1.8e19) over a random
        // position: any count or string length it lands on now lies
        // wildly about the remaining data. Both readers must reject it
        // quickly instead of reserving terabytes.
        let exp = generator::random_experiment(seed, 30, 4);
        for bytes in [to_binary(&exp), to_binary_v2(&exp)] {
            let mut bad = bytes;
            let i = 5 + victim % (bad.len() - 5); // keep magic + version
            let end = (i + 10).min(bad.len());
            bad[i..end].fill(0xff);
            if end == i + 10 {
                bad[end - 1] = 0x01; // terminate the 10-byte run
            }
            let _ = from_binary(&bad); // Err or (for v1) a tiny bogus decode — never a panic/OOM
        }
    }

    #[test]
    fn mangled_xml_never_panics(seed in 0u64..50, victim in 0usize..200) {
        let exp = generator::random_experiment(seed, 30, 6);
        let mut text = to_xml(&exp).into_bytes();
        if !text.is_empty() {
            let i = victim % text.len();
            text[i] = b'#';
        }
        if let Ok(s) = String::from_utf8(text) {
            let _ = from_xml(&s); // any Result is fine; panics are not
        }
    }
}
