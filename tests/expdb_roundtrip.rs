//! E9 — experiment-database round trips, on real pipeline output and on
//! randomly generated experiments (property-based).
//!
//! Section IX lists "replacing our XML format for profiles with a more
//! compact binary format" as future work; both formats exist here, must
//! round-trip losslessly, and the binary one must actually be compact.

use callpath_core::prelude::*;
use callpath_expdb::{from_binary, from_xml, to_binary, to_xml};
use callpath_profiler::ExecConfig;
use callpath_workloads::{generator, moab, pipeline, s3d};
use proptest::prelude::*;

fn views_agree(a: &Experiment, b: &Experiment) {
    assert_eq!(a.cct.len(), b.cct.len());
    assert_eq!(a.columns.column_count(), b.columns.column_count());
    for n in a.cct.all_nodes() {
        assert_eq!(a.cct.kind(n), b.cct.kind(n), "{n:?}");
        for c in 0..a.columns.column_count() as u32 {
            let (va, vb) = (
                a.columns.get(ColumnId(c), n.0),
                b.columns.get(ColumnId(c), n.0),
            );
            assert!(
                (va - vb).abs() <= 1e-9 * va.abs().max(1.0),
                "{n:?} col {c}: {va} vs {vb}"
            );
        }
    }
}

#[test]
fn s3d_database_roundtrips_in_both_formats() {
    let exp = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    let xml = to_xml(&exp);
    let from_x = from_xml(&xml).unwrap();
    views_agree(&exp, &from_x);

    let bin = to_binary(&exp);
    let from_b = from_binary(&bin).unwrap();
    views_agree(&exp, &from_b);
}

#[test]
fn binary_format_is_substantially_smaller() {
    let exp = pipeline::build_experiment(&moab::program(), &ExecConfig::default());
    let xml = to_xml(&exp);
    let bin = to_binary(&exp);
    let ratio = xml.len() as f64 / bin.len() as f64;
    assert!(
        ratio > 2.5,
        "binary must be much smaller: xml {} bin {} (ratio {ratio:.2})",
        xml.len(),
        bin.len()
    );
}

#[test]
fn derived_metrics_survive_the_database() {
    let mut exp = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    let cyc_e = exp.exclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());
    let fp_e = exp.exclusive_col(exp.raw.find("PAPI_FP_OPS").unwrap());
    let waste = exp
        .add_derived("fp waste", &format!("${} * 4 - ${}", cyc_e.0, fp_e.0))
        .unwrap();
    let loaded = from_xml(&to_xml(&exp)).unwrap();
    let col = loaded.columns.find("fp waste").expect("derived column kept");
    assert_eq!(col, waste);
    for n in exp.cct.all_nodes().take(500) {
        assert_eq!(
            loaded.columns.get(col, n.0),
            exp.columns.get(waste, n.0),
            "{n:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_experiments_roundtrip_xml(seed in 0u64..1000, size in 10usize..400) {
        let exp = generator::random_experiment(seed, size, 12);
        let text = to_xml(&exp);
        let back = from_xml(&text).unwrap();
        views_agree(&exp, &back);
        // Fixed point.
        prop_assert_eq!(to_xml(&back), text);
    }

    #[test]
    fn random_experiments_roundtrip_binary(seed in 0u64..1000, size in 10usize..400) {
        let exp = generator::random_experiment(seed, size, 12);
        let bytes = to_binary(&exp);
        let back = from_binary(&bytes).unwrap();
        views_agree(&exp, &back);
        prop_assert_eq!(to_binary(&back), bytes);
    }

    #[test]
    fn truncated_binary_never_panics(seed in 0u64..50, cut in 0usize..100) {
        let exp = generator::random_experiment(seed, 50, 6);
        let bytes = to_binary(&exp);
        let cut = cut.min(bytes.len());
        // Must return Err, not panic.
        let _ = from_binary(&bytes[..cut]);
    }

    #[test]
    fn mangled_xml_never_panics(seed in 0u64..50, victim in 0usize..200) {
        let exp = generator::random_experiment(seed, 30, 6);
        let mut text = to_xml(&exp).into_bytes();
        if !text.is_empty() {
            let i = victim % text.len();
            text[i] = b'#';
        }
        if let Ok(s) = String::from_utf8(text) {
            let _ = from_xml(&s); // any Result is fine; panics are not
        }
    }
}
