//! Golden verdicts: every canned detector, run against the paper's
//! three workload shapes, renders byte-exact. Pins the detector scores,
//! status thresholds, evidence paths and the deterministic number
//! formatting in one place — any change to a detector's arithmetic or
//! its rendering shows up as a golden diff, not a silent drift.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test analyze_golden
//! ```

use callpath_analyze::{
    derived_waste, ensemble_outliers, load_imbalance_with_context, scaling_loss_verdict,
    ImbalanceConfig, OutlierConfig, ScalingConfig, Status, WasteConfig,
};
use callpath_ensemble::RunData;
use callpath_expdb::ens;
use callpath_parallel::{run_spmd, SpmdConfig};
use callpath_profiler::ExecConfig;
use callpath_workloads::{moab, pflotran, pipeline, s3d};
use std::path::Path;

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDENS=1"));
    assert_eq!(
        actual, want,
        "verdict drifted from tests/data/{name}; regenerate with UPDATE_GOLDENS=1 \
         if the change is intentional"
    );
}

/// PFLOTRAN at 64 ranks with the paper's uneven partition: the
/// imbalance detector must FAIL, blame the heavy ranks, and point its
/// hot-path evidence at the main timestep loop.
#[test]
fn pflotran_imbalance_verdict_is_golden() {
    const RANKS: usize = 64;
    let part = pflotran::Partition::default();
    let scales: Vec<f64> = (0..RANKS).map(|r| part.scale(r, RANKS)).collect();
    let run = run_spmd(
        &pflotran::program(),
        &SpmdConfig::new(scales, ExecConfig::default()),
    );
    let series: Vec<f64> = run.rank_cycles.iter().map(|&c| c as f64).collect();
    let cycles_incl = run
        .experiment
        .columns
        .desc(
            run.experiment
                .inclusive_col(run.experiment.raw.find("PAPI_TOT_CYC").unwrap()),
        )
        .name
        .clone();
    let v = load_imbalance_with_context(
        &series,
        "CYCLES across 64 pflotran ranks",
        &ImbalanceConfig::default(),
        &run.experiment,
        &cycles_incl,
    )
    .unwrap();
    // The hot-path evidence must pass the paper's loop at
    // timestepper.F90:384 (Fig. 7 drill-down).
    assert!(
        v.evidence
            .iter()
            .any(|e| e.path.iter().any(|l| l.contains("timestepper.F90:384"))),
        "evidence must cite the timestep loop: {:?}",
        v.evidence
    );
    check_golden("verdict_pflotran_imbalance.golden", &v.render());
}

/// S3D untuned vs tuned (the paper's 2.9x flux-loop transformation):
/// the loss the detector attributes must sit in the diffusive flux
/// computation.
#[test]
fn s3d_scaling_verdict_is_golden() {
    let exec = ExecConfig::default();
    let base = pipeline::build_experiment(&s3d::program(s3d::S3dConfig::tuned()), &exec);
    let peer = pipeline::build_experiment(&s3d::program(s3d::S3dConfig::default()), &exec);
    let v = scaling_loss_verdict(
        &base,
        "tuned",
        &peer,
        "untuned",
        "PAPI_TOT_CYC",
        &ScalingConfig::default(),
    )
    .unwrap();
    assert!(
        v.evidence.iter().any(|e| !e.path.is_empty()),
        "scaling loss must carry evidence frames"
    );
    check_golden("verdict_s3d_scaling.golden", &v.render());
}

/// S3D flops vs cycles against a 4 flops/cycle peak: the waste verdict
/// names the frames leaving the most peak unused.
#[test]
fn s3d_waste_verdict_is_golden() {
    let exp = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    let v = derived_waste(&exp, "PAPI_TOT_CYC", "PAPI_FP_OPS", &WasteConfig::default()).unwrap();
    check_golden("verdict_s3d_waste.golden", &v.render());
}

/// Eight MOAB runs, one with its work inflated 5x: the ensemble
/// outlier detector must flag exactly that run from the directory
/// alone. (Eight runs, not four: the largest z-score one outlier can
/// reach among n runs is `(n-1)/sqrt(n)`, so n must be at least 7 for
/// the default `z_warn = 2` to be attainable at all.)
#[test]
fn moab_outliers_verdict_is_golden() {
    let program = moab::program();
    let mut runs = Vec::new();
    for r in 0..8 {
        let exec = ExecConfig {
            work_scale: if r == 2 { 5.0 } else { 1.0 },
            ..ExecConfig::default()
        };
        let exp = pipeline::build_experiment(&program, &exec);
        runs.push(RunData::from_experiment(format!("moab-{r}"), &exp));
    }
    let bytes = callpath_ensemble::build(&runs, 1).to_bytes();
    let dir = ens::read_directory(&bytes).unwrap();
    let v = ensemble_outliers(&dir, &OutlierConfig::default());
    assert!(
        v.evidence
            .iter()
            .any(|e| e.path == vec!["moab-2".to_owned()]),
        "the inflated run must be the cited outlier: {:?}",
        v.evidence
    );
    assert_ne!(v.status, Status::Pass, "an inflated run must at least warn");
    check_golden("verdict_moab_outliers.golden", &v.render());
}
