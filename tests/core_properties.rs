//! Property-based tests of the core invariants, over randomly generated
//! experiments (recursion, loops, arbitrary fan-out).
//!
//! These pin down the algebra the paper relies on:
//!
//! * conservation: the root's inclusive cost equals the sum of all direct
//!   (sample) costs — nothing is lost or double-counted by attribution;
//! * exclusive costs partition inclusive cost at statement level;
//! * the Callers View's top-level entry and the Flat View's procedure
//!   node agree for every procedure (set-exposed aggregation is
//!   view-independent);
//! * the root inclusive matches the whole-program cost in every view;
//! * hot paths are genuine root-to-descendant chains that never visit a
//!   scope twice and respect the threshold at every step;
//! * exposure filtering is idempotent and order-insensitive.

use callpath_core::prelude::*;
use callpath_workloads::generator::random_experiment;
use proptest::prelude::*;
use std::collections::HashMap;

const CYC: ColumnId = ColumnId(0);

fn total_direct(exp: &Experiment) -> f64 {
    exp.raw.total(MetricId(0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn root_inclusive_conserves_all_samples(seed in 0u64..10_000, size in 5usize..600) {
        let exp = random_experiment(seed, size, 15);
        let root = exp.cct.root();
        let incl = exp.columns.get(CYC, root.0);
        let direct = total_direct(&exp);
        prop_assert!((incl - direct).abs() < 1e-6 * direct.max(1.0));
    }

    #[test]
    fn inclusive_is_monotone_down_paths(seed in 0u64..10_000, size in 5usize..400) {
        let exp = random_experiment(seed, size, 15);
        for n in exp.cct.all_nodes() {
            if let Some(p) = exp.cct.parent(n) {
                prop_assert!(
                    exp.columns.get(CYC, p.0) >= exp.columns.get(CYC, n.0) - 1e-9,
                    "parent inclusive >= child inclusive"
                );
            }
        }
    }

    #[test]
    fn statement_exclusives_partition_the_total(seed in 0u64..10_000, size in 5usize..400) {
        let exp = random_experiment(seed, size, 15);
        let excl = ColumnId(1);
        let stmt_sum: f64 = exp
            .cct
            .all_nodes()
            .filter(|&n| exp.cct.kind(n).is_stmt())
            .map(|n| exp.columns.get(excl, n.0))
            .sum();
        let direct = total_direct(&exp);
        prop_assert!((stmt_sum - direct).abs() < 1e-6 * direct.max(1.0));
    }

    #[test]
    fn callers_and_flat_agree_per_procedure(seed in 0u64..10_000, size in 5usize..400) {
        let exp = random_experiment(seed, size, 10);
        let callers = View::callers(&exp);
        let mut flat = View::flat(&exp);
        // Collect callers-view top-level values by name.
        let mut top: HashMap<String, (f64, f64)> = HashMap::new();
        for r in callers.roots() {
            top.insert(
                callers.label(r),
                (callers.value(CYC, r), callers.value(ColumnId(1), r)),
            );
        }
        // Walk the flat view down to procedures.
        let modules = flat.roots();
        for m in modules {
            for file in flat.children(m) {
                for proc in flat.children(file) {
                    let label = flat.label(proc);
                    let (ci, ce) = top[&label];
                    prop_assert!(
                        (flat.value(CYC, proc) - ci).abs() < 1e-9,
                        "{label} inclusive: flat {} vs callers {}",
                        flat.value(CYC, proc), ci
                    );
                    prop_assert!(
                        (flat.value(ColumnId(1), proc) - ce).abs() < 1e-9,
                        "{label} exclusive"
                    );
                }
            }
        }
    }

    #[test]
    fn flat_module_inclusive_is_program_total(seed in 0u64..10_000, size in 5usize..400) {
        let exp = random_experiment(seed, size, 10);
        let flat = View::flat(&exp);
        let roots = flat.roots();
        prop_assert_eq!(roots.len(), 1);
        let direct = total_direct(&exp);
        prop_assert!((flat.value(CYC, roots[0]) - direct).abs() < 1e-6 * direct.max(1.0));
    }

    #[test]
    fn hot_path_is_a_descending_chain(seed in 0u64..10_000, size in 5usize..400, t in 0.2f64..0.9) {
        let exp = random_experiment(seed, size, 10);
        let mut view = View::calling_context(&exp);
        let roots = view.roots();
        prop_assume!(!roots.is_empty());
        let cfg = HotPathConfig::with_threshold(t);
        let path = view.hot_path(roots[0], CYC, cfg);
        // Distinct nodes, parent-child related, threshold respected.
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            prop_assert!(view.children(a).contains(&b));
            prop_assert!(view.value(CYC, b) >= t * view.value(CYC, a) - 1e-9);
            // And b is the (first) maximum among a's children.
            let max = view
                .children(a)
                .iter()
                .map(|&k| view.value(CYC, k))
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((view.value(CYC, b) - max).abs() < 1e-12);
        }
        let mut sorted = path.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), path.len(), "no repeats");
    }

    #[test]
    fn exposure_is_idempotent_and_order_insensitive(seed in 0u64..10_000, size in 5usize..300) {
        let exp = random_experiment(seed, size, 6);
        // Gather all frames of the most common procedure.
        let mut by_proc: HashMap<ProcId, Vec<NodeId>> = HashMap::new();
        for n in exp.cct.all_nodes() {
            if let ScopeKind::Frame { proc, .. } = exp.cct.kind(n) {
                by_proc.entry(proc).or_default().push(n);
            }
        }
        let Some((_, instances)) = by_proc.iter().max_by_key(|(_, v)| v.len()) else {
            return Ok(());
        };
        let once = exposed(&exp.cct, instances);
        let twice = exposed(&exp.cct, &once);
        prop_assert_eq!(&once, &twice, "idempotent");
        let mut reversed: Vec<NodeId> = instances.iter().rev().copied().collect();
        let mut exp_rev = exposed(&exp.cct, &reversed);
        exp_rev.sort_unstable();
        let mut exp_fwd = once.clone();
        exp_fwd.sort_unstable();
        prop_assert_eq!(exp_fwd, exp_rev, "order-insensitive as a set");
        reversed.clear();
    }

    #[test]
    fn lazy_and_eager_callers_views_agree(seed in 0u64..10_000, size in 5usize..250) {
        let exp = random_experiment(seed, size, 8);
        let mut lazy = CallersView::build(&exp, StorageKind::Dense);
        lazy.fully_expand(&exp);
        let eager = CallersView::build_eager(&exp, StorageKind::Dense);
        prop_assert_eq!(lazy.tree.len(), eager.tree.len());
        for i in 0..lazy.tree.len() as u32 {
            let n = ViewNodeId(i);
            prop_assert_eq!(lazy.tree.scope(n), eager.tree.scope(n));
            prop_assert_eq!(
                lazy.tree.columns.get(CYC, i),
                eager.tree.columns.get(CYC, i)
            );
        }
    }

    #[test]
    fn derived_formula_algebra(seed in 0u64..10_000, size in 5usize..200, k in 1.0f64..16.0) {
        let mut exp = random_experiment(seed, size, 8);
        let scaled = exp.add_derived("scaled", &format!("$0 * {k}")).unwrap();
        let identity = exp.add_derived("identity", &format!("${} / {k}", scaled.0)).unwrap();
        for n in exp.cct.all_nodes() {
            let orig = exp.columns.get(CYC, n.0);
            let back = exp.columns.get(identity, n.0);
            prop_assert!((orig - back).abs() < 1e-9 * orig.abs().max(1.0));
        }
    }
}

#[test]
fn dense_and_sparse_experiments_agree_end_to_end() {
    // Same CCT + costs attributed under both storage flavors: identical
    // values in all three views.
    let exp_dense = random_experiment(99, 300, 10);
    // Rebuild sparse via the expdb model (which preserves everything).
    let mut model = callpath_expdb::DbModel::from_experiment(&exp_dense);
    model.sparse = true;
    let exp_sparse = model.into_experiment().unwrap();
    for n in exp_dense.cct.all_nodes() {
        for c in 0..exp_dense.columns.column_count() as u32 {
            assert_eq!(
                exp_dense.columns.get(ColumnId(c), n.0),
                exp_sparse.columns.get(ColumnId(c), n.0),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Formula pretty-printer: parse ∘ to_string is the identity on the AST.
// ---------------------------------------------------------------------

fn arb_expr() -> impl Strategy<Value = Expr> {
    use callpath_core::derived::Func;
    let leaf = prop_oneof![
        // Non-negative finite literals: a leading '-' re-parses as Neg.
        (0.0f64..1e6).prop_map(Expr::Num),
        (0u32..16).prop_map(Expr::Col),
        (0u32..16).prop_map(Expr::Agg),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Pow(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Expr::Call(Func::Sqrt, vec![e])),
            inner.clone().prop_map(|e| Expr::Call(Func::Abs, vec![e])),
            proptest::collection::vec(inner.clone(), 1..4)
                .prop_map(|args| Expr::Call(Func::Min, args)),
            proptest::collection::vec(inner, 1..4).prop_map(|args| Expr::Call(Func::Max, args)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn formula_print_parse_roundtrip(e in arb_expr()) {
        let printed = e.to_string();
        let reparsed = Expr::parse(&printed)
            .unwrap_or_else(|err| panic!("printed '{printed}' failed to parse: {err}"));
        prop_assert_eq!(reparsed, e, "{}", printed);
    }

    #[test]
    fn formula_eval_is_total(e in arb_expr(), cols in proptest::collection::vec(-1e6f64..1e6, 16)) {
        // No panics, whatever the inputs; NaN can arise from pow of
        // negatives, but evaluation itself must always return.
        let ctx = SliceContext { columns: &cols, aggregates: &cols };
        let _ = e.eval(&ctx);
    }
}
