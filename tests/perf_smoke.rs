//! Perf smoke test (run via `scripts/bench_smoke.sh`): ingest a 64-rank
//! workload sequentially and in parallel, assert the wall-clock stays
//! within budget, and emit a JSON perf record (`BENCH_ingestion_smoke.json`)
//! so regressions show up as diffs rather than vibes.
//!
//! `#[ignore]`d by default: timing assertions belong in release builds on
//! a quiet machine, not in every `cargo test` run.

use callpath_core::prelude::*;
use callpath_prof::{Correlator, ParallelCorrelator};
use callpath_profiler::{execute, lower, Counter, ExecConfig, RawProfile};
use callpath_workloads::generator::{random_program, GenConfig};
use std::time::{Duration, Instant};

const N_RANKS: usize = 64;
/// Generous ceiling: the run takes well under a second in release mode;
/// the assertion exists to catch order-of-magnitude regressions, not
/// scheduler noise.
const WALL_CLOCK_BUDGET: Duration = Duration::from_secs(60);

fn workload() -> (callpath_structure::Structure, Vec<RawProfile>, ExecConfig) {
    let program = random_program(GenConfig {
        seed: 20100913, // ICPP 2010 week, why not
        n_procs: 100,
        calls_per_proc: 3,
        loop_probability: 0.3,
        work_cycles: 20_000,
    });
    let bin = lower(&program);
    let base = ExecConfig::single(Counter::Cycles, 251);
    let profiles = (0..N_RANKS)
        .map(|r| {
            let cfg = ExecConfig {
                work_scale: 1.0 + (r % 8) as f64 * 0.25,
                jitter_seed: Some(3 + r as u64),
                ..base.clone()
            };
            execute(&bin, &cfg).unwrap().profile
        })
        .collect();
    (callpath_structure::recover(&bin).unwrap(), profiles, base)
}

/// Best-of-`n` wall clock for `run`, so the recorded numbers (and the
/// sharded-mode regression gate below) ride the floor of scheduler
/// noise instead of a single cold sample.
fn min_elapsed(n: usize, mut run: impl FnMut()) -> Duration {
    (0..n)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed()
        })
        .min()
        .expect("at least one timing iteration")
}

const TIMING_ITERS: usize = 3;

#[test]
#[ignore = "wall-clock smoke test; run via scripts/bench_smoke.sh"]
fn sixty_four_rank_ingestion_smoke() {
    let setup_start = Instant::now();
    let (structure, profiles, cfg) = workload();
    let setup = setup_start.elapsed();

    let mut seq_nodes = 0;
    let sequential = min_elapsed(TIMING_ITERS, || {
        let mut corr = Correlator::new(&structure, cfg.periods);
        for p in &profiles {
            corr.add(p);
        }
        seq_nodes = corr.finish(StorageKind::Dense).cct.len();
    });

    let par = ParallelCorrelator::new(&structure, cfg.periods).with_threads(0);
    let mode = par.mode_for(profiles.len());
    let mut par_nodes = 0;
    let parallel = min_elapsed(TIMING_ITERS, || {
        let (par_exp, _) = par.correlate(&profiles, StorageKind::Csr);
        par_nodes = par_exp.cct.len();
    });

    assert_eq!(seq_nodes, par_nodes);
    assert!(
        parallel < WALL_CLOCK_BUDGET,
        "64-rank parallel ingestion took {parallel:?}, budget {WALL_CLOCK_BUDGET:?}"
    );
    // The point of the pool + pruned pairwise merge: whenever the run
    // actually shards, parallel ingestion may never again lose to
    // sequential by more than timing slop. This keeps the bench record
    // from silently regressing back to the pre-pool numbers.
    if mode == callpath_prof::IngestMode::Sharded {
        assert!(
            parallel.as_secs_f64() <= sequential.as_secs_f64() * 1.10,
            "sharded parallel ingest ({:.3} ms) lost to sequential ({:.3} ms)",
            parallel.as_secs_f64() * 1e3,
            sequential.as_secs_f64() * 1e3,
        );
    }

    // `speedup` is only meaningful when the run actually sharded: on a
    // single-core host `mode_for` picks the sequential path, and the
    // two timings measure the same code, so the field is null rather
    // than a misleading ratio of noise.
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let speedup = if mode == callpath_prof::IngestMode::Sequential {
        "null".to_string()
    } else {
        format!(
            "{:.2}",
            sequential.as_secs_f64() / parallel.as_secs_f64().max(1e-9)
        )
    };
    let record = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"ingestion_smoke\",\n",
            "  \"n_ranks\": {},\n",
            "  \"cores\": {},\n",
            "  \"mode\": \"{}\",\n",
            "  \"cct_nodes\": {},\n",
            "  \"setup_ms\": {:.3},\n",
            "  \"sequential_ingest_ms\": {:.3},\n",
            "  \"parallel_ingest_ms\": {:.3},\n",
            "  \"speedup\": {},\n",
            "  \"budget_ms\": {}\n",
            "}}\n"
        ),
        N_RANKS,
        cores,
        mode.as_str(),
        par_nodes,
        setup.as_secs_f64() * 1e3,
        sequential.as_secs_f64() * 1e3,
        parallel.as_secs_f64() * 1e3,
        speedup,
        WALL_CLOCK_BUDGET.as_millis(),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_ingestion_smoke.json");
    std::fs::write(&path, &record).expect("write perf record");
    println!("perf record written to {}:\n{record}", path.display());
}
