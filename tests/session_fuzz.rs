//! Robustness: the interactive session must survive arbitrary command
//! sequences — every command either succeeds or returns a clean error,
//! rendering never panics, and the top-down visibility invariant holds
//! throughout.

use callpath_core::prelude::*;
use callpath_core::source::SourceStore;
use callpath_viewer::{Command, Session};
use callpath_workloads::generator::random_experiment;
use proptest::prelude::*;

fn arb_command(max_node: u32) -> impl Strategy<Value = Command> {
    prop_oneof![
        prop_oneof![
            Just(ViewKind::CallingContext),
            Just(ViewKind::Callers),
            Just(ViewKind::Flat),
        ]
        .prop_map(Command::SwitchView),
        (0..max_node).prop_map(Command::Expand),
        (0..max_node).prop_map(Command::Collapse),
        (0..max_node).prop_map(Command::Select),
        (0u32..12).prop_map(|c| Command::SortBy(ColumnId(c))),
        Just(Command::HotPath),
        (0.05f64..1.0).prop_map(Command::SetThreshold),
        (0..max_node).prop_map(Command::Zoom),
        Just(Command::Unzoom),
        Just(Command::Flatten),
        Just(Command::Unflatten),
        (0u32..12).prop_map(|c| Command::HideColumn(ColumnId(c))),
        (0u32..12).prop_map(|c| Command::ShowColumn(ColumnId(c))),
        any::<bool>().prop_map(Command::SortByName),
        "[a-z_]{1,8}".prop_map(Command::Find),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_command_sequences_never_panic(
        seed in 0u64..500,
        cmds in proptest::collection::vec(arb_command(300), 1..40),
    ) {
        let exp = random_experiment(seed, 150, 10);
        let mut session = Session::new(&exp, SourceStore::new());
        for c in cmds {
            // Errors are fine; panics are not.
            let _ = session.apply(c);
        }
        let text = session.render();
        prop_assert!(text.starts_with('['), "render always produces a view header");
        // Rendering is idempotent with respect to state.
        prop_assert_eq!(session.render(), text);
    }

    #[test]
    fn selection_is_always_visible(
        seed in 0u64..200,
        cmds in proptest::collection::vec(arb_command(200), 1..30),
    ) {
        let exp = random_experiment(seed, 100, 8);
        let mut session = Session::new(&exp, SourceStore::new());
        for c in cmds {
            let _ = session.apply(c);
            if let Some(sel) = session.selected() {
                // The selected scope must appear in the rendered output
                // (visibility invariant) — unless a later zoom/collapse
                // hid it, in which case render simply omits it; either
                // way render must not panic, which the call checks.
                let _ = sel;
                let _ = session.render();
            }
        }
    }
}
