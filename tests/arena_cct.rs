//! Mapped-topology equivalence on the paper's case-study fixtures: a
//! CCT whose nodes live in borrowed file arrays must be observably
//! identical — node for node, edge for edge, traversal for traversal —
//! to the owned arena decode of the same bytes.
//!
//! The goldens (`fig2_golden.rs`, `render_golden.rs`) pin the rendered
//! output byte-exactly; these tests pin the *structural* layer those
//! renders read through, so a regression points at the topology borrow
//! rather than at the view code.

use callpath_core::prelude::*;
use callpath_expdb::{from_binary, open_lazy, to_binary_v21};
use callpath_profiler::ExecConfig;
use callpath_workloads::{moab, pflotran, pipeline, s3d};

/// Every structural observation the views make, compared across the
/// mapped and owned readings of the same container bytes.
fn assert_structurally_identical(mapped: &Cct, owned: &Cct) {
    assert!(mapped.is_mapped(), "v2.1 open should borrow the topology");
    assert!(!owned.is_mapped(), "eager decode should own its arena");
    assert_eq!(mapped.len(), owned.len());
    assert_eq!(mapped.root(), owned.root());
    for n in owned.all_nodes() {
        assert_eq!(mapped.kind(n), owned.kind(n), "{n:?}");
        assert_eq!(mapped.parent(n), owned.parent(n), "{n:?}");
        assert_eq!(mapped.depth(n), owned.depth(n), "{n:?}");
        assert_eq!(mapped.is_leaf(n), owned.is_leaf(n), "{n:?}");
        assert_eq!(mapped.child_count(n), owned.child_count(n), "{n:?}");
        let mc: Vec<NodeId> = mapped.children(n).collect();
        let oc: Vec<NodeId> = owned.children(n).collect();
        assert_eq!(mc, oc, "children of {n:?}");
        let ma: Vec<NodeId> = mapped.ancestors(n).collect();
        let oa: Vec<NodeId> = owned.ancestors(n).collect();
        assert_eq!(ma, oa, "ancestors of {n:?}");
        assert_eq!(mapped.enclosing_frame(n), owned.enclosing_frame(n), "{n:?}");
        assert_eq!(mapped.static_key(n), owned.static_key(n), "{n:?}");
    }
    let mp: Vec<NodeId> = mapped.preorder(mapped.root()).collect();
    let op: Vec<NodeId> = owned.preorder(owned.root()).collect();
    assert_eq!(mp, op, "preorder traversal");
}

fn check_workload(exp: &Experiment) {
    let bytes = to_binary_v21(exp);
    let lazy = open_lazy(bytes.clone()).unwrap();
    let eager = from_binary(&bytes).unwrap();
    assert_structurally_identical(&lazy.cct, &eager.cct);
    // The fixture's own CCT uses the same ids the writer serialized, so
    // the mapped reading must agree with the source of truth too.
    assert_eq!(lazy.cct.len(), exp.cct.len());
    for n in exp.cct.all_nodes() {
        assert_eq!(lazy.cct.kind(n), exp.cct.kind(n), "{n:?}");
        assert_eq!(lazy.cct.parent(n), exp.cct.parent(n), "{n:?}");
    }
}

#[test]
fn s3d_mapped_topology_is_equivalent_to_owned() {
    check_workload(&pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    ));
}

#[test]
fn moab_mapped_topology_is_equivalent_to_owned() {
    check_workload(&pipeline::build_experiment(
        &moab::program(),
        &ExecConfig::default(),
    ));
}

#[test]
fn pflotran_mapped_topology_is_equivalent_to_owned() {
    check_workload(&pipeline::build_experiment(
        &pflotran::program(),
        &ExecConfig::default(),
    ));
}

#[test]
fn mutating_a_mapped_cct_detaches_it_from_the_image() {
    let exp = pipeline::build_experiment(&moab::program(), &ExecConfig::default());
    let bytes = to_binary_v21(&exp);
    let lazy = open_lazy(bytes).unwrap();
    let mut cct = lazy.cct.clone();
    assert!(cct.is_mapped());
    let before: Vec<(ScopeKind, Option<NodeId>)> = cct
        .all_nodes()
        .map(|n| (cct.kind(n), cct.parent(n)))
        .collect();
    // First mutation copies the borrowed arrays into an owned arena;
    // every pre-existing node must survive the migration untouched.
    let added = cct.add_child(
        cct.root(),
        ScopeKind::Frame {
            proc: ProcId(0),
            module: LoadModuleId(0),
            def: SourceLoc::new(FileId(0), 999),
            call_site: None,
        },
    );
    assert!(!cct.is_mapped());
    assert_eq!(cct.len(), before.len() + 1);
    for (i, (kind, parent)) in before.iter().enumerate() {
        let n = NodeId(i as u32);
        assert_eq!(cct.kind(n), *kind, "{n:?} changed across make_owned");
        assert_eq!(cct.parent(n), *parent, "{n:?} changed across make_owned");
    }
    assert_eq!(cct.parent(added), Some(cct.root()));
    cct.validate().expect("detached arena must validate");
}
