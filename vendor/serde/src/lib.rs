//! Offline stand-in for `serde`.
//!
//! The workspace decorates types with `#[derive(Serialize, Deserialize)]`
//! for documentation and future interop, but every on-disk format in this
//! repository (see `callpath-expdb`) is hand-rolled. This crate therefore
//! provides only marker traits plus no-op derive macros, letting the whole
//! workspace build from a registry-less environment.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: Sized {}
impl<T> DeserializeOwned for T {}

/// Namespace mirroring `serde::de`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Namespace mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
