//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex`/`RwLock`
//! API implemented over `std::sync`. Lock acquisition recovers from
//! poisoning (a panicked writer does not wedge later readers), which is
//! the parking_lot behavior the workspace relies on.

use std::fmt;
use std::sync::PoisonError;

/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access (never poisons).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access (never poisons).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Shared access if no writer holds the lock right now.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(std::sync::TryLockError::Poisoned(p)) => f
                .debug_struct("Mutex")
                .field("data", &&*p.into_inner())
                .finish(),
            Err(std::sync::TryLockError::WouldBlock) => {
                f.debug_struct("Mutex").field("data", &"<locked>").finish()
            }
        }
    }
}
