//! Offline stand-in for `crossbeam`, covering the scoped-thread API this
//! workspace uses. Real OS threads are spawned via `std::thread::scope`,
//! so parallel speedups measured against this shim are genuine.

/// Scoped threads (mirrors `crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::marker::PhantomData;

    /// Handle passed to every scoped worker closure. The workspace's
    /// workers ignore it (`move |_| ...`); nested spawning is not
    /// supported by this shim.
    #[derive(Debug, Clone, Copy)]
    pub struct NestedScope<'scope> {
        _marker: PhantomData<&'scope ()>,
    }

    /// A scope in which worker threads can borrow from the environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned handle to a scoped worker thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the worker to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker thread inside the scope. The closure receives a
        /// nested-scope handle, matching crossbeam's signature shape.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope<'_>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || {
                    f(NestedScope {
                        _marker: PhantomData,
                    })
                }),
            }
        }
    }

    /// Create a scope for spawning borrowing threads. Unlike crossbeam,
    /// a worker panic propagates out of `scope` itself (std semantics
    /// join all threads first), so the `Ok` arm is always returned; the
    /// `Result` wrapper is kept for call-site compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}
