//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses —
//! `proptest!`, `prop_oneof!`, `prop_assert*!`, `prop_assume!`, `Just`,
//! `any`, range/tuple/string strategies, `prop_map`, `prop_recursive` and
//! `collection::vec` — as a deterministic random-input harness. There is
//! no shrinking: a failing case panics with the rendered assertion
//! message (cases are reproducible, since the RNG is seeded from the test
//! name).

pub mod test_runner {
    /// Per-test configuration (`cases` is the only knob honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Why a generated case did not pass.
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// `prop_assert*!` failed; the test panics with this message.
        Fail(String),
    }

    /// Deterministic generator used by the harness (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name so every run replays the same cases.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h | 1, // never zero
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy: Clone {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> T + Clone,
        {
            Map { inner: self, f }
        }

        /// Build recursive structures: `grow` receives the strategy for
        /// one level down and returns the strategy for the next level.
        /// `depth` bounds recursion; the other two proptest knobs are
        /// accepted for signature compatibility and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            grow: F,
        ) -> Recursive<Self::Value>
        where
            Self: 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        {
            Recursive {
                base: self.boxed(),
                depth,
                grow: Arc::new(move |inner| grow(inner).boxed()),
            }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
            Self::Value: 'static,
        {
            let s = self;
            BoxedStrategy(Arc::new(move |rng| s.generate(rng)))
        }
    }

    /// Type-erased strategy (cheap to clone).
    pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_recursive` combinator.
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        depth: u32,
        grow: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                depth: self.depth,
                grow: Arc::clone(&self.grow),
            }
        }
    }

    impl<T> Strategy for Recursive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let levels = rng.below(self.depth as u64 + 1) as u32;
            let mut s = self.base.clone();
            for _ in 0..levels {
                s = (self.grow)(s);
            }
            s.generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among equally weighted alternatives
    /// (what `prop_oneof!` builds).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// String strategy from a simplified regex: supports exactly the
    /// `[chars]{m,n}` shape (with `a-z` style ranges inside the class);
    /// anything else falls back to short lowercase identifiers.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_class_repeat(self)
                .unwrap_or_else(|| ("abcdefghijklmnopqrstuvwxyz".chars().collect(), 1, 8));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let rest = rest.strip_prefix('{')?;
        let counts = rest.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
            None => {
                let n = counts.parse().ok()?;
                (n, n)
            }
        };
        if lo > hi || hi == 0 {
            return None;
        }
        let chars: Vec<char> = class.chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (a, b) = (chars[i], chars[i + 2]);
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        Some((alphabet, lo, hi))
    }

    /// Default strategy source for `any::<T>()`.
    pub trait Arbitrary: Sized {
        /// The strategy `any` returns.
        type Strategy: Strategy<Value = Self>;

        /// The canonical full-range strategy for the type.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-range strategy for primitives.
    #[derive(Clone)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    impl<T> Default for AnyPrimitive<T> {
        fn default() -> Self {
            AnyPrimitive(std::marker::PhantomData)
        }
    }

    macro_rules! any_primitive {
        ($($t:ty => $gen:expr),* $(,)?) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $gen;
                    f(rng)
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;

                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive::default()
                }
            }
        )*};
    }

    any_primitive! {
        bool => |rng| rng.next_u64() & 1 == 1,
        u8 => |rng| rng.next_u64() as u8,
        u16 => |rng| rng.next_u64() as u16,
        u32 => |rng| rng.next_u64() as u32,
        u64 => |rng| rng.next_u64(),
        usize => |rng| rng.next_u64() as usize,
        i8 => |rng| rng.next_u64() as i8,
        i16 => |rng| rng.next_u64() as i16,
        i32 => |rng| rng.next_u64() as i32,
        i64 => |rng| rng.next_u64() as i64,
        isize => |rng| rng.next_u64() as isize,
        f64 => |rng| rng.unit_f64() * 2e6 - 1e6,
        f32 => |rng| (rng.unit_f64() * 2e6 - 1e6) as f32,
    }

    /// The strategy for `T`'s full value range.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size bounds for generated collections.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a proptest-using test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Run each contained `#[test] fn` over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", __case, msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert inside a proptest case (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Inequality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Node {
        Leaf(u32),
        Pair(Box<Node>, Box<Node>),
    }

    fn arb_node() -> impl Strategy<Value = Node> {
        (0u32..100)
            .prop_map(Node::Leaf)
            .boxed()
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Node::Pair(Box::new(a), Box::new(b)))
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u8..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_just_cover_options(c in prop_oneof![Just(1u8), Just(2), (5u8..7)]) {
            prop_assert!(c == 1 || c == 2 || c == 5 || c == 6);
        }

        #[test]
        fn string_pattern_respected(s in "[a-c_]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4, "{s}");
            prop_assert!(s.chars().all(|c| c == '_' || ('a'..='c').contains(&c)), "{s}");
        }

        #[test]
        fn recursive_terminates(n in arb_node()) {
            fn depth(n: &Node) -> usize {
                match n {
                    Node::Leaf(_) => 1,
                    Node::Pair(a, b) => 1 + depth(a).max(depth(b)),
                }
            }
            prop_assert!(depth(&n) <= 4);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
