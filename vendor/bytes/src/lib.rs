//! Offline stand-in for `bytes`, covering the cursor-style reading and
//! appending this workspace's binary experiment-database format uses:
//! [`Buf`] over `&[u8]` and [`BufMut`] over `Vec<u8>`.

/// Sequential reader over a byte source (mirrors `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `cnt` bytes. Panics when fewer remain, matching `bytes`.
    fn advance(&mut self, cnt: usize);

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte. Panics when empty, matching `bytes`.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Growable byte sink (mirrors `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_vec_and_slice() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_f64_le(1.5);
        out.put_slice(b"abc");
        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 12);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_f64_le(), 1.5);
        assert_eq!(buf.chunk(), b"abc");
        buf.advance(3);
        assert!(!buf.has_remaining());
    }

    #[test]
    #[should_panic]
    fn advance_past_end_panics() {
        let mut buf: &[u8] = &[1, 2];
        buf.advance(3);
    }
}
