//! Offline stand-in for `rand` 0.8, covering the API surface this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over integer
//! and float ranges, and `Rng::gen_bool`. Backed by xoshiro256** seeded
//! via splitmix64 — statistically solid for the simulator's jitter and
//! workload-generator use, though the exact stream differs from upstream
//! rand (all in-repo consumers only rely on statistical properties).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic seeding interface.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via splitmix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Types a range can sample into.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type cannot
                    // occur here (max width is 64 bits).
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing generator methods (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // A fully zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the small generator is the same engine in this stand-in.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1u64..=5);
            assert!((1..=5).contains(&w));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
    }
}
