//! No-op derive macros for the offline `serde` stand-in.
//!
//! The derives accept (and ignore) `#[serde(...)]` helper attributes so
//! existing annotations like `#[serde(skip)]` keep compiling; the blanket
//! impls in the `serde` stub crate make every type trivially satisfy the
//! marker traits, so the derives expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
