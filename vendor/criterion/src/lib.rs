//! Offline stand-in for `criterion`.
//!
//! A genuine wall-clock timing harness (not a no-op): it calibrates an
//! iteration count from a pilot run, collects `sample_size` samples
//! within roughly `measurement_time`, and reports mean / median / min
//! per-iteration times to stdout. Covers the API surface this
//! workspace's benches use: `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `Bencher::iter_batched`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros. No statistics beyond
//! that, no reports, no comparison against saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark case: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into an id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// How `iter_batched` amortizes setup cost (accepted for API
/// compatibility; this harness always re-runs setup per iteration and
/// excludes it from the timed region).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times the routine handed to [`Bencher::iter`] /
/// [`Bencher::iter_batched`] over `iters` iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the requested number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with per-iteration inputs built by `setup`;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named set of related benchmark cases sharing timing settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Number of timed samples per case.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up budget before sampling begins.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Total measurement budget per case.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Run one case.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.id, &mut f);
        self
    }

    /// Run one case parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.id, &mut |b| f(b, input));
        self
    }

    /// Flush the group (kept for API compatibility; results are
    /// printed as each case completes).
    pub fn finish(self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Pilot runs until the warm-up budget is spent, doubling the
        // iteration count, to learn the per-iteration cost.
        let warm_start = Instant::now();
        let mut per_iter = loop {
            f(&mut b);
            let per = b.elapsed.as_secs_f64() / b.iters as f64;
            if warm_start.elapsed() >= self.warm_up_time || b.elapsed > self.measurement_time {
                break per.max(1e-9);
            }
            b.iters = (b.iters * 2).min(1 << 40);
        };

        // Size each sample so all samples together fit the budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / per_iter).round() as u64).max(1);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, c| a.total_cmp(c));
        per_iter = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;

        println!(
            "{}/{}  median {}  mean {}  min {}  ({} samples x {} iters)",
            self.name,
            id,
            fmt_time(per_iter),
            fmt_time(mean),
            fmt_time(samples[0]),
            samples.len(),
            iters,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Start a named group with default timing settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Run a standalone case outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// Bundle target functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_real_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("self_test");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut ran = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert!(ran > 0, "routine never executed");
    }
}
