#!/usr/bin/env sh
# Perf smoke: 64-rank ingestion under a wall-clock budget, in release
# mode. Writes BENCH_ingestion_smoke.json at the repo root.
set -eu
cd "$(dirname "$0")/.."
cargo test --release --test perf_smoke -- --ignored --nocapture
