#!/usr/bin/env sh
# Perf smoke, in release mode:
#  * 64-rank ingestion under a wall-clock budget
#    -> BENCH_ingestion_smoke.json at the repo root;
#  * interactive navigation latency (expand-all / warm re-sort /
#    hot-path walk) -> BENCH_session_nav.json at the repo root;
#  * experiment-database open latency (cold open / first render /
#    decode_all, XML vs v1 vs v2 on s3d) -> BENCH_expdb_open.json
#    at the repo root;
#  * instrumentation overhead (session navigation with the obs feature
#    on vs off) -> BENCH_obs_overhead.json at the repo root. The two
#    runs write fragments under target/; the second one merges them;
#  * zero-copy scaling (million-node synthetic v2.1 database: mmap cold
#    open vs v2, first-render fault counts, decode-all)
#    -> BENCH_zero_copy.json at the repo root. This row runs under a
#    hard wall-clock budget so a scaling regression fails the script
#    instead of silently stretching it;
#  * thread scaling (ingest + decode_all at 1/2/4/8 workers, plus the
#    pruned-merge-beats-old-replay gate that holds even on one core)
#    -> BENCH_thread_scaling.json at the repo root, same hard-budget
#    treatment;
#  * serving latency (4 concurrent protocol clients driving scripted
#    find/sort/hot-path/flatten sessions against a live callpath-serve,
#    exact client-side p50/p95 per request) -> BENCH_serve.json at the
#    repo root;
#  * ensemble scaling (1,000-run synthetic union supergraph at 1/2/4/8
#    workers, .cpens cold open + first sorted cross-run stats render
#    under a single-digit-ms gate, directory-only outlier scoring)
#    -> BENCH_ensemble.json at the repo root, same hard-budget
#    treatment;
#  * the analysis path (cold-open + sorted query over a 200k-context
#    v2.1 database at 1/2/4/8 threads with exact lazy-fault counts,
#    the waste detector on s3d, the perf gate over the repo's own
#    records) -> BENCH_analyze.json at the repo root.
set -eu
cd "$(dirname "$0")/.."
cargo test --release --test perf_smoke -- --ignored --nocapture
cargo test --release --test session_nav -- --ignored --nocapture
cargo test --release --test expdb_open_smoke -- --ignored --nocapture
timeout 900 cargo test --release --test zero_copy_smoke -- --ignored --nocapture
timeout 900 cargo test --release --test thread_scaling -- --ignored --nocapture
timeout 900 cargo test --release --test serve_smoke -- --ignored --nocapture
timeout 900 cargo test --release --test ensemble_smoke -- --ignored --nocapture
timeout 900 cargo test --release --test analyze_smoke -- --ignored --nocapture
rm -f target/obs_overhead_on.json target/obs_overhead_off.json
cargo test --release --test obs_overhead -- --ignored --nocapture
cargo test --release --no-default-features --test obs_overhead -- --ignored --nocapture
