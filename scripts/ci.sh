#!/usr/bin/env sh
# The full local gate, in the order failures are cheapest to find:
# formatting, lints as errors across every target, then the test suite
# in both storage configurations.
set -eu
cd "$(dirname "$0")/.."
cargo fmt --check
cargo clippy --all-targets -- -D warnings
cargo test -q --workspace
# The zero-copy borrow path must behave identically from an owned
# aligned buffer: rerun the integration suite with `mmap` off.
cargo test -q --no-default-features --features obs
