#!/usr/bin/env sh
# The full local gate, in the order failures are cheapest to find:
# formatting, lints as errors across every target, then the test suite.
set -eu
cd "$(dirname "$0")/.."
cargo fmt --check
cargo clippy --all-targets -- -D warnings
cargo test -q
