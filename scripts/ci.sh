#!/usr/bin/env sh
# The full local gate, in the order failures are cheapest to find:
# formatting, lints as errors across every target, then the test suite
# in both storage configurations.
set -eu
cd "$(dirname "$0")/.."
cargo fmt --check
cargo clippy --all-targets -- -D warnings
cargo test -q --workspace
# The zero-copy borrow path must behave identically from an owned
# aligned buffer: rerun the integration suite with `mmap` off.
cargo test -q --no-default-features --features obs
# The worker pool and every fan-out built on it must behave the same
# whether the automatic thread count degenerates to 1 (inline path) or
# fans out to 4: rerun the core fan-out unit tests pinned to both.
# (`resolve_threads` caches the env read per process, so the variable
# must be set at process start — which is exactly what happens here.)
CALLPATH_THREADS=1 cargo test -q -p callpath-core --lib -- pool:: chunked::
CALLPATH_THREADS=4 cargo test -q -p callpath-core --lib -- pool:: chunked::
# The serving path: protocol fuzz (engine never panics on hostile
# input) and the end-to-end TCP smoke (concurrent clients, renders
# byte-identical to a direct Session, SIGINT drain).
cargo test -q -p callpath-serve
cargo test -q --test serve_smoke
# The ensemble path: N-way union determinism and .cpens corruption
# rejection, with the mmap borrow path on (default) and off — the
# grafted per-run drill-down columns must fault identically from an
# owned aligned buffer.
cargo test -q -p callpath-ensemble
cargo test -q --test ensemble_properties
cargo test -q -p callpath-expdb --features mmap ens::
cargo test -q -p callpath-expdb ens::
cargo test -q --no-default-features --features obs --test ensemble_properties
# The analysis path: query/detector/gate unit tests, the serve
# `analyze` RPC fuzz (covered by `-p callpath-serve` above), exact
# lazy-fault accounting with the mmap borrow path on (default) and
# off, and the query-property file pinned to both degenerate and
# fanned-out thread counts (its doc comment promises this).
cargo test -q -p callpath-analyze
cargo test -q --test analyze_lazy_fault
cargo test -q --no-default-features --features obs --test analyze_lazy_fault
CALLPATH_THREADS=1 cargo test -q --test analyze_properties
CALLPATH_THREADS=4 cargo test -q --test analyze_properties
# Self-gate: the repo's committed BENCH_*.json trajectory against
# itself under the committed policy. Zero deltas by construction, so
# this is deterministic and non-flaky — it exercises the gate's full
# load/parse/report path, and only a >25% nav/cold-open regression
# (the policy's hard rules) can ever fail it.
cargo run -q --bin callpath-analyze -- gate \
  --baseline . --candidate . --policy scripts/perf_policy.toml
