//! `callpath-serve` — a resident profile server: holds experiment
//! databases open (mmap-backed for v2.1) and multiplexes many
//! independent viewer sessions over a line-delimited JSON protocol on
//! TCP. The serving path is documented in DESIGN.md §14.
//!
//! ```text
//! callpath-serve data/s3d.cpdb
//! callpath-serve --addr 127.0.0.1:0 --max-sessions 128 data/s3d.cpdb
//! printf '%s\n' '{"id":1,"method":"open","params":{"path":"data/s3d.cpdb"}}' | nc localhost 7117
//! ```

use callpath::cli;
use callpath_serve::{Engine, ServeConfig, Server};
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
callpath-serve: serve call path profile databases to interactive clients

USAGE:
    callpath-serve [OPTIONS] [PRELOAD...]

    PRELOAD paths are databases opened (and mmap'd) at startup so the
    first client's `open` is a cache hit; clients can open any path.

OPTIONS:
    --addr <HOST:PORT>      listen address [default: 127.0.0.1:7117];
                            port 0 picks an ephemeral port
    --max-sessions <N>      LRU-bounded live session cap [default: 64]
    --idle-timeout <SECS>   close connections idle this long [default: 300]
    --io-timeout <SECS>     per-write socket timeout [default: 30]
    --no-shutdown-rpc       refuse the `shutdown` method (SIGINT still
                            drains and exits)
    --stats                 dump instrumentation counters/spans as JSON
                            on stderr when the server exits
    --self-profile <FILE>   write the server's own recorded profile as a
                            v2 database on exit
    -h, --help              print this help

PROTOCOL (one JSON object per line, reply per line):
    {\"id\":1,\"method\":\"open\",\"params\":{\"path\":\"s3d.cpdb\"}}
    {\"id\":2,\"method\":\"expand\",\"params\":{\"session\":1,\"node\":4}}
    methods: open close render expand collapse select zoom unzoom sort
             sort-name view hot-path flatten unflatten find stats
             ensemble-stats ping shutdown
";

struct Args {
    addr: String,
    preload: Vec<String>,
    cfg: ServeConfig,
    stats: bool,
    self_profile: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7117".into(),
        preload: Vec::new(),
        cfg: ServeConfig::default(),
        stats: false,
        self_profile: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--max-sessions" => {
                args.cfg.max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|_| "--max-sessions must be an integer".to_owned())?
            }
            "--idle-timeout" => {
                args.cfg.idle_timeout = Duration::from_secs(
                    value("--idle-timeout")?
                        .parse()
                        .map_err(|_| "--idle-timeout must be seconds".to_owned())?,
                )
            }
            "--io-timeout" => {
                args.cfg.io_timeout = Duration::from_secs(
                    value("--io-timeout")?
                        .parse()
                        .map_err(|_| "--io-timeout must be seconds".to_owned())?,
                )
            }
            "--no-shutdown-rpc" => args.cfg.allow_shutdown_rpc = false,
            "--stats" => args.stats = true,
            "--self-profile" => args.self_profile = Some(value("--self-profile")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => args.preload.push(other.to_owned()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.cfg.max_sessions == 0 {
        return Err("--max-sessions must be at least 1".into());
    }
    Ok(args)
}

/// Install a SIGINT handler that flips the engine's shutdown flag, so
/// Ctrl-C drains in-flight requests instead of killing them mid-write.
/// Raw `signal(2)` via libc keeps this dependency-free (the same
/// pattern the mmap backend uses for its syscalls).
#[cfg(unix)]
fn install_sigint(engine: &Arc<Engine>) {
    use std::sync::atomic::AtomicBool;

    static FLAG: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_sigint(_: i32) {
        FLAG.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
    // A watcher thread translates the async-signal flag into the
    // engine's shutdown state (nothing async-signal-unsafe runs in the
    // handler itself).
    let engine = Arc::clone(engine);
    std::thread::spawn(move || loop {
        if FLAG.load(Ordering::SeqCst) {
            engine.request_shutdown();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
}

#[cfg(not(unix))]
fn install_sigint(_engine: &Arc<Engine>) {}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let engine = Arc::new(Engine::new(args.cfg.clone()));
    for path in &args.preload {
        engine.load_experiment(path)?;
        eprintln!("preloaded {path}");
    }
    install_sigint(&engine);

    let server = Server::bind(Arc::clone(&engine), &args.addr)
        .map_err(|e| format!("cannot bind {}: {e}", args.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // The listening line is the machine-readable startup handshake
    // (tests parse it to find the ephemeral port) — stdout, flushed.
    {
        use std::io::Write;
        let mut out = std::io::stdout();
        writeln!(out, "listening on {addr}").map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
    }
    server.run();
    eprintln!("drained: {} sessions held at exit", engine.session_count());

    if args.stats {
        cli::emit_stats(None);
    }
    if let Some(path) = &args.self_profile {
        cli::write_self_profile(path)?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
