//! `callpath-record` — run a workload through the measurement pipeline
//! and write an experiment database (the `hpcrun` + `hpcstruct` +
//! `hpcprof` step, in one command).
//!
//! ```text
//! callpath-record --workload s3d -o s3d.cpdb
//! callpath-record --workload pflotran --ranks 64 --format xml -o pf.xml
//! callpath-record --workload random --seed 7 --procs 200 -o r.cpdb
//! ```

use callpath_core::prelude::*;
use callpath_parallel::{run_spmd, SpmdConfig};
use callpath_profiler::{Counter, ExecConfig};
use callpath_workloads::{fig1, generator, moab, pflotran, pipeline, s3d};
use std::process::ExitCode;

const USAGE: &str = "\
callpath-record: profile a workload and write an experiment database

USAGE:
    callpath-record --workload <NAME> -o <FILE> [OPTIONS]

WORKLOADS:
    (or use --program <FILE> to load a .cps scenario file instead)
    fig1         the paper's Fig. 1 toy program
    s3d          turbulent-combustion shape (Figs. 3 & 6)
    s3d-tuned    same, after the 2.9x flux-loop transformation
    moab         mesh benchmark shape (Figs. 4 & 5)
    pflotran     SPMD subsurface-flow shape (Fig. 7); see --ranks
    random       generated program; see --seed/--procs

OPTIONS:
    -o, --output <FILE>     output path (required)
    --program <FILE>        profile a .cps scenario file instead of a
                            built-in workload
    --format <xml|bin|bin2|bin2.1>
                            database format; bin2 is the sectioned v2,
                            bin2.1 its aligned zero-copy revision
                            container the viewer opens lazily [default:
                            from extension, .xml => xml, else bin2]
    --period <N>            cycle sampling period [default: 1009]
    --ranks <N>             SPMD ranks for pflotran [default: 64]
    --seed <N>              random workload seed [default: 42]
    --procs <N>             random workload procedures [default: 100]
    --stats                 dump instrumentation counters/spans as JSON
                            on stderr after the run
    --self-profile <FILE>   write the tool's own recorded profile as a
                            v2 database (open it with callpath-view)
    -h, --help              print this help
";

struct Args {
    workload: String,
    program_file: Option<String>,
    output: String,
    format: Option<String>,
    period: u64,
    ranks: usize,
    seed: u64,
    procs: usize,
    stats: bool,
    self_profile: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: String::new(),
        program_file: None,
        output: String::new(),
        format: None,
        period: 1009,
        ranks: 64,
        seed: 42,
        procs: 100,
        stats: false,
        self_profile: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--workload" | "-w" => args.workload = value("--workload")?,
            "--program" => args.program_file = Some(value("--program")?),
            "--output" | "-o" => args.output = value("--output")?,
            "--format" => args.format = Some(value("--format")?),
            "--period" => {
                args.period = value("--period")?
                    .parse()
                    .map_err(|_| "--period must be a positive integer".to_owned())?
            }
            "--ranks" => {
                args.ranks = value("--ranks")?
                    .parse()
                    .map_err(|_| "--ranks must be a positive integer".to_owned())?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_owned())?
            }
            "--procs" => {
                args.procs = value("--procs")?
                    .parse()
                    .map_err(|_| "--procs must be a positive integer".to_owned())?
            }
            "--stats" => args.stats = true,
            "--self-profile" => args.self_profile = Some(value("--self-profile")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.workload.is_empty() && args.program_file.is_none() {
        return Err("--workload or --program is required".into());
    }
    if !args.workload.is_empty() && args.program_file.is_some() {
        return Err("--workload and --program are mutually exclusive".into());
    }
    if args.output.is_empty() {
        return Err("--output is required".into());
    }
    if args.period == 0 {
        return Err("--period must be positive".into());
    }
    Ok(args)
}

fn build_experiment(args: &Args) -> Result<Experiment, String> {
    let exec = ExecConfig {
        periods: {
            let mut p = ExecConfig::default().periods;
            p[Counter::Cycles as usize] = args.period;
            p
        },
        ..ExecConfig::default()
    };
    if let Some(path) = &args.program_file {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let program = callpath_profiler::parse_program(&src).map_err(|e| format!("{path}: {e}"))?;
        return Ok(pipeline::build_experiment(&program, &exec));
    }
    let exp = match args.workload.as_str() {
        "fig1" => pipeline::build_experiment(&fig1::program(1_000), &exec),
        "s3d" => pipeline::build_experiment(&s3d::program(s3d::S3dConfig::default()), &exec),
        "s3d-tuned" => pipeline::build_experiment(&s3d::program(s3d::S3dConfig::tuned()), &exec),
        "moab" => pipeline::build_experiment(&moab::program(), &exec),
        "pflotran" => {
            let part = pflotran::Partition::default();
            let scales: Vec<f64> = (0..args.ranks).map(|r| part.scale(r, args.ranks)).collect();
            let mut cfg = SpmdConfig::new(scales, exec);
            cfg.keep_rank_data = false;
            run_spmd(&pflotran::program(), &cfg).experiment
        }
        "random" => {
            let program = generator::random_program(generator::GenConfig {
                seed: args.seed,
                n_procs: args.procs,
                ..Default::default()
            });
            pipeline::build_experiment(&program, &exec)
        }
        other => return Err(format!("unknown workload '{other}' (try --help)")),
    };
    Ok(exp)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let exp = {
        let _span = callpath::obs::span("record.build_experiment");
        match build_experiment(&args) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let format = args.format.clone().unwrap_or_else(|| {
        if args.output.ends_with(".xml") {
            "xml".into()
        } else {
            "bin2".into()
        }
    });
    let encode = callpath::obs::span("record.encode");
    let bytes = match format.as_str() {
        "xml" => callpath_expdb::to_xml(&exp).into_bytes(),
        "bin" => callpath_expdb::to_binary(&exp),
        "bin2" => callpath_expdb::to_binary_v2(&exp),
        "bin2.1" => callpath_expdb::to_binary_v21(&exp),
        other => {
            eprintln!("error: unknown format '{other}' (xml|bin|bin2|bin2.1)");
            return ExitCode::FAILURE;
        }
    };
    drop(encode);
    if let Err(e) = std::fs::write(&args.output, &bytes) {
        eprintln!("error: cannot write {}: {e}", args.output);
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} bytes, {} format): {} CCT nodes, {} metrics",
        args.output,
        bytes.len(),
        format,
        exp.cct.len(),
        exp.raw.metric_count()
    );
    if let Some(path) = &args.self_profile {
        if let Err(e) = callpath::cli::write_self_profile(path) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote self-profile {path}");
    }
    if args.stats {
        callpath::cli::emit_stats(Some(&exp));
    }
    ExitCode::SUCCESS
}
