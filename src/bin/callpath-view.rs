//! `callpath-view` — present an experiment database in any of the three
//! views, with sorting, hot-path analysis, derived metrics and
//! flattening: the `hpcviewer` step as a CLI.
//!
//! ```text
//! callpath-view s3d.cpdb --view ccv --hot
//! callpath-view s3d.cpdb --derived 'waste=$1*4-$3' --view flat --flatten 3 --sort-name waste
//! callpath-view pf.xml --view callers --levels 2
//! ```

use callpath_core::prelude::*;
use callpath_viewer::{render, render_hot_path, ExpandMode, RenderConfig};
use std::process::ExitCode;

const USAGE: &str = "\
callpath-view: present a call path profile database

USAGE:
    callpath-view <FILE> [OPTIONS]

OPTIONS:
    --view <ccv|callers|flat>   which view to present [default: ccv]
    --list-columns              print the metric columns and exit
    --sort <N>                  sort by column index [default: 0]
    --sort-name <NAME>          sort by column name
    --columns <N,N,...>         show only these column indices
    --derived <NAME=FORMULA>    add a derived metric (repeatable);
                                formulas use $n / @n column references
    --hot                       run hot path analysis from the top instead
                                of rendering the whole view
    --threshold <T>             hot path threshold in (0,1] [default: 0.5]
    --levels <N>                expand only N levels
    --flatten <N>               flat view: strip N hierarchy layers
    --top <N>                   show at most N children per scope [default: 100]
    -i, --interactive           drive the viewer with commands from stdin
                                (type 'help' inside for the command list)
    --stats                     dump instrumentation counters/spans as JSON
                                on stderr after the run
    --self-profile <FILE>       write the tool's own recorded profile as a
                                v2 database (open it with callpath-view)
    -h, --help                  print this help
";

const REPL_HELP: &str = "\
commands (scopes are addressed by their [row] number):
    ccv | callers | flat     switch view
    expand N | x N           expand a visible scope
    collapse N | c N         collapse a scope
    select N | s N           select a scope (shows its source below)
    hot                      hot path from the selection (or the top)
    find TEXT                search by name, expand ancestors, select
    zoom N / unzoom          restrict the view to a subtree / back
    flatten / unflatten      flat view: strip / restore a hierarchy layer
    sort N                   sort by column index
    namesort on|off          sort scopes alphabetically instead
    hide N / show N          hide / show a metric column
    threshold T              hot-path threshold in (0,1]
    help                     this text
    quit                     exit
";

struct Args {
    file: String,
    view: String,
    interactive: bool,
    list_columns: bool,
    sort: Option<u32>,
    sort_name: Option<String>,
    columns: Vec<u32>,
    derived: Vec<(String, String)>,
    hot: bool,
    threshold: f64,
    levels: Option<usize>,
    flatten: usize,
    top: usize,
    stats: bool,
    self_profile: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: String::new(),
        view: "ccv".into(),
        interactive: false,
        list_columns: false,
        sort: None,
        sort_name: None,
        columns: Vec::new(),
        derived: Vec::new(),
        hot: false,
        threshold: 0.5,
        levels: None,
        flatten: 0,
        top: 100,
        stats: false,
        self_profile: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--view" => args.view = value("--view")?,
            "--list-columns" => args.list_columns = true,
            "--sort" => {
                args.sort = Some(
                    value("--sort")?
                        .parse()
                        .map_err(|_| "--sort must be a column index".to_owned())?,
                )
            }
            "--sort-name" => args.sort_name = Some(value("--sort-name")?),
            "--columns" => {
                args.columns = value("--columns")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad column '{s}'")))
                    .collect::<Result<_, _>>()?
            }
            "--derived" => {
                let spec = value("--derived")?;
                let (name, formula) = spec
                    .split_once('=')
                    .ok_or_else(|| "--derived expects NAME=FORMULA".to_owned())?;
                args.derived.push((name.to_owned(), formula.to_owned()));
            }
            "--hot" => args.hot = true,
            "--stats" => args.stats = true,
            "--self-profile" => args.self_profile = Some(value("--self-profile")?),
            "-i" | "--interactive" => args.interactive = true,
            "--threshold" => {
                args.threshold = value("--threshold")?
                    .parse()
                    .map_err(|_| "--threshold must be a number".to_owned())?
            }
            "--levels" => {
                args.levels = Some(
                    value("--levels")?
                        .parse()
                        .map_err(|_| "--levels must be an integer".to_owned())?,
                )
            }
            "--flatten" => {
                args.flatten = value("--flatten")?
                    .parse()
                    .map_err(|_| "--flatten must be an integer".to_owned())?
            }
            "--top" => {
                args.top = value("--top")?
                    .parse()
                    .map_err(|_| "--top must be an integer".to_owned())?
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if args.file.is_empty() && !other.starts_with('-') => {
                args.file = other.to_owned()
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.file.is_empty() {
        return Err("an input file is required".into());
    }
    if !(args.threshold > 0.0 && args.threshold <= 1.0) {
        return Err("--threshold must be in (0, 1]".into());
    }
    Ok(args)
}

fn load(path: &str) -> Result<Experiment, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    match callpath_expdb::sniff_version(&bytes) {
        // v2 opens lazily: only the TOC, names and topology are decoded
        // here; metric columns fault in when a view first reads them.
        Some(2) => callpath_expdb::open_lazy(bytes).map_err(|e| e.to_string()),
        Some(_) => callpath_expdb::from_binary(&bytes).map_err(|e| e.to_string()),
        None => {
            let text = String::from_utf8(bytes)
                .map_err(|_| "file is neither CPDB nor UTF-8".to_owned())?;
            callpath_expdb::from_xml(&text).map_err(|e| e.to_string())
        }
    }
}

/// Write to stdout, tolerating a closed pipe: under `callpath-view … |
/// head` the reader goes away mid-render, and the right behavior is to
/// stop quietly (no panic, no error text), not to spray diagnostics.
/// Returns `false` once stdout is gone; callers stop rendering then.
fn emit(text: &str) -> bool {
    use std::io::Write;
    let mut stdout = std::io::stdout().lock();
    match stdout
        .write_all(text.as_bytes())
        .and_then(|_| stdout.flush())
    {
        Ok(()) => true,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => false,
        Err(e) => {
            eprintln!("error: cannot write to stdout: {e}");
            false
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let mut exp = load(&args.file)?;
    for (name, formula) in &args.derived {
        exp.add_derived(name, formula)
            .map_err(|e| format!("derived metric '{name}': {e}"))?;
    }

    for &i in &args.columns {
        if i as usize >= exp.columns.column_count() {
            return Err(format!(
                "column {i} out of range: the database has {} columns (try --list-columns)",
                exp.columns.column_count()
            ));
        }
    }

    let result = present(&args, &mut exp);
    if let Some(path) = &args.self_profile {
        callpath::cli::write_self_profile(path)?;
    }
    if args.stats {
        callpath::cli::emit_stats(Some(&exp));
    }
    result
}

fn present(args: &Args, exp: &mut Experiment) -> Result<ExitCode, String> {
    if args.list_columns {
        for (i, d) in exp.columns.descs().iter().enumerate() {
            if !emit(&format!("{i:>3}  {}\n", d.name)) {
                break;
            }
        }
        return Ok(ExitCode::SUCCESS);
    }

    if args.interactive {
        return repl(exp);
    }

    let sort = match (&args.sort_name, args.sort) {
        (Some(name), _) => Some(
            exp.columns
                .find(name)
                .ok_or_else(|| format!("no column named '{name}' (try --list-columns)"))?,
        ),
        (None, Some(i)) => {
            if i as usize >= exp.columns.column_count() {
                return Err(format!("column {i} out of range (try --list-columns)"));
            }
            Some(ColumnId(i))
        }
        (None, None) => Some(ColumnId(0)),
    };

    let cfg = RenderConfig {
        sort,
        columns: args.columns.iter().map(|&i| ColumnId(i)).collect(),
        expand: match args.levels {
            Some(n) => ExpandMode::Levels(n),
            None => ExpandMode::All,
        },
        max_children: args.top,
        ..Default::default()
    };

    let mut view = match args.view.as_str() {
        "ccv" => View::calling_context(exp),
        "callers" => View::callers(exp),
        "flat" => View::flat(exp),
        other => return Err(format!("unknown view '{other}' (ccv|callers|flat)")),
    };

    if args.hot {
        let mut roots = view.roots();
        let col = sort.unwrap_or(ColumnId(0));
        sort_by_column(&view, &mut roots, col);
        let start = *roots
            .first()
            .ok_or_else(|| "the view is empty".to_owned())?;
        emit(&render_hot_path(
            &mut view,
            start,
            col,
            HotPathConfig::with_threshold(args.threshold),
            &cfg,
        ));
        return Ok(ExitCode::SUCCESS);
    }

    if args.flatten > 0 {
        if args.view != "flat" {
            return Err("--flatten applies to --view flat".into());
        }
        if let View::Flat { exp, view: flat } = &mut view {
            let roots = flat.tree.roots();
            let level = flat.flatten(exp, &roots, args.flatten);
            let ids: Vec<u32> = level.iter().map(|n| n.0).collect();
            emit(&callpath_viewer::render_flattened(&mut view, &ids, &cfg));
            return Ok(ExitCode::SUCCESS);
        }
    }

    emit(&render(&mut view, &cfg));
    Ok(ExitCode::SUCCESS)
}

/// The interactive shell: a line-oriented front end over
/// [`callpath_viewer::Session`]. Scopes are addressed by the row numbers
/// the renderer prints, so the top-down discipline holds: only visible
/// rows can be acted on.
///
/// Output contract: renders go to stdout; the banner, help text and
/// command errors go to stderr, so piping stdout yields clean view
/// text. When stdin is not a terminal (a scripted run), any failed
/// command makes the final exit status nonzero — matching batch mode.
fn repl(exp: &Experiment) -> Result<ExitCode, String> {
    use callpath_viewer::{Command, Session};
    use std::io::{BufRead, IsTerminal};

    let mut session = Session::new(exp, callpath_core::source::SourceStore::new());
    let (text, mut rows) = session.render_numbered();
    if !emit(&format!("{text}\n")) {
        return Ok(ExitCode::SUCCESS);
    }
    eprintln!("(interactive mode; 'help' lists commands)");
    let mut failed = false;

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else { continue };
        let arg = parts.next();
        let row_node = |rows: &[u32], a: Option<&str>| -> Result<u32, String> {
            let i: usize = a
                .ok_or("expected a row number")?
                .parse()
                .map_err(|_| "expected a row number".to_owned())?;
            rows.get(i).copied().ok_or_else(|| format!("no row {i}"))
        };
        let result = match cmd {
            "quit" | "q" | "exit" => break,
            "help" | "h" | "?" => {
                eprintln!("{REPL_HELP}");
                continue;
            }
            "ccv" => session.apply(Command::SwitchView(ViewKind::CallingContext)),
            "callers" => session.apply(Command::SwitchView(ViewKind::Callers)),
            "flat" => session.apply(Command::SwitchView(ViewKind::Flat)),
            "expand" | "x" => row_node(&rows, arg).and_then(|n| session.apply(Command::Expand(n))),
            "collapse" | "c" => {
                row_node(&rows, arg).and_then(|n| session.apply(Command::Collapse(n)))
            }
            "select" | "s" => row_node(&rows, arg).and_then(|n| session.apply(Command::Select(n))),
            "zoom" => row_node(&rows, arg).and_then(|n| session.apply(Command::Zoom(n))),
            "unzoom" => session.apply(Command::Unzoom),
            "hot" => session.apply(Command::HotPath),
            "find" => match arg {
                Some(needle) => session.apply(Command::Find(needle.to_owned())),
                None => Err("find needs a search string".into()),
            },
            "flatten" => session.apply(Command::Flatten),
            "unflatten" => session.apply(Command::Unflatten),
            "sort" => arg
                .and_then(|a| a.parse().ok())
                .ok_or("sort needs a column index".to_owned())
                .and_then(|c| session.apply(Command::SortBy(ColumnId(c)))),
            "namesort" => session.apply(Command::SortByName(arg == Some("on"))),
            "hide" => arg
                .and_then(|a| a.parse().ok())
                .ok_or("hide needs a column index".to_owned())
                .and_then(|c| session.apply(Command::HideColumn(ColumnId(c)))),
            "show" => arg
                .and_then(|a| a.parse().ok())
                .ok_or("show needs a column index".to_owned())
                .and_then(|c| session.apply(Command::ShowColumn(ColumnId(c)))),
            "threshold" => arg
                .and_then(|a| a.parse().ok())
                .ok_or("threshold needs a number".to_owned())
                .and_then(|t| session.apply(Command::SetThreshold(t))),
            other => Err(format!("unknown command '{other}' (try 'help')")),
        };
        if let Err(e) = result {
            eprintln!("error: {e}");
            failed = true;
            continue;
        }
        let (text, new_rows) = session.render_numbered();
        rows = new_rows;
        if !emit(&format!("{text}\n")) {
            break;
        }
    }
    // Interactive typos are forgiven; a failed command in a piped
    // script is a failed run.
    if failed && !std::io::stdin().is_terminal() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
