//! `callpath-analyze` — query, diagnose and gate call path profiles.
//!
//! The programmatic face of the presentation paper: instead of *reading*
//! a rendered view, ask typed questions of the profile (`query`), run
//! canned detectors that return structured verdicts (`detect`), or
//! compare a candidate performance record against a baseline under a
//! declarative tolerance policy (`gate`).
//!
//! ```text
//! # Which frames under MPI spend at least 5% of total cycles?
//! callpath-analyze query run.cpdb 'proc ~ "^MPI_" and incl("cycles") > 5%'
//!
//! # Is this ensemble balanced? Which runs are outliers?
//! callpath-analyze detect imbalance runs.cpens --metric cycles
//! callpath-analyze detect outliers runs.cpens
//!
//! # Gate tonight's bench records against the committed baseline:
//! callpath-analyze gate --baseline bench/ --candidate new/ \
//!     --policy scripts/perf_policy.toml
//! ```
//!
//! Exit codes: `0` pass (or advisory-only regressions), `1` a hard gate
//! failure or a FAIL verdict, `2` usage or I/O errors.

use callpath_analyze::{
    derived_waste, ensemble_outliers, gate_records, load_bench_records,
    load_imbalance_with_context, parse_policy, record_from_experiment, run_query,
    scaling_loss_verdict, BenchRecord, ImbalanceConfig, OutlierConfig, Policy, ScalingConfig,
    Status, Verdict, WasteConfig,
};
use callpath_expdb::ens;
use std::path::Path;
use std::process::ExitCode;

use callpath_core::prelude::*;

const USAGE: &str = "\
callpath-analyze: query, diagnose and gate call path profiles

USAGE:
    callpath-analyze query <DB> <QUERY> [OPTIONS]
    callpath-analyze detect imbalance <FILE.cpens> [OPTIONS]
    callpath-analyze detect outliers <FILE.cpens> [OPTIONS]
    callpath-analyze detect waste <DB> [OPTIONS]
    callpath-analyze detect scaling --base <DB> --peer <DB> [OPTIONS]
    callpath-analyze gate --baseline <P> --candidate <P> [OPTIONS]

SUBCOMMANDS:
    query      evaluate a predicate over the CCT; print matching call
               paths ranked by a score column. Only the columns the
               query names are faulted on a lazily opened database.
    detect     run a canned detector; print a PASS/WARN/FAIL verdict
               with evidence call paths. FAIL exits 1.
    gate       compare candidate vs baseline bench records (or whole
               profiles reduced to per-metric totals) under a tolerance
               policy. A hard regression exits 1.

QUERY OPTIONS:
    --score <COL>      exact score column name [default: first column]
    --top <N>          hits to print [default: 10]
    --threads <T>      worker threads; 0 = CALLPATH_THREADS or auto

DETECT OPTIONS:
    --metric <NAME>    base metric (imbalance, scaling) [default: first
                       metric / 'cycles']
    --cycles <NAME>    cycles metric for waste [default: cycles]
    --flops <NAME>     flops metric for waste [default: flops]
    --peak <F>         machine peak, flops per cycle [default: 4]
    --base <DB>        baseline run for scaling
    --peer <DB>        scaled-up run for scaling
    --scale <F>        expected cost growth base -> peer [default: 1]
    --warn <F>         override the detector's warn threshold
    --fail <F>         override the detector's fail threshold
    --top <N>          evidence entries to cite [default: 3]

GATE OPTIONS:
    --baseline <P>     BENCH_*.json file or directory, or a profile DB
    --candidate <P>    ditto; records pair with the baseline by name
    --policy <FILE>    tolerance policy (TOML subset) [default: 10% on
                       *_ms/*_ns fields, advisory]

COMMON OPTIONS:
    --json             machine-readable report on stdout
    --stats            dump instrumentation counters/spans as JSON on
                       stderr after the run
    --self-profile <FILE>  write the tool's own recorded profile as a v2
                       database (open it with callpath-view)
    -h, --help         print this help

EXIT CODES:
    0   pass, or advisory-only regressions
    1   hard gate failure, or a FAIL verdict
    2   usage or I/O error
";

struct Args {
    pos: Vec<String>,
    score: Option<String>,
    top: Option<usize>,
    threads: usize,
    metric: Option<String>,
    cycles: String,
    flops: String,
    peak: f64,
    base: Option<String>,
    peer: Option<String>,
    scale: f64,
    warn: Option<f64>,
    fail: Option<f64>,
    baseline: Option<String>,
    candidate: Option<String>,
    policy: Option<String>,
    json: bool,
    stats: bool,
    self_profile: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        pos: Vec::new(),
        score: None,
        top: None,
        threads: 0,
        metric: None,
        cycles: "cycles".into(),
        flops: "flops".into(),
        peak: 4.0,
        base: None,
        peer: None,
        scale: 1.0,
        warn: None,
        fail: None,
        baseline: None,
        candidate: None,
        policy: None,
        json: false,
        stats: false,
        self_profile: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        let num = |name: &str, v: String| {
            v.parse::<f64>()
                .ok()
                .filter(|x| x.is_finite())
                .ok_or_else(|| format!("{name} must be a finite number"))
        };
        match a.as_str() {
            "--score" => args.score = Some(value("--score")?),
            "--top" => {
                args.top = Some(
                    value("--top")?
                        .parse()
                        .map_err(|_| "--top must be an integer".to_owned())?,
                )
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_owned())?
            }
            "--metric" => args.metric = Some(value("--metric")?),
            "--cycles" => args.cycles = value("--cycles")?,
            "--flops" => args.flops = value("--flops")?,
            "--peak" => args.peak = num("--peak", value("--peak")?)?,
            "--base" => args.base = Some(value("--base")?),
            "--peer" => args.peer = Some(value("--peer")?),
            "--scale" => args.scale = num("--scale", value("--scale")?)?,
            "--warn" => args.warn = Some(num("--warn", value("--warn")?)?),
            "--fail" => args.fail = Some(num("--fail", value("--fail")?)?),
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--candidate" => args.candidate = Some(value("--candidate")?),
            "--policy" => args.policy = Some(value("--policy")?),
            "--json" => args.json = true,
            "--stats" => args.stats = true,
            "--self-profile" => args.self_profile = Some(value("--self-profile")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with("--") => args.pos.push(other.to_owned()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.pos.is_empty() {
        return Err("a subcommand is required (query, detect, gate)".into());
    }
    Ok(args)
}

fn load_exp(path: &str) -> Result<Experiment, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    match callpath_expdb::sniff_version(&bytes) {
        Some(2) => callpath_expdb::open_lazy(bytes).map_err(|e| e.to_string()),
        Some(_) => callpath_expdb::from_binary(&bytes).map_err(|e| e.to_string()),
        None => {
            let text = String::from_utf8(bytes)
                .map_err(|_| "file is neither CPDB nor UTF-8".to_owned())?;
            callpath_expdb::from_xml(&text).map_err(|e| e.to_string())
        }
    }
}

fn stem(path: &str) -> String {
    Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_owned())
}

/// Print a verdict and translate its status to the process exit code:
/// PASS and WARN exit 0, FAIL exits 1.
fn finish_verdict(v: &Verdict, json: bool) -> ExitCode {
    if json {
        println!("{}", v.to_json().to_json());
    } else {
        print!("{}", v.render());
    }
    if v.status == Status::Fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_query(args: &Args) -> Result<ExitCode, String> {
    let [_, db, query] = args.pos.as_slice() else {
        return Err("query: expected <DB> <QUERY>".into());
    };
    let exp = load_exp(db)?;
    let report = run_query(
        &exp,
        query,
        args.score.as_deref(),
        args.top.unwrap_or(10),
        args.threads,
    )?;
    if args.json {
        println!("{}", report.to_json().to_json());
    } else {
        print!("{}", report.render());
    }
    Ok(ExitCode::SUCCESS)
}

fn detect_imbalance(args: &Args, file: &str) -> Result<ExitCode, String> {
    let ens::Ensemble { exp, dir } = ens::open(Path::new(file)).map_err(|e| e.to_string())?;
    let m = match &args.metric {
        Some(name) => dir
            .metric_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| format!("no metric '{name}' (have {:?})", dir.metric_names))?,
        None => 0,
    };
    let metric = &dir.metric_names[m];
    let series: Vec<f64> = dir.runs.iter().map(|r| r.stats[m].1).collect();
    let mut cfg = ImbalanceConfig::default();
    if let Some(w) = args.warn {
        cfg.warn_factor = w;
    }
    if let Some(f) = args.fail {
        cfg.fail_factor = f;
    }
    if let Some(t) = args.top {
        cfg.top = t;
    }
    let what = format!("{metric} across {}", stem(file));
    let v = load_imbalance_with_context(&series, &what, &cfg, &exp, &format!("{metric} mean (I)"))?;
    Ok(finish_verdict(&v, args.json))
}

fn detect_outliers(args: &Args, file: &str) -> Result<ExitCode, String> {
    let bytes = std::fs::read(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let dir = ens::read_directory(&bytes).map_err(|e| e.to_string())?;
    let mut cfg = OutlierConfig::default();
    if let Some(w) = args.warn {
        cfg.z_warn = w;
    }
    if let Some(f) = args.fail {
        cfg.z_fail = f;
    }
    if let Some(t) = args.top {
        cfg.top = t;
    }
    Ok(finish_verdict(&ensemble_outliers(&dir, &cfg), args.json))
}

fn detect_waste(args: &Args, file: &str) -> Result<ExitCode, String> {
    let exp = load_exp(file)?;
    let mut cfg = WasteConfig {
        peak_flops_per_cycle: args.peak,
        ..WasteConfig::default()
    };
    if let Some(w) = args.warn {
        cfg.warn_frac = w;
    }
    if let Some(f) = args.fail {
        cfg.fail_frac = f;
    }
    if let Some(t) = args.top {
        cfg.top = t;
    }
    let v = derived_waste(&exp, &args.cycles, &args.flops, &cfg)?;
    Ok(finish_verdict(&v, args.json))
}

fn detect_scaling(args: &Args) -> Result<ExitCode, String> {
    let (Some(base), Some(peer)) = (&args.base, &args.peer) else {
        return Err("detect scaling: --base and --peer are required".into());
    };
    let base_exp = load_exp(base)?;
    let peer_exp = load_exp(peer)?;
    let metric = args.metric.clone().unwrap_or_else(|| "cycles".into());
    let mut cfg = ScalingConfig {
        expected_scale: args.scale,
        ..ScalingConfig::default()
    };
    if let Some(w) = args.warn {
        cfg.warn_frac = w;
    }
    if let Some(f) = args.fail {
        cfg.fail_frac = f;
    }
    if let Some(t) = args.top {
        cfg.top = t;
    }
    let v = scaling_loss_verdict(
        &base_exp,
        &stem(base),
        &peer_exp,
        &stem(peer),
        &metric,
        &cfg,
    )?;
    Ok(finish_verdict(&v, args.json))
}

fn cmd_detect(args: &Args) -> Result<ExitCode, String> {
    let kind = args
        .pos
        .get(1)
        .ok_or("detect: a detector is required (imbalance, outliers, waste, scaling)")?;
    let file = || {
        args.pos
            .get(2)
            .map(String::as_str)
            .ok_or_else(|| format!("detect {kind}: a file argument is required"))
    };
    match kind.as_str() {
        "imbalance" => detect_imbalance(args, file()?),
        "outliers" => detect_outliers(args, file()?),
        "waste" => detect_waste(args, file()?),
        "scaling" => detect_scaling(args),
        other => Err(format!("unknown detector '{other}'")),
    }
}

/// One side of the gate: a profile database reduces to per-metric
/// totals (no column is faulted); anything else is a `BENCH_*.json`
/// file or a directory of them.
fn gate_side(path: &str) -> Result<Vec<BenchRecord>, String> {
    let p = Path::new(path);
    if p.is_file() {
        let bytes = std::fs::read(p).map_err(|e| format!("cannot read {path}: {e}"))?;
        if callpath_expdb::sniff_version(&bytes).is_some() {
            let exp = match callpath_expdb::sniff_version(&bytes) {
                Some(2) => callpath_expdb::open_lazy(bytes).map_err(|e| e.to_string())?,
                _ => callpath_expdb::from_binary(&bytes).map_err(|e| e.to_string())?,
            };
            return Ok(vec![record_from_experiment(&stem(path), &exp)]);
        }
    }
    load_bench_records(p)
}

fn cmd_gate(args: &Args) -> Result<ExitCode, String> {
    let (Some(baseline), Some(candidate)) = (&args.baseline, &args.candidate) else {
        return Err("gate: --baseline and --candidate are required".into());
    };
    let policy = match &args.policy {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            parse_policy(&text).map_err(|e| format!("{path}: {e}"))?
        }
        None => Policy::default(),
    };
    let base = gate_side(baseline)?;
    let cand = gate_side(candidate)?;
    let report = gate_records(&base, &cand, &policy);
    if args.json {
        println!("{}", report.to_json().to_json());
    } else {
        print!("{}", report.render());
    }
    Ok(if report.failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let code = match args.pos[0].as_str() {
        "query" => cmd_query(&args)?,
        "detect" => cmd_detect(&args)?,
        "gate" => cmd_gate(&args)?,
        other => return Err(format!("unknown subcommand '{other}'")),
    };
    if let Some(path) = &args.self_profile {
        callpath::cli::write_self_profile(path)?;
    }
    if args.stats {
        eprint!("{}", callpath::obs::snapshot().to_json());
    }
    Ok(code)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
