//! `callpath-ensemble` — build, inspect and rank ensembles of call path
//! profiles. An ensemble unions the CCTs of many runs of the same
//! program into one supergraph and stores cross-run statistics (mean,
//! min, max, stddev per metric per context) as ordinary lazy columns in
//! a `.cpens` database, which is itself a valid v2.1 CPDB.
//!
//! ```text
//! # Union 64 per-rank profiles into one ensemble database:
//! callpath-ensemble build runs.cpens rank*.cpdb
//!
//! # Synthetic 1,000-run family for benchmarking:
//! callpath-ensemble build big.cpens --synth 1000
//!
//! # Sorted cross-run statistics, with two runs grafted in for
//! # drill-down (run 5 metric 0, run 96 metric 0):
//! callpath-ensemble stat big.cpens --stat stddev --runs 5:0,96:0
//!
//! # Which runs deviate most from the ensemble mean?
//! callpath-ensemble outliers big.cpens --top 5
//! ```

use callpath_ensemble::RunData;
use callpath_expdb::ens;
use callpath_viewer::{ExpandMode, RenderConfig};
use callpath_workloads::synth::{ensemble_run, EnsembleConfig};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use callpath_core::prelude::*;

const USAGE: &str = "\
callpath-ensemble: union many call path profiles and compare across runs

USAGE:
    callpath-ensemble build <OUT.cpens> [RUN.cpdb ...] [OPTIONS]
    callpath-ensemble stat <FILE.cpens> [OPTIONS]
    callpath-ensemble outliers <FILE.cpens> [OPTIONS]

SUBCOMMANDS:
    build      union N runs into a .cpens ensemble database
    stat       render per-context cross-run statistics over the union CCT
    outliers   rank runs by worst cross-run z-score (from the directory
               alone; no metric columns are faulted)

BUILD OPTIONS:
    --synth <N>        generate N synthetic runs instead of reading files
    --threads <T>      worker threads for the union and the statistics
                       pass; 0 = CALLPATH_THREADS or auto [default: 0]

STAT OPTIONS:
    --view <V>         ccv | callers | flat [default: ccv]
    --metric <NAME>    base metric to present [default: first]
    --stat <S>         statistic column to sort by: mean | min | max |
                       stddev [default: mean]
    --runs <R:M,...>   graft per-run drill-down columns (run:metric index
                       pairs); only those columns are faulted
    --top <N>          children per scope [default: 10]
    --levels <N>       depth to expand [default: 3]

OUTLIERS OPTIONS:
    --top <N>          runs to print [default: 10]

COMMON OPTIONS:
    --stats            dump instrumentation counters/spans as JSON on
                       stderr after the run
    --self-profile <FILE>  write the tool's own recorded profile as a v2
                       database (open it with callpath-view)
    -h, --help         print this help
";

struct Args {
    cmd: String,
    file: String,
    inputs: Vec<String>,
    synth: Option<usize>,
    threads: usize,
    view: String,
    metric: Option<String>,
    stat: String,
    runs: Vec<(u32, u32)>,
    top: usize,
    levels: usize,
    stats: bool,
    self_profile: Option<String>,
}

fn parse_runs(spec: &str) -> Result<Vec<(u32, u32)>, String> {
    spec.split(',')
        .map(|pair| {
            let (r, m) = pair
                .split_once(':')
                .ok_or_else(|| format!("--runs: '{pair}' is not RUN:METRIC"))?;
            let parse = |s: &str| {
                s.parse::<u32>()
                    .map_err(|_| format!("--runs: '{pair}' is not RUN:METRIC"))
            };
            Ok((parse(r)?, parse(m)?))
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cmd: String::new(),
        file: String::new(),
        inputs: Vec::new(),
        synth: None,
        threads: 0,
        view: "ccv".into(),
        metric: None,
        stat: "mean".into(),
        runs: Vec::new(),
        top: 10,
        levels: 3,
        stats: false,
        self_profile: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--synth" => {
                args.synth = Some(
                    value("--synth")?
                        .parse()
                        .map_err(|_| "--synth must be an integer".to_owned())?,
                )
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_owned())?
            }
            "--view" => args.view = value("--view")?,
            "--metric" => args.metric = Some(value("--metric")?),
            "--stat" => args.stat = value("--stat")?,
            "--runs" => args.runs = parse_runs(&value("--runs")?)?,
            "--top" => {
                args.top = value("--top")?
                    .parse()
                    .map_err(|_| "--top must be an integer".to_owned())?
            }
            "--levels" => {
                args.levels = value("--levels")?
                    .parse()
                    .map_err(|_| "--levels must be an integer".to_owned())?
            }
            "--stats" => args.stats = true,
            "--self-profile" => args.self_profile = Some(value("--self-profile")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => {
                if args.cmd.is_empty() {
                    args.cmd = other.to_owned();
                } else if args.file.is_empty() {
                    args.file = other.to_owned();
                } else {
                    args.inputs.push(other.to_owned());
                }
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.cmd.is_empty() {
        return Err("a subcommand is required (build, stat, outliers)".into());
    }
    if args.file.is_empty() {
        return Err(format!("{}: a file argument is required", args.cmd));
    }
    if !ens::STAT_NAMES.contains(&args.stat.as_str()) {
        return Err(format!("--stat must be one of {:?}", ens::STAT_NAMES));
    }
    Ok(args)
}

fn load_run(path: &str) -> Result<RunData, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let exp = match callpath_expdb::sniff_version(&bytes) {
        Some(2) => callpath_expdb::open_lazy(bytes).map_err(|e| e.to_string())?,
        Some(_) => callpath_expdb::from_binary(&bytes).map_err(|e| e.to_string())?,
        None => {
            let text = String::from_utf8(bytes)
                .map_err(|_| "file is neither CPDB nor UTF-8".to_owned())?;
            callpath_expdb::from_xml(&text).map_err(|e| e.to_string())?
        }
    };
    let label = Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_owned());
    Ok(RunData::from_experiment(label, &exp))
}

fn build(args: &Args) -> Result<(), String> {
    let t0 = Instant::now();
    let runs: Vec<RunData> = match args.synth {
        Some(n) => {
            if !args.inputs.is_empty() {
                return Err("build: give input files or --synth, not both".into());
            }
            let cfg = EnsembleConfig {
                n_runs: n,
                ..EnsembleConfig::default()
            };
            let _span = callpath::obs::span("ensemble.synth");
            (0..n)
                .map(|r| {
                    RunData::from_model(format!("run-{r:04}"), &ensemble_run(&cfg, r))
                        .map_err(|e| e.to_string())
                })
                .collect::<Result<_, _>>()?
        }
        None => {
            if args.inputs.is_empty() {
                return Err("build: no input files (give .cpdb paths or --synth N)".into());
            }
            let _span = callpath::obs::span("ensemble.load");
            args.inputs
                .iter()
                .map(|p| load_run(p))
                .collect::<Result<_, _>>()?
        }
    };
    let loaded = t0.elapsed();
    let t1 = Instant::now();
    let built = callpath_ensemble::build(&runs, args.threads);
    let union_nodes = built.cct.len();
    let n_runs = runs.len();
    let n_metrics = built.metric_names.len();
    let bytes = built.to_bytes();
    let unioned = t1.elapsed();
    std::fs::write(&args.file, &bytes).map_err(|e| format!("cannot write {}: {e}", args.file))?;
    println!(
        "{}: {} runs, {} base metrics, {} union contexts, {} bytes",
        args.file,
        n_runs,
        n_metrics,
        union_nodes,
        bytes.len()
    );
    println!(
        "load {:.1} ms, union+stats {:.1} ms",
        loaded.as_secs_f64() * 1e3,
        unioned.as_secs_f64() * 1e3
    );
    Ok(())
}

fn stat(args: &Args) -> Result<(), String> {
    let t0 = Instant::now();
    let ens::Ensemble { exp, dir } =
        ens::open_with_runs(Path::new(&args.file), &args.runs).map_err(|e| e.to_string())?;
    let opened = t0.elapsed();
    let n_stats = ens::STAT_NAMES.len();
    let base = match &args.metric {
        Some(name) => dir
            .metric_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| format!("no metric '{name}' (have {:?})", dir.metric_names))?,
        None => 0,
    };
    let base_name = &dir.metric_names[base];
    // Inclusive stat columns of the chosen base metric, then every
    // grafted per-run column; resolved by column name so the mapping
    // survives metric reordering.
    let mut columns = Vec::new();
    for s in ens::STAT_NAMES {
        let name = format!("{base_name} {s} (I)");
        columns.push(
            exp.columns
                .find(&name)
                .ok_or_else(|| format!("missing column '{name}'"))?,
        );
    }
    let sort_idx = ens::STAT_NAMES
        .iter()
        .position(|s| *s == args.stat)
        .unwrap();
    let mut groups = vec![(base_name.clone(), n_stats)];
    for &(r, m) in &args.runs {
        let run = &dir.runs[r as usize];
        let name = format!("{}@{} (I)", dir.metric_names[m as usize], run.label);
        columns.push(
            exp.columns
                .find(&name)
                .ok_or_else(|| format!("missing column '{name}'"))?,
        );
    }
    if !args.runs.is_empty() {
        groups.push(("runs".into(), args.runs.len()));
    }
    let cfg = RenderConfig {
        sort: Some(columns[sort_idx]),
        columns,
        groups,
        expand: ExpandMode::Levels(args.levels),
        max_children: args.top,
        show_percent: false,
        ..Default::default()
    };
    let mut view = match args.view.as_str() {
        "ccv" => View::calling_context(&exp),
        "callers" => View::callers(&exp),
        "flat" => View::flat(&exp),
        other => return Err(format!("unknown view '{other}'")),
    };
    let text = {
        let _span = callpath::obs::span("ensemble.render");
        callpath_viewer::render(&mut view, &cfg)
    };
    let rendered = t0.elapsed();
    println!(
        "{}: {} runs, {} base metrics, {} contexts",
        args.file,
        dir.runs.len(),
        dir.metric_names.len(),
        exp.cct.len()
    );
    println!(
        "open {:.2} ms, open+render {:.2} ms\n",
        opened.as_secs_f64() * 1e3,
        rendered.as_secs_f64() * 1e3
    );
    print!("{text}");
    Ok(())
}

fn outliers(args: &Args) -> Result<(), String> {
    let bytes = std::fs::read(&args.file).map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let dir = ens::read_directory(&bytes).map_err(|e| e.to_string())?;
    let scores = callpath_ensemble::outlier_scores(&dir);
    println!(
        "{}: {} runs, metrics {:?}",
        args.file,
        dir.runs.len(),
        dir.metric_names
    );
    println!("{:>6}  {:>10}  label", "run", "z-score");
    for &(r, score) in scores.iter().take(args.top) {
        println!("{r:>6}  {score:>10.3}  {}", dir.runs[r].label);
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    match args.cmd.as_str() {
        "build" => build(&args)?,
        "stat" => stat(&args)?,
        "outliers" => outliers(&args)?,
        other => return Err(format!("unknown subcommand '{other}'")),
    }
    if let Some(path) = &args.self_profile {
        callpath::cli::write_self_profile(path)?;
    }
    if args.stats {
        eprint!("{}", callpath::obs::snapshot().to_json());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
