//! `callpath-diff` — scale and difference two experiment databases
//! (Section VI-A, after the paper's reference \[3\]): pinpoint scalability
//! losses or before/after regressions in calling context.
//!
//! ```text
//! # Before/after a code change (expected scale 1):
//! callpath-diff tuned.cpdb base.cpdb --metric PAPI_TOT_CYC
//!
//! # Strong scaling from 256 to 512 cores (peer should halve):
//! callpath-diff q256.cpdb q512.cpdb --scale 0.5
//! ```

use callpath_core::prelude::*;
use callpath_viewer::{render_hot_path, RenderConfig};
use std::process::ExitCode;

const USAGE: &str = "\
callpath-diff: scale-and-difference two call path profiles

USAGE:
    callpath-diff <BASE-FILE> <PEER-FILE> [OPTIONS]

The loss column is  peer - scale × base  (inclusive); positive values are
cost the peer run spends that the expectation says it should not.

OPTIONS:
    --metric <NAME>     raw metric to compare [default: PAPI_TOT_CYC]
    --scale <S>         expected base→peer scale factor [default: 1.0]
    --threshold <T>     hot path threshold in (0,1] [default: 0.5]
    --full              render the full loss-annotated tree instead of the
                        hot path
    --top <N>           children per scope in full mode [default: 20]
    --stats             dump instrumentation counters/spans as JSON on
                        stderr after the run
    --self-profile <FILE>  write the tool's own recorded profile as a v2
                        database (open it with callpath-view)
    -h, --help          print this help
";

struct Args {
    base: String,
    peer: String,
    metric: String,
    scale: f64,
    threshold: f64,
    full: bool,
    top: usize,
    stats: bool,
    self_profile: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        base: String::new(),
        peer: String::new(),
        metric: "PAPI_TOT_CYC".into(),
        scale: 1.0,
        threshold: 0.5,
        full: false,
        top: 20,
        stats: false,
        self_profile: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--metric" => args.metric = value("--metric")?,
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|_| "--scale must be a number".to_owned())?
            }
            "--threshold" => {
                args.threshold = value("--threshold")?
                    .parse()
                    .map_err(|_| "--threshold must be a number".to_owned())?
            }
            "--full" => args.full = true,
            "--stats" => args.stats = true,
            "--self-profile" => args.self_profile = Some(value("--self-profile")?),
            "--top" => {
                args.top = value("--top")?
                    .parse()
                    .map_err(|_| "--top must be an integer".to_owned())?
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => {
                if args.base.is_empty() {
                    args.base = other.to_owned();
                } else if args.peer.is_empty() {
                    args.peer = other.to_owned();
                } else {
                    return Err(format!("unexpected argument '{other}'"));
                }
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.base.is_empty() || args.peer.is_empty() {
        return Err("two input files are required".into());
    }
    if !(args.threshold > 0.0 && args.threshold <= 1.0) {
        return Err("--threshold must be in (0, 1]".into());
    }
    Ok(args)
}

fn load(path: &str) -> Result<Experiment, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    match callpath_expdb::sniff_version(&bytes) {
        // Diffing touches every column of both databases, so the v2
        // path opens lazily and immediately fans block decode across
        // workers instead of paying faults serially mid-analysis.
        Some(2) => {
            let exp = callpath_expdb::open_lazy(bytes).map_err(|e| e.to_string())?;
            callpath_expdb::decode_all(&exp, 0);
            Ok(exp)
        }
        Some(_) => callpath_expdb::from_binary(&bytes).map_err(|e| e.to_string()),
        None => {
            let text = String::from_utf8(bytes)
                .map_err(|_| "file is neither CPDB nor UTF-8".to_owned())?;
            callpath_expdb::from_xml(&text).map_err(|e| e.to_string())
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let loading = callpath::obs::span("diff.load");
    let base = load(&args.base)?;
    let peer = load(&args.peer)?;
    drop(loading);
    let analysis = {
        let _span = callpath::obs::span("diff.scaling_loss");
        scaling_loss(&base, "base", &peer, "peer", &args.metric, args.scale)?
    };
    let exp = &analysis.experiment;
    let root = exp.cct.root();
    let base_total = exp.columns.get(analysis.base_incl, root.0);
    let peer_total = exp.columns.get(analysis.peer_incl, root.0);
    let loss_total = exp.columns.get(analysis.loss_incl, root.0);
    println!("base:  {base_total:.4e}  ({})", args.base);
    println!("peer:  {peer_total:.4e}  ({})", args.peer);
    println!(
        "loss:  {loss_total:.4e}  (peer - {} x base; {:.1}% of peer)\n",
        args.scale,
        100.0 * exp.columns.get(analysis.loss_frac, root.0)
    );

    let cfg = RenderConfig {
        sort: Some(analysis.loss_incl),
        columns: vec![analysis.loss_incl, analysis.base_incl, analysis.peer_incl],
        show_percent: false,
        max_children: args.top,
        ..Default::default()
    };
    let mut view = View::calling_context(exp);
    let roots = view.roots();
    if args.full {
        print!("{}", callpath_viewer::render(&mut view, &cfg));
    } else if let Some(&start) = roots.first() {
        print!(
            "{}",
            render_hot_path(
                &mut view,
                start,
                analysis.loss_incl,
                HotPathConfig::with_threshold(args.threshold),
                &cfg
            )
        );
    }
    if let Some(path) = &args.self_profile {
        callpath::cli::write_self_profile(path)?;
    }
    if args.stats {
        let mut snap = callpath::obs::snapshot();
        callpath::cli::merge_lazy_errors(&mut snap, &base);
        callpath::cli::merge_lazy_errors(&mut snap, &peer);
        eprint!("{}", snap.to_json());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
