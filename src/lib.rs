//! Umbrella crate re-exporting the callpath workspace. See README.md.
pub use callpath_analyze as analyze;
pub use callpath_baseline as baseline;
pub use callpath_core as core;
pub use callpath_expdb as expdb;
pub use callpath_obs as obs;
pub use callpath_parallel as parallel;
pub use callpath_prof as prof;
pub use callpath_profiler as profiler;
pub use callpath_serve as serve;
pub use callpath_structure as structure;
pub use callpath_viewer as viewer;
pub use callpath_workloads as workloads;

/// Shared plumbing for the CLI binaries: the `--stats` JSON dump and the
/// `--self-profile` experiment export, identical across `callpath-view`,
/// `callpath-record` and `callpath-diff`.
pub mod cli {
    use callpath_core::experiment::Experiment;
    use callpath_obs as obs;

    /// Fold the experiment's lazy-fault failures into `snap.errors`, so
    /// the `--stats` dump surfaces *every* distinct corrupt-column error
    /// even when instrumentation is compiled out. Reasons the obs hooks
    /// already recorded (with a `column N:`/`metric N:` prefix) are not
    /// duplicated.
    pub fn merge_lazy_errors(snap: &mut obs::Snapshot, exp: &Experiment) {
        for msg in exp
            .columns
            .lazy_errors()
            .into_iter()
            .chain(exp.raw.lazy_errors())
        {
            if !snap.errors.iter().any(|(m, _)| m.contains(&msg)) {
                snap.errors.push((msg, 1));
            }
        }
    }

    /// Print the `--stats` JSON document to stderr (stderr so it composes
    /// with a piped render on stdout).
    pub fn emit_stats(exp: Option<&Experiment>) {
        let mut snap = obs::snapshot();
        if let Some(exp) = exp {
            merge_lazy_errors(&mut snap, exp);
        }
        eprint!("{}", snap.to_json());
    }

    /// Export the recorded span tree as a v2 experiment database at
    /// `path` — the tool's own profile, openable by `callpath-view` in
    /// all three views.
    pub fn write_self_profile(path: &str) -> Result<(), String> {
        let exp = obs::to_experiment(&obs::snapshot());
        std::fs::write(path, callpath_expdb::to_binary_v2(&exp))
            .map_err(|e| format!("cannot write {path}: {e}"))
    }
}
