//! Umbrella crate re-exporting the callpath workspace. See README.md.
pub use callpath_baseline as baseline;
pub use callpath_core as core;
pub use callpath_expdb as expdb;
pub use callpath_parallel as parallel;
pub use callpath_prof as prof;
pub use callpath_profiler as profiler;
pub use callpath_structure as structure;
pub use callpath_viewer as viewer;
pub use callpath_workloads as workloads;
