//! Figs. 3 & 6: analyzing the S3D-shaped turbulent combustion workload.
//!
//! ```sh
//! cargo run --example s3d_analysis
//! ```
//!
//! Reproduces the paper's two S3D analyses:
//! 1. hot path analysis on inclusive cycles drills into
//!    `chemkin_m_reaction_rate_` (≈41.4% of cycles, Fig. 3);
//! 2. a derived floating-point *waste* metric plus *relative efficiency*
//!    rank the memory-bound flux-diffusion loop as the top tuning target
//!    (≈6% efficiency), with the math library's exponential loop next at
//!    ≈39% (Fig. 6) — and the "tuned" variant shows the 2.9× win.

use callpath_core::prelude::*;
use callpath_profiler::ExecConfig;
use callpath_viewer::{render_flattened, render_hot_path, RenderConfig};
use callpath_workloads::{pipeline, s3d};

fn flux_loop_cycles(exp: &Experiment) -> f64 {
    let cyc_e = exp.exclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());
    let flat = FlatView::build_eager(exp, StorageKind::Dense);
    let mut stack: Vec<ViewNodeId> = flat.tree.roots();
    while let Some(n) = stack.pop() {
        if flat
            .tree
            .label(n, &exp.cct.names)
            .starts_with("loop at diffflux.f90")
        {
            return flat.tree.columns.get(cyc_e, n.0);
        }
        stack.extend(flat.tree.children(n));
    }
    0.0
}

fn main() {
    let exp = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    let cyc_i = exp.inclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());

    // --- Fig. 3: hot path through the calling contexts.
    let mut ccv = View::calling_context(&exp);
    let roots = ccv.roots();
    println!("=== Fig. 3: hot path on PAPI_TOT_CYC (t = 50%) ===");
    println!(
        "{}",
        render_hot_path(
            &mut ccv,
            roots[0],
            cyc_i,
            HotPathConfig::default(),
            &RenderConfig {
                columns: vec![ColumnId(0), ColumnId(1)],
                ..Default::default()
            },
        )
    );

    // --- Fig. 6: derived metrics.
    let mut exp = exp;
    let cyc_e = exp.exclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());
    let fp_e = exp.exclusive_col(exp.raw.find("PAPI_FP_OPS").unwrap());
    let peak = s3d::PEAK_FLOPS_PER_CYCLE;
    let waste = exp
        .add_derived("fp waste", &format!("${} * {peak} - ${}", cyc_e.0, fp_e.0))
        .unwrap();
    let eff = exp
        .add_derived(
            "rel efficiency",
            &format!("${} / (${} * {peak})", fp_e.0, cyc_e.0),
        )
        .unwrap();

    // Flatten the Flat View down to loops and sort by waste — exactly the
    // paper's Fig. 6 workflow.
    let mut flat = FlatView::build(&exp, StorageKind::Dense);
    let roots = flat.tree.roots();
    let level = flat.flatten(&exp, &roots, 3);
    let ids: Vec<u32> = level.iter().map(|n| n.0).collect();
    let mut flat_view = View::Flat {
        exp: &exp,
        view: flat,
    };
    println!("=== Fig. 6: loops flattened & sorted by derived FP waste ===");
    println!(
        "{}",
        render_flattened(
            &mut flat_view,
            &ids,
            &RenderConfig {
                sort: Some(waste),
                columns: vec![waste, eff, cyc_e],
                show_percent: false,
                max_children: 12,
                ..Default::default()
            },
        )
    );

    // --- The 2.9x tuning result.
    let base_flux = flux_loop_cycles(&exp);
    let tuned_exp = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::tuned()),
        &ExecConfig::default(),
    );
    let tuned_flux = flux_loop_cycles(&tuned_exp);
    println!("=== Loop transformation result (Section VI-A) ===");
    println!("flux-diffusion loop, untuned: {base_flux:.3e} cycles");
    println!("flux-diffusion loop, tuned:   {tuned_flux:.3e} cycles");
    println!("speedup: {:.2}x (paper: 2.9x)", base_flux / tuned_flux);
}
