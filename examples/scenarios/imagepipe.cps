# A synthetic image-processing pipeline written in the .cps scenario
# language: decode -> per-tile filter chain -> encode, with a runtime
# memcpy in its own load module and a serial metadata-write section.
program imagepipe

proc fast_memcpy in libc.so nosource
  memory @ 0 cycles=800 misses=120
end

proc decode @ decode.c:10
  loop @ 12 trips=64
    memory @ 13 cycles=4000 misses=250
    call fast_memcpy @ 14
  end
end

proc blur @ filters.c:20
  loop @ 22 trips=256
    compute @ 23 flops=6000 eff=0.7
  end
end

proc sharpen @ filters.c:40
  loop @ 42 trips=256
    compute @ 43 flops=3000 eff=0.3
  end
end

proc filter_tile @ filters.c:5
  call blur @ 7
  call sharpen @ 8
end

proc encode @ encode.c:10
  loop @ 12 trips=64
    compute @ 13 flops=8000 eff=0.6 l1=40
  end
  # serial metadata write: does not shrink with more workers
  work @ 20 cycles=120000 fixed
end

proc main @ main.c:1
  call decode @ 3
  loop @ 5 trips=16
    call filter_tile @ 6
  end
  call encode @ 8
end

entry main
