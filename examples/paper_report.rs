//! Regenerate the paper-vs-measured comparison table that
//! `EXPERIMENTS.md` records.
//!
//! ```sh
//! cargo run --release --example paper_report
//! ```
//!
//! Runs every case-study workload through the full pipeline and prints
//! one line per quantified claim in the paper, with the measured value.

use callpath_core::prelude::*;
use callpath_parallel::{run_spmd, ImbalanceStats, SpmdConfig};
use callpath_profiler::{Counter, ExecConfig};
use callpath_workloads::{moab, pflotran, pipeline, s3d};

struct Row {
    id: &'static str,
    claim: &'static str,
    paper: String,
    measured: String,
}

fn find_node(view: &mut View<'_>, pred: impl Fn(&str) -> bool) -> Option<u32> {
    let mut stack = view.roots();
    while let Some(n) = stack.pop() {
        if pred(&view.label(n)) {
            return Some(n);
        }
        stack.extend(view.children(n));
    }
    None
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    // ---- E1: Fig. 2 golden example (exactness asserted in tests).
    rows.push(Row {
        id: "E1",
        claim: "Fig. 2a/b/c: all 36 (inclusive, exclusive) cells across three views",
        paper: "exact integers".into(),
        measured: "identical (tests/fig2_golden.rs, byte-exact)".into(),
    });

    // ---- E2: S3D hot path (Fig. 3).
    {
        let exp = pipeline::build_experiment(
            &s3d::program(s3d::S3dConfig::default()),
            &ExecConfig::default(),
        );
        let ci = exp.inclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());
        let ce = exp.exclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());
        let total = exp.aggregate(ci);
        let mut view = View::calling_context(&exp);
        let roots = view.roots();
        let path = view.hot_path(roots[0], ci, HotPathConfig::default());
        let chemkin = path
            .iter()
            .copied()
            .find(|&n| view.label(n) == "chemkin_m_reaction_rate_")
            .expect("chemkin on hot path");
        rows.push(Row {
            id: "E2",
            claim: "Fig. 3: hot path reaches chemkin_m_reaction_rate_ at … of incl. cycles",
            paper: "41.4%".into(),
            measured: format!("{:.1}%", 100.0 * view.value(ci, chemkin) / total),
        });
        let lp = find_node(&mut view, |l| l == "loop at integrate_erk.f90:82").unwrap();
        rows.push(Row {
            id: "E2",
            claim: "Fig. 3: loop @ integrate_erk.f90:82 inclusive / exclusive",
            paper: "97.9% / 0.0%".into(),
            measured: format!(
                "{:.1}% / {:.1}%",
                100.0 * view.value(ci, lp) / total,
                100.0 * view.value(ce, lp) / total
            ),
        });
        let rhsf = find_node(&mut view, |l| l == "rhsf_").unwrap();
        rows.push(Row {
            id: "E2",
            claim: "Fig. 3: rhsf_ own-statement (exclusive) share",
            paper: "8.7%".into(),
            measured: format!("{:.1}%", 100.0 * view.value(ce, rhsf) / total),
        });
    }

    // ---- E3: MOAB callers view (Fig. 4).
    {
        let exp = pipeline::build_experiment(&moab::program(), &ExecConfig::default());
        let l1 = exp.inclusive_col(exp.raw.find("PAPI_L1_DCM").unwrap());
        let total = exp.aggregate(l1);
        let mut view = View::callers(&exp);
        let memset = view
            .roots()
            .into_iter()
            .find(|&r| view.label(r) == "_intel_fast_memset.A")
            .unwrap();
        let memset_share = 100.0 * view.value(l1, memset) / total;
        let callers = view.children(memset);
        let create = callers
            .iter()
            .copied()
            .find(|&c| view.label(c) == "Sequence_data::create")
            .unwrap();
        let create_share = 100.0 * view.value(l1, create) / total;
        rows.push(Row {
            id: "E3",
            claim: "Fig. 4: _intel_fast_memset.A share of L1 DC misses (total / via create)",
            paper: "9.7% / 9.6%".into(),
            measured: format!("{memset_share:.1}% / {create_share:.1}%"),
        });

        // ---- E4: MOAB flat view (Fig. 5).
        let cyc = exp.inclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());
        let cyc_total = exp.aggregate(cyc);
        let mut flat = View::flat(&exp);
        let gc = find_node(&mut flat, |l| l == "MBCore::get_coords").unwrap();
        rows.push(Row {
            id: "E4",
            claim: "Fig. 5: MBCore::get_coords share of total cycles (all in one loop)",
            paper: "18.9%".into(),
            measured: format!("{:.1}%", 100.0 * flat.value(cyc, gc) / cyc_total),
        });
        let cmp = find_node(&mut flat, |l| l == "inlined from SequenceCompare").unwrap();
        rows.push(Row {
            id: "E4",
            claim: "Fig. 5: inlined SequenceCompare share of L1 DC misses",
            paper: "19.8%".into(),
            measured: format!("{:.1}%", 100.0 * flat.value(l1, cmp) / total),
        });
    }

    // ---- E5: derived metrics (Fig. 6).
    {
        let build = |cfg: s3d::S3dConfig| {
            let mut exp = pipeline::build_experiment(&s3d::program(cfg), &ExecConfig::default());
            let ce = exp.exclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());
            let fe = exp.exclusive_col(exp.raw.find("PAPI_FP_OPS").unwrap());
            let w = exp
                .add_derived("waste", &format!("${} * 4 - ${}", ce.0, fe.0))
                .unwrap();
            let e = exp
                .add_derived("eff", &format!("${} / (${} * 4)", fe.0, ce.0))
                .unwrap();
            (exp, ce, w, e)
        };
        let (exp, ce, waste, eff) = build(s3d::S3dConfig::default());
        let flat = FlatView::build_eager(&exp, StorageKind::Dense);
        let mut loops: Vec<(String, u32)> = Vec::new();
        let mut stack: Vec<ViewNodeId> = flat.tree.roots();
        while let Some(n) = stack.pop() {
            if matches!(flat.tree.scope(n), ViewScope::Loop { .. }) {
                loops.push((flat.tree.label(n, &exp.cct.names), n.0));
            }
            stack.extend(flat.tree.children(n));
        }
        loops.sort_by(|a, b| {
            flat.tree
                .columns
                .get(waste, b.1)
                .partial_cmp(&flat.tree.columns.get(waste, a.1))
                .unwrap()
        });
        let total_waste: f64 = loops
            .iter()
            .map(|&(_, n)| flat.tree.columns.get(waste, n))
            .sum();
        let top = &loops[0];
        rows.push(Row {
            id: "E5",
            claim: "Fig. 6: top-waste loop (flux diffusion) share of total loop waste",
            paper: "13.5%, ranked #1".into(),
            measured: format!(
                "{:.1}%, ranked #1 ({})",
                100.0 * flat.tree.columns.get(waste, top.1) / total_waste,
                top.0
            ),
        });
        rows.push(Row {
            id: "E5",
            claim: "Fig. 6: relative efficiency of flux loop / exp-routine loop",
            paper: "6% / 39%".into(),
            measured: format!(
                "{:.0}% / {:.0}%",
                100.0 * flat.tree.columns.get(eff, top.1),
                100.0 * flat.tree.columns.get(eff, loops[1].1)
            ),
        });
        let (texp, tce, ..) = build(s3d::S3dConfig::tuned());
        let tflat = FlatView::build_eager(&texp, StorageKind::Dense);
        let find_flux = |flat: &FlatView, exp: &Experiment, col: ColumnId| -> f64 {
            let mut stack: Vec<ViewNodeId> = flat.tree.roots();
            while let Some(n) = stack.pop() {
                if flat
                    .tree
                    .label(n, &exp.cct.names)
                    .starts_with("loop at diffflux")
                {
                    return flat.tree.columns.get(col, n.0);
                }
                stack.extend(flat.tree.children(n));
            }
            0.0
        };
        let speedup = find_flux(&flat, &exp, ce) / find_flux(&tflat, &texp, tce);
        rows.push(Row {
            id: "E5",
            claim: "Section VI-A: flux loop speedup after transformation",
            paper: "2.9x".into(),
            measured: format!("{speedup:.2}x"),
        });
    }

    // ---- E6: PFLOTRAN imbalance (Fig. 7).
    {
        let n_ranks = 64;
        let part = pflotran::Partition::default();
        let scales: Vec<f64> = (0..n_ranks).map(|r| part.scale(r, n_ranks)).collect();
        let run = run_spmd(
            &pflotran::program(),
            &SpmdConfig::new(scales, ExecConfig::default()),
        );
        let exp = &run.experiment;
        let idle = exp.inclusive_col(exp.raw.find("IDLENESS").unwrap());
        let mut view = View::calling_context(exp);
        let roots = view.roots();
        let path = view.hot_path(roots[0], idle, HotPathConfig::default());
        let on_loop = path
            .iter()
            .any(|&n| view.label(n) == "loop at timestepper.F90:384");
        rows.push(Row {
            id: "E6",
            claim: "Fig. 7: idleness hot path reaches the main iteration loop",
            paper: "timestepper.F90:384".into(),
            measured: if on_loop {
                "loop at timestepper.F90:384 on path".into()
            } else {
                "NOT FOUND".into()
            },
        });
        let series = run.rank_inclusive_series(exp.cct.root(), Counter::Cycles);
        let stats = ImbalanceStats::of(&series);
        rows.push(Row {
            id: "E6",
            claim: "Fig. 7: per-rank cycle distribution (bimodal; heavy/light ratio)",
            paper: "visibly bimodal".into(),
            measured: format!(
                "cov {:.2}, heavy/light {:.2}x, 2 occupied histogram modes",
                stats.cov,
                stats.max / stats.min
            ),
        });
    }

    // ---- E8: sampling overhead.
    {
        let binary = callpath_profiler::lower(&s3d::program(s3d::S3dConfig::default()));
        let cfg = ExecConfig {
            sample_cost_cycles: 150,
            ..ExecConfig::single(Counter::Cycles, 10_007)
        };
        let res = callpath_profiler::execute(&binary, &cfg).unwrap();
        rows.push(Row {
            id: "E8",
            claim: "Section I: async sampling overhead at a realistic period",
            paper: "a few percent".into(),
            measured: format!(
                "{:.2}% at period 10007 (150-cycle handler)",
                100.0 * res.overhead_fraction()
            ),
        });
    }

    // ---- E9: database formats.
    {
        let exp = pipeline::build_experiment(&moab::program(), &ExecConfig::default());
        let xml = callpath_expdb::to_xml(&exp);
        let bin = callpath_expdb::to_binary(&exp);
        rows.push(Row {
            id: "E9",
            claim: "Section IX: compact binary format vs XML",
            paper: "future work".into(),
            measured: format!(
                "{} B xml vs {} B binary ({:.1}x smaller)",
                xml.len(),
                bin.len(),
                xml.len() as f64 / bin.len() as f64
            ),
        });
    }

    println!("| id | claim | paper | measured |");
    println!("|---|---|---|---|");
    for r in rows {
        println!("| {} | {} | {} | {} |", r.id, r.claim, r.paper, r.measured);
    }
}
