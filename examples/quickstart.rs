//! Quickstart: profile a small program end-to-end and present it in all
//! three views.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The pipeline mirrors HPCToolkit's: describe a program → compile it to
//! a binary image → execute it on the simulated CPU with asynchronous
//! sampling (`hpcrun`) → recover static structure from the image
//! (`hpcstruct`) → correlate samples with structure into a canonical CCT
//! (`hpcprof`) → present (`hpcviewer`).

use callpath_core::prelude::*;
use callpath_profiler::{Costs, Counter, ExecConfig, Op, ProgramBuilder};
use callpath_viewer::{render, render_hot_path, RenderConfig};
use callpath_workloads::pipeline;

fn main() {
    // 1. Describe an application: main calls `compress` (loop-heavy) and
    //    `checksum`, and `compress` calls a shared `copy_block` helper.
    let mut b = ProgramBuilder::new("quickstart");
    let file = b.file("quick.c");
    let copy_block = b.declare("copy_block", file, 40);
    let compress = b.declare("compress", file, 10);
    let checksum = b.declare("checksum", file, 25);
    let main_p = b.declare("main", file, 1);
    b.body(copy_block, vec![Op::work(41, Costs::memory(2_000, 120))]);
    b.body(
        compress,
        vec![Op::looped(
            12,
            64,
            vec![
                Op::work(13, Costs::compute(6_000, 4.0, 0.6)),
                Op::call(14, copy_block),
            ],
        )],
    );
    b.body(
        checksum,
        vec![Op::looped(26, 32, vec![Op::work(27, Costs::cycles(1_500))])],
    );
    b.body(main_p, vec![Op::call(3, compress), Op::call(4, checksum)]);
    b.entry(main_p);
    let program = b.build();

    // 2-4. Measure and correlate.
    let exp = pipeline::build_experiment(&program, &ExecConfig::default());
    let cycles_incl = exp.inclusive_col(exp.raw.find(Counter::Cycles.papi_name()).unwrap());

    // 5. Present. Calling Context View: top-down costs in full context.
    let cfg = RenderConfig::default();
    let mut ccv = View::calling_context(&exp);
    println!(
        "=== {} ===\n{}",
        ViewKind::CallingContext.title(),
        render(&mut ccv, &cfg)
    );

    // Callers View: who is responsible for copy_block's cost?
    let mut callers = View::callers(&exp);
    println!(
        "=== {} ===\n{}",
        ViewKind::Callers.title(),
        render(&mut callers, &cfg)
    );

    // Flat View: static structure with loops.
    let mut flat = View::flat(&exp);
    println!(
        "=== {} ===\n{}",
        ViewKind::Flat.title(),
        render(&mut flat, &cfg)
    );

    // Hot path analysis from the program root (Eq. 3, t = 50%).
    let mut ccv = View::calling_context(&exp);
    let roots = ccv.roots();
    println!(
        "=== Hot path (cycles, t = 50%) ===\n{}",
        render_hot_path(
            &mut ccv,
            roots[0],
            cycles_incl,
            HotPathConfig::default(),
            &cfg
        )
    );
}
