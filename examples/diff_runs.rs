//! Scaling & differencing a pair of executions (Section VI-A, after the
//! paper's reference [3]).
//!
//! ```sh
//! cargo run --example diff_runs
//! ```
//!
//! Profiles the untuned and tuned S3D variants, merges the two call path
//! profiles into one experiment, derives a *scaling loss* column
//! (`base - tuned`), and hot-paths it: the analysis drills straight into
//! the flux-diffusion loop, the exact scope the paper's transformation
//! sped up 2.9×.

use callpath_core::prelude::*;
use callpath_profiler::ExecConfig;
use callpath_viewer::{render_hot_path, RenderConfig};
use callpath_workloads::{pipeline, s3d};

fn main() {
    let tuned = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::tuned()),
        &ExecConfig::default(),
    );
    let base = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );

    let analysis = scaling_loss(&tuned, "tuned", &base, "base", "PAPI_TOT_CYC", 1.0).expect("diff");
    let exp = &analysis.experiment;
    let root = exp.cct.root();
    println!(
        "base cycles:  {:.4e}",
        exp.columns.get(analysis.peer_incl, root.0)
    );
    println!(
        "tuned cycles: {:.4e}",
        exp.columns.get(analysis.base_incl, root.0)
    );
    println!(
        "total loss (base vs tuned): {:.4e} cycles ({:.1}% of the base run)\n",
        exp.columns.get(analysis.loss_incl, root.0),
        100.0 * exp.columns.get(analysis.loss_frac, root.0)
    );

    let mut view = View::calling_context(exp);
    let roots = view.roots();
    println!("=== hot path on the scaling-loss column ===");
    println!(
        "{}",
        render_hot_path(
            &mut view,
            roots[0],
            analysis.loss_incl,
            HotPathConfig::default(),
            &RenderConfig {
                columns: vec![analysis.loss_incl, analysis.base_incl, analysis.peer_incl],
                show_percent: false,
                ..Default::default()
            },
        )
    );
}
