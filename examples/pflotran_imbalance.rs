//! Fig. 7: identifying load imbalance in the PFLOTRAN-shaped SPMD
//! workload.
//!
//! ```sh
//! cargo run --example pflotran_imbalance
//! ```
//!
//! Runs 64 simulated MPI ranks with an uneven domain partition, sums
//! inclusive IDLENESS over all ranks, hot-paths into the main iteration
//! loop at `timestepper.F90:384`, and draws the paper's three per-process
//! charts: scattered inclusive cycles, the sorted series, and a histogram.

use callpath_core::prelude::*;
use callpath_parallel::{
    ascii_histogram, ascii_scatter, ascii_sorted, run_spmd, summarize_ranks, ImbalanceStats,
    SpmdConfig,
};
use callpath_profiler::{Counter, ExecConfig};
use callpath_viewer::{render_hot_path, RenderConfig};
use callpath_workloads::pflotran;

const RANKS: usize = 64;

fn main() {
    let part = pflotran::Partition::default();
    let scales: Vec<f64> = (0..RANKS).map(|r| part.scale(r, RANKS)).collect();
    let run = run_spmd(
        &pflotran::program(),
        &SpmdConfig::new(scales, ExecConfig::default()),
    );
    let exp = &run.experiment;

    // Sort by total inclusive idleness summed over all MPI processes and
    // perform hot path analysis (the paper's exact recipe).
    let idle = exp.inclusive_col(exp.raw.find("IDLENESS").unwrap());
    let cyc = exp.inclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());
    let mut ccv = View::calling_context(exp);
    let roots = ccv.roots();
    println!("=== Hot path on summed inclusive IDLENESS ===");
    println!(
        "{}",
        render_hot_path(
            &mut ccv,
            roots[0],
            idle,
            HotPathConfig::default(),
            &RenderConfig {
                columns: vec![idle, cyc],
                ..Default::default()
            },
        )
    );

    // Fig. 7's three charts for the whole-program node.
    let root = exp.cct.root();
    let series = run.rank_inclusive_series(root, Counter::Cycles);
    let stats = ImbalanceStats::of(&series);
    println!("=== Per-rank inclusive cycles (scattered) ===");
    print!("{}", ascii_scatter(&series, 64, 10));
    println!("\n=== Same, sorted ===");
    print!("{}", ascii_sorted(&series, 64, 10));
    println!("\n=== Histogram ===");
    print!("{}", ascii_histogram(&series, 8, 40));
    println!(
        "\nmean {:.3e}  min {:.3e}  max {:.3e}  stddev {:.3e}  cov {:.2}  imbalance {:.1}%",
        stats.mean,
        stats.min,
        stats.max,
        stats.std_dev,
        stats.cov,
        100.0 * stats.imbalance_factor
    );

    // Summary columns (mean/min/max/stddev across ranks), shown at the
    // top levels of the Calling Context View.
    let s = summarize_ranks(exp, &[Counter::Cycles], &run.rank_direct, 0);
    let mut exp2 = exp.clone();
    s.append_columns(&mut exp2, &[Stat::Mean, Stat::Min, Stat::Max, Stat::StdDev]);
    let cols: Vec<ColumnId> = (0..4)
        .map(|i| ColumnId(exp2.columns.column_count() as u32 - 4 + i))
        .collect();
    let mut view = View::calling_context(&exp2);
    println!("\n=== Summary statistics over {RANKS} ranks ===");
    println!(
        "{}",
        callpath_viewer::render(
            &mut view,
            &RenderConfig {
                columns: cols,
                expand: callpath_viewer::ExpandMode::Levels(3),
                show_percent: false,
                ..Default::default()
            },
        )
    );
}
