//! Figs. 4 & 5: analyzing the MOAB/mbperf-shaped mesh benchmark.
//!
//! ```sh
//! cargo run --example moab_mesh
//! ```
//!
//! 1. Callers View (Fig. 4): `_intel_fast_memset.A` — the compiler's
//!    replacement for `memset` — accounts for ≈9.7% of L1 data-cache
//!    misses, and expanding its callers shows ≈9.6% arrive through
//!    `Sequence_data::create`.
//! 2. Flat View (Fig. 5): `MBCore::get_coords` spends all of its ≈18.9%
//!    of cycles in one loop, within which a hierarchy of *inlined* code
//!    (red-black-tree find → search loop → SequenceCompare) is recovered
//!    from the binary and attributed fine-grained costs.

use callpath_core::prelude::*;
use callpath_profiler::ExecConfig;
use callpath_viewer::{render_subtree, RenderConfig};
use callpath_workloads::{moab, pipeline};

fn main() {
    let cfg = ExecConfig::default();
    let out = pipeline::run(&moab::program(), &cfg, StorageKind::Dense);
    let exp = out.experiment.clone();
    let l1_i = exp.inclusive_col(exp.raw.find("PAPI_L1_DCM").unwrap());
    let l1_e = exp.exclusive_col(exp.raw.find("PAPI_L1_DCM").unwrap());
    let cyc_i = exp.inclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());

    // --- Fig. 4: Callers View of the memset replacement, sorted by L1
    // misses.
    let mut callers = View::callers(&exp);
    let memset = callers
        .roots()
        .into_iter()
        .find(|&r| callers.label(r) == "_intel_fast_memset.A")
        .expect("memset entry");
    println!("=== Fig. 4: Callers View of _intel_fast_memset.A (L1 misses) ===");
    println!(
        "{}",
        render_subtree(
            &mut callers,
            memset,
            &RenderConfig {
                sort: Some(l1_i),
                columns: vec![l1_i, l1_e],
                ..Default::default()
            },
        )
    );

    // --- Fig. 5: Flat View zoomed into MBCore::get_coords.
    let mut flat = View::flat(&exp);
    let mut stack = flat.roots();
    let mut get_coords = None;
    while let Some(n) = stack.pop() {
        if flat.label(n) == "MBCore::get_coords" && !flat.is_call(n) {
            get_coords = Some(n);
            break;
        }
        stack.extend(flat.children(n));
    }
    println!("=== Fig. 5: Flat View of MBCore::get_coords (cycles + L1 misses) ===");
    println!(
        "{}",
        render_subtree(
            &mut flat,
            get_coords.expect("get_coords in flat view"),
            &RenderConfig {
                sort: Some(cyc_i),
                columns: vec![cyc_i, l1_i, l1_e],
                ..Default::default()
            },
        )
    );

    // --- Section IX ongoing work: metrics correlated with object code.
    // The memset replacement at instruction granularity, folded over both
    // of its calling contexts.
    let obj = callpath_prof::object_view(&out.binary, &out.exec.profile, "_intel_fast_memset.A")
        .expect("memset in the binary");
    println!("=== Object view (instruction-level metrics) ===");
    println!("{}", callpath_prof::render_object_view(&obj, &cfg.periods));
}
