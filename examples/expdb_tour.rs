//! Experiment databases: write the same experiment in the XML-like format
//! and the compact binary format, compare sizes, and reload.
//!
//! ```sh
//! cargo run --example expdb_tour
//! ```
//!
//! Section IX of the paper lists "replacing our XML format for profiles
//! with a more compact binary format" as future work; this example
//! demonstrates both formats and quantifies the size difference.

use callpath_core::prelude::*;
use callpath_expdb::{from_binary, from_xml, to_binary, to_xml};
use callpath_profiler::ExecConfig;
use callpath_workloads::{pipeline, s3d};

fn main() {
    let mut exp = pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    );
    // Databases carry derived metric definitions too.
    let cyc_e = exp.exclusive_col(exp.raw.find("PAPI_TOT_CYC").unwrap());
    let fp_e = exp.exclusive_col(exp.raw.find("PAPI_FP_OPS").unwrap());
    exp.add_derived("fp waste", &format!("${} * 4 - ${}", cyc_e.0, fp_e.0))
        .unwrap();

    let xml = to_xml(&exp);
    let bin = to_binary(&exp);
    println!(
        "experiment: {} CCT nodes, {} metrics, {} columns",
        exp.cct.len(),
        exp.raw.metric_count(),
        exp.columns.column_count()
    );
    println!("XML-like database:     {:>9} bytes", xml.len());
    println!("compact binary:        {:>9} bytes", bin.len());
    println!(
        "compression ratio:     {:>8.2}x",
        xml.len() as f64 / bin.len() as f64
    );

    // A taste of the XML.
    println!("\n--- first lines of the XML database ---");
    for line in xml.lines().take(12) {
        println!("{line}");
    }

    // Round-trip both and verify whole-program totals.
    let from_x = from_xml(&xml).expect("parse xml");
    let from_b = from_binary(&bin).expect("parse binary");
    let total = exp.columns.get(ColumnId(0), exp.cct.root().0);
    assert_eq!(from_x.columns.get(ColumnId(0), from_x.cct.root().0), total);
    assert_eq!(from_b.columns.get(ColumnId(0), from_b.cct.root().0), total);
    println!("\nround-trip verified: whole-program total {total:.3e} preserved in both formats");
    println!(
        "derived column '{}' restored with identical values",
        from_b.columns.descs().last().unwrap().name
    );
}
