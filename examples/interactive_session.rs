//! A scripted interactive viewer session: the hpcviewer UX driven by
//! commands, including the source pane (Section V).
//!
//! ```sh
//! cargo run --example interactive_session
//! ```
//!
//! The script follows the paper's Section VI-B workflow: start in the
//! Calling Context View, run hot path analysis, inspect the selection's
//! source; switch to the Callers View to see who is responsible; finish
//! in the Flat View and flatten to compare loops.

use callpath_core::prelude::*;
use callpath_core::source::SourceStore;
use callpath_profiler::{generate_listings, ExecConfig};
use callpath_viewer::{Command, Session};
use callpath_workloads::{pipeline, s3d};

fn step(session: &mut Session<'_>, what: &str, cmds: &[Command]) {
    println!("\n##### {what}");
    for c in cmds {
        if let Err(e) = session.apply(c.clone()) {
            println!("(rejected: {e})");
        }
    }
    println!("{}", session.render());
}

fn main() {
    let program = s3d::program(s3d::S3dConfig::default());
    let listings = generate_listings(&program);
    let exp = pipeline::build_experiment(&program, &ExecConfig::default());
    let store = SourceStore::from_texts(
        &exp.cct.names,
        listings.iter().map(|(n, t)| (n.as_str(), t.as_str())),
    );
    let mut s = Session::new(&exp, store);

    step(
        &mut s,
        "1. initial view: collapsed at the top (top-down discipline)",
        &[],
    );
    step(
        &mut s,
        "2. hot path analysis (flame button): expands and selects the bottleneck",
        &[Command::HotPath],
    );
    step(
        &mut s,
        "3. Callers View: who is responsible?",
        &[Command::SwitchView(ViewKind::Callers), Command::HotPath],
    );
    step(
        &mut s,
        "4. Flat View, flattened twice: loops side by side",
        &[
            Command::SwitchView(ViewKind::Flat),
            Command::Flatten,
            Command::Flatten,
            Command::Flatten,
        ],
    );
}
