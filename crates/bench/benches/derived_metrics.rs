//! E5 / Section V-D — derived metric formulas: parsing, single-node
//! evaluation, and whole-CCT column computation (the Fig. 6 waste
//! metric workflow).

use callpath_bench::{s3d_experiment, sized_experiment};
use callpath_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const WASTE: &str = "$1 * 4 - $3";
const EFFICIENCY: &str = "$3 / ($1 * 4)";
const GNARLY: &str = "max(sqrt($0 * $2), min($1, $3) ^ 1.5) / (1 + abs($0 - $2) / @0)";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("derived_metrics");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("parse_waste", |b| b.iter(|| Expr::parse(WASTE).unwrap()));
    group.bench_function("parse_gnarly", |b| b.iter(|| Expr::parse(GNARLY).unwrap()));

    let expr = Expr::parse(GNARLY).unwrap();
    let cols = [1234.5, 6789.0, 42.0, 99.9];
    let aggs = [1e9, 2e9, 3e6, 4e8];
    group.bench_function("eval_gnarly_once", |b| {
        b.iter(|| {
            expr.eval(&SliceContext {
                columns: &cols,
                aggregates: &aggs,
            })
        })
    });

    // Whole-column computation over CCTs of increasing size.
    for &size in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("add_derived_column", size),
            &size,
            |b, &size| {
                b.iter_batched(
                    || sized_experiment(size),
                    |mut exp| exp.add_derived("x", "$0 * 2 - $1").unwrap(),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }

    // The Fig. 6 workflow end to end: waste + efficiency on measured S3D.
    group.bench_function("fig6_waste_and_efficiency", |b| {
        b.iter_batched(
            s3d_experiment,
            |mut exp| {
                let w = exp.add_derived("waste", WASTE).unwrap();
                let e = exp.add_derived("eff", EFFICIENCY).unwrap();
                (w, e)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
