//! E9 / Section IX — XML vs compact binary experiment databases: encode
//! and decode throughput, plus a printed size table (the future-work
//! claim this repo implements).

use callpath_bench::{s3d_experiment, sized_experiment};
use callpath_expdb::{from_binary, from_xml, to_binary, to_xml};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn print_size_table() {
    println!("--- database size: XML vs compact binary ---");
    println!(
        "{:>10} {:>12} {:>12} {:>8}",
        "CCT nodes", "xml bytes", "bin bytes", "ratio"
    );
    for &size in &[1_000usize, 10_000, 100_000] {
        let exp = sized_experiment(size);
        let xml = to_xml(&exp);
        let bin = to_binary(&exp);
        println!(
            "{:>10} {:>12} {:>12} {:>8.2}",
            exp.cct.len(),
            xml.len(),
            bin.len(),
            xml.len() as f64 / bin.len() as f64
        );
    }
}

fn bench(c: &mut Criterion) {
    print_size_table();
    let mut group = c.benchmark_group("expdb_formats");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &size in &[10_000usize, 100_000] {
        let exp = sized_experiment(size);
        let xml = to_xml(&exp);
        let bin = to_binary(&exp);
        group.bench_with_input(BenchmarkId::new("xml_encode", size), &exp, |b, exp| {
            b.iter(|| to_xml(exp).len())
        });
        group.bench_with_input(BenchmarkId::new("bin_encode", size), &exp, |b, exp| {
            b.iter(|| to_binary(exp).len())
        });
        group.bench_with_input(BenchmarkId::new("xml_decode", size), &xml, |b, xml| {
            b.iter(|| from_xml(xml).unwrap().cct.len())
        });
        group.bench_with_input(BenchmarkId::new("bin_decode", size), &bin, |b, bin| {
            b.iter(|| from_binary(bin).unwrap().cct.len())
        });
    }

    // A real measured database too.
    let s3d = s3d_experiment();
    group.bench_function("s3d_bin_roundtrip", |b| {
        b.iter(|| from_binary(&to_binary(&s3d)).unwrap().cct.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
