//! E9 / Section IX — XML vs compact binary experiment databases: encode
//! and decode throughput, plus a printed size table (the future-work
//! claim this repo implements).
//!
//! Format v2 rows split "decode" into its three real costs: the lazy
//! open (TOC + topology only), open plus one faulted column (an
//! interactive first paint), and `decode_all` (a batch consumer).

use callpath_bench::{s3d_experiment, sized_experiment};
use callpath_core::prelude::ColumnId;
use callpath_expdb::{
    decode_all, from_binary, from_xml, open_lazy, to_binary, to_binary_v2, to_xml,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn print_size_table() {
    println!("--- database size: XML vs compact binary ---");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>8}",
        "CCT nodes", "xml bytes", "v1 bytes", "v2 bytes", "xml/v1"
    );
    for &size in &[1_000usize, 10_000, 100_000] {
        let exp = sized_experiment(size);
        let xml = to_xml(&exp);
        let bin = to_binary(&exp);
        let bin2 = to_binary_v2(&exp);
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>8.2}",
            exp.cct.len(),
            xml.len(),
            bin.len(),
            bin2.len(),
            xml.len() as f64 / bin.len() as f64
        );
    }
}

fn bench(c: &mut Criterion) {
    print_size_table();
    let mut group = c.benchmark_group("expdb_formats");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &size in &[10_000usize, 100_000] {
        let exp = sized_experiment(size);
        let xml = to_xml(&exp);
        let bin = to_binary(&exp);
        let bin2 = to_binary_v2(&exp);
        group.bench_with_input(BenchmarkId::new("xml_encode", size), &exp, |b, exp| {
            b.iter(|| to_xml(exp).len())
        });
        group.bench_with_input(BenchmarkId::new("bin_encode", size), &exp, |b, exp| {
            b.iter(|| to_binary(exp).len())
        });
        group.bench_with_input(BenchmarkId::new("bin2_encode", size), &exp, |b, exp| {
            b.iter(|| to_binary_v2(exp).len())
        });
        group.bench_with_input(BenchmarkId::new("xml_decode", size), &xml, |b, xml| {
            b.iter(|| from_xml(xml).unwrap().cct.len())
        });
        group.bench_with_input(BenchmarkId::new("bin_decode", size), &bin, |b, bin| {
            b.iter(|| from_binary(bin).unwrap().cct.len())
        });
        group.bench_with_input(
            BenchmarkId::new("bin2_decode_eager", size),
            &bin2,
            |b, bin2| b.iter(|| from_binary(bin2).unwrap().cct.len()),
        );
        group.bench_with_input(
            BenchmarkId::new("bin2_open_lazy", size),
            &bin2,
            |b, bin2| b.iter(|| open_lazy(bin2.clone()).unwrap().cct.len()),
        );
        group.bench_with_input(
            BenchmarkId::new("bin2_open_plus_one_column", size),
            &bin2,
            |b, bin2| {
                b.iter(|| {
                    let exp = open_lazy(bin2.clone()).unwrap();
                    exp.columns.get(ColumnId(0), 1)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bin2_decode_all", size),
            &bin2,
            |b, bin2| {
                b.iter(|| {
                    let exp = open_lazy(bin2.clone()).unwrap();
                    decode_all(&exp, 0);
                    exp.columns.materialized_columns()
                })
            },
        );
    }

    // A real measured database too.
    let s3d = s3d_experiment();
    group.bench_function("s3d_bin_roundtrip", |b| {
        b.iter(|| from_binary(&to_binary(&s3d)).unwrap().cct.len())
    });
    group.bench_function("s3d_bin2_roundtrip", |b| {
        b.iter(|| from_binary(&to_binary_v2(&s3d)).unwrap().cct.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
