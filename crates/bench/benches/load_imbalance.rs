//! E6 / Section VI-C and Fig. 7 — SPMD load-imbalance identification:
//! full-pipeline cost per rank count, and the post-mortem summarization.
//!
//! Prints the Fig. 7 statistics per rank count before timing.

use callpath_core::prelude::*;
use callpath_parallel::{run_spmd, summarize_ranks, ImbalanceStats, SpmdConfig};
use callpath_profiler::{Counter, ExecConfig};
use callpath_workloads::pflotran;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn config(n_ranks: usize) -> SpmdConfig {
    let part = pflotran::Partition::default();
    let scales: Vec<f64> = (0..n_ranks).map(|r| part.scale(r, n_ranks)).collect();
    SpmdConfig::new(scales, ExecConfig::default())
}

fn print_imbalance_table() {
    println!("--- Fig. 7 per-rank statistics ---");
    println!(
        "{:>6} {:>12} {:>12} {:>8} {:>12}",
        "ranks", "mean cyc", "max cyc", "cov", "total idle"
    );
    for &n in &[8usize, 32, 64] {
        let run = run_spmd(&pflotran::program(), &config(n));
        let root = run.experiment.cct.root();
        let series = run.rank_inclusive_series(root, Counter::Cycles);
        let stats = ImbalanceStats::of(&series);
        let idle_col = run
            .experiment
            .inclusive_col(run.experiment.raw.find("IDLENESS").unwrap());
        let idle = run.experiment.columns.get(idle_col, root.0);
        println!(
            "{:>6} {:>12.3e} {:>12.3e} {:>8.3} {:>12.3e}",
            n, stats.mean, stats.max, stats.cov, idle
        );
    }
}

fn bench(c: &mut Criterion) {
    print_imbalance_table();
    let mut group = c.benchmark_group("load_imbalance");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for &n in &[8usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("spmd_pipeline", n), &n, |b, &n| {
            b.iter(|| run_spmd(&pflotran::program(), &config(n)))
        });
    }

    // Summarization alone, decoupled from simulation.
    let run = run_spmd(&pflotran::program(), &config(64));
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("summarize_64_ranks_threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    summarize_ranks(
                        &run.experiment,
                        &[Counter::Cycles, Counter::Idleness],
                        &run.rank_direct,
                        threads,
                    )
                })
            },
        );
    }

    // Hot path on the summed idleness metric (the paper's diagnosis step).
    let idle = run
        .experiment
        .inclusive_col(run.experiment.raw.find("IDLENESS").unwrap());
    group.bench_function("hot_path_on_idleness", |b| {
        b.iter(|| {
            let mut view = View::calling_context(&run.experiment);
            let roots = view.roots();
            view.hot_path(roots[0], idle, HotPathConfig::default())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
