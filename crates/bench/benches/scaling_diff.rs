//! Section VI-A extension — scale-and-difference analysis: cost of
//! merging two experiments by structural name alignment and deriving the
//! scaling-loss columns.

use callpath_bench::sized_experiment;
use callpath_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_diff");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &size in &[1_000usize, 10_000, 100_000] {
        // Two same-shaped runs (the common case: same binary, different
        // configuration), so alignment exercises the full tree.
        let a = sized_experiment(size);
        let b = sized_experiment(size);
        group.bench_with_input(
            BenchmarkId::new("merge_experiments", size),
            &(&a, &b),
            |bch, (a, b)| {
                bch.iter(|| {
                    merge_experiments(a, "A", b, "B", StorageKind::Dense)
                        .cct
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scaling_loss_full", size),
            &(&a, &b),
            |bch, (a, b)| {
                bch.iter(|| {
                    scaling_loss(a, "A", b, "B", "cycles", 1.0)
                        .unwrap()
                        .experiment
                        .cct
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
