//! E1 / Section III — constructing the three complementary views from one
//! canonical CCT, across CCT sizes.
//!
//! The claim under test: all three views derive from the same canonical
//! CCT with costs that scale near-linearly in CCT size, so multi-view
//! presentation is affordable even for large profiles.

use callpath_bench::sized_experiment;
use callpath_core::prelude::*;
use callpath_prof::{Correlator, ParallelCorrelator};
use callpath_profiler::{execute, lower, Counter, ExecConfig, RawProfile};
use callpath_workloads::generator::{random_program, GenConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_construction");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &size in &[1_000usize, 10_000, 100_000] {
        let exp = sized_experiment(size);
        group.bench_with_input(BenchmarkId::new("attribute_all", size), &exp, |b, exp| {
            b.iter(|| {
                callpath_core::attribution::attribute_all(&exp.cct, &exp.raw, StorageKind::Dense)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("callers_view_lazy", size),
            &exp,
            |b, exp| b.iter(|| CallersView::build(exp, StorageKind::Dense)),
        );
        group.bench_with_input(BenchmarkId::new("flat_view_shell", size), &exp, |b, exp| {
            b.iter(|| FlatView::build(exp, StorageKind::Dense))
        });
        group.bench_with_input(BenchmarkId::new("flat_view_eager", size), &exp, |b, exp| {
            b.iter(|| FlatView::build_eager(exp, StorageKind::Dense))
        });
    }

    // Profile ingestion: one correlator fed rank-by-rank vs the sharded
    // parallel correlator (identical output, see callpath-prof tests).
    let program = random_program(GenConfig {
        n_procs: 60,
        ..GenConfig::default()
    });
    let bin = lower(&program);
    let base = ExecConfig::single(Counter::Cycles, 509);
    let structure = callpath_structure::recover(&bin).unwrap();
    for &n_ranks in &[16usize, 64] {
        let profiles: Vec<RawProfile> = (0..n_ranks)
            .map(|r| {
                let cfg = ExecConfig {
                    work_scale: 1.0 + (r % 4) as f64 * 0.5,
                    jitter_seed: Some(7 + r as u64),
                    ..base.clone()
                };
                execute(&bin, &cfg).unwrap().profile
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("ingest_sequential", n_ranks),
            &profiles,
            |b, profiles| {
                b.iter(|| {
                    let mut corr = Correlator::new(&structure, base.periods);
                    for p in profiles {
                        corr.add(p);
                    }
                    corr.finish(StorageKind::Dense).cct.len()
                })
            },
        );
        for threads in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("ingest_parallel_t{threads}"), n_ranks),
                &profiles,
                |b, profiles| {
                    b.iter(|| {
                        let (exp, _) = ParallelCorrelator::new(&structure, base.periods)
                            .with_threads(threads)
                            .correlate(profiles, StorageKind::Dense);
                        exp.cct.len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
