//! E1 / Section III — constructing the three complementary views from one
//! canonical CCT, across CCT sizes.
//!
//! The claim under test: all three views derive from the same canonical
//! CCT with costs that scale near-linearly in CCT size, so multi-view
//! presentation is affordable even for large profiles.

use callpath_bench::sized_experiment;
use callpath_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_construction");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &size in &[1_000usize, 10_000, 100_000] {
        let exp = sized_experiment(size);
        group.bench_with_input(
            BenchmarkId::new("attribute_all", size),
            &exp,
            |b, exp| {
                b.iter(|| {
                    callpath_core::attribution::attribute_all(
                        &exp.cct,
                        &exp.raw,
                        StorageKind::Dense,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("callers_view_lazy", size),
            &exp,
            |b, exp| b.iter(|| CallersView::build(exp, StorageKind::Dense)),
        );
        group.bench_with_input(BenchmarkId::new("flat_view", size), &exp, |b, exp| {
            b.iter(|| FlatView::build(exp, StorageKind::Dense))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
