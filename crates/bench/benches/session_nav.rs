//! Interactive navigation latency on the S3D workload: the tentpole's
//! read-path claims, measured end to end through [`Session`].
//!
//! * `expand_all_cold` — build a fresh session and expand every row to a
//!   fixed point (lazy Flat-View fills + first-time sorts included);
//! * `resort_warm` — flip the sort column on a fully expanded session
//!   (served by the generation-stamped sort caches: lookups, no sorts);
//! * `hot_path_walk` — hot-path analysis from the top plus a re-render.

use callpath_bench::s3d_experiment;
use callpath_core::prelude::*;
use callpath_core::source::SourceStore;
use callpath_viewer::{Command, Session};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn expand_all(session: &mut Session<'_>) {
    loop {
        let (_, rows) = session.render_numbered();
        let before = rows.len();
        for n in rows {
            session.apply(Command::Expand(n)).ok();
        }
        let (_, rows) = session.render_numbered();
        if rows.len() == before {
            break;
        }
    }
}

fn bench(c: &mut Criterion) {
    let exp = s3d_experiment();
    let mut group = c.benchmark_group("session_nav");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("expand_all_cold", |b| {
        b.iter(|| {
            let mut s = Session::new(&exp, SourceStore::new());
            expand_all(&mut s);
            s.render().len()
        })
    });

    group.bench_function("resort_warm", |b| {
        let mut s = Session::new(&exp, SourceStore::new());
        expand_all(&mut s);
        // Warm both orders so the loop below is pure steady state.
        s.apply(Command::SortBy(ColumnId(1))).unwrap();
        s.render();
        s.apply(Command::SortBy(ColumnId(0))).unwrap();
        s.render();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            s.apply(Command::SortBy(ColumnId(u32::from(flip)))).unwrap();
            s.render().len()
        })
    });

    group.bench_function("hot_path_walk", |b| {
        let mut s = Session::new(&exp, SourceStore::new());
        b.iter(|| {
            s.apply(Command::HotPath).unwrap();
            s.render().len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
