//! Ablation / Section V-A — sparse vs dense metric storage.
//!
//! "Performance data is sparse": most scopes have zero for most metrics.
//! This bench measures attribution and point-lookup under both storage
//! flavors and prints their heap footprints on a sparse profile.

use callpath_bench::sized_experiment;
use callpath_core::attribution::attribute;
use callpath_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn print_footprints() {
    println!("--- metric storage footprint (one column, 100k-node CCT) ---");
    let exp = sized_experiment(100_000);
    for kind in [StorageKind::Dense, StorageKind::Sparse, StorageKind::Csr] {
        let attr = attribute(&exp.cct, &exp.raw, MetricId(0), kind);
        println!(
            "{:?}: inclusive {} bytes ({} nonzero), exclusive {} bytes",
            kind,
            attr.inclusive.heap_bytes(),
            attr.inclusive.nonzero_count(),
            attr.exclusive.heap_bytes(),
        );
    }
}

fn bench(c: &mut Criterion) {
    print_footprints();
    let mut group = c.benchmark_group("metric_storage");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &size in &[10_000usize, 100_000] {
        let exp = sized_experiment(size);
        for kind in [StorageKind::Dense, StorageKind::Sparse, StorageKind::Csr] {
            group.bench_with_input(
                BenchmarkId::new(format!("attribute_{kind:?}"), size),
                &exp,
                |b, exp| b.iter(|| attribute(&exp.cct, &exp.raw, MetricId(0), kind)),
            );
            // Point lookups: linear scan (Sparse) vs direct index (Dense)
            // vs binary search (Csr).
            let attr = attribute(&exp.cct, &exp.raw, MetricId(0), kind);
            group.bench_with_input(
                BenchmarkId::new(format!("lookup_{kind:?}"), size),
                &attr,
                |b, attr| {
                    b.iter(|| {
                        let mut acc = 0.0;
                        for i in (0..size as u32).step_by(7) {
                            acc += attr.inclusive.get(i);
                        }
                        acc
                    })
                },
            );
        }
        // Batched ingestion: per-sample scalar `add` vs one `add_costs`
        // sweep in ascending node order (the CSR append fast path).
        let entries: Vec<(NodeId, f64)> = (0..size as u32)
            .step_by(3)
            .map(|i| (NodeId(i), 1.5))
            .collect();
        for kind in [StorageKind::Dense, StorageKind::Sparse, StorageKind::Csr] {
            group.bench_with_input(
                BenchmarkId::new(format!("add_costs_batched_{kind:?}"), size),
                &entries,
                |b, entries| {
                    b.iter(|| {
                        let mut raw = RawMetrics::new(kind);
                        let m = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
                        raw.add_costs(m, entries);
                        raw.generation()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
