//! E7 ablations / Sections V-B and VII — renderer throughput: tabular
//! tree rendering across sizes, fused vs separate call-site lines, and
//! with/without percentage cells.
//!
//! Prints the fused-vs-separate row-count table (the paper: fusing
//! "shortens the length of the call chains in hpcviewer by half").

use callpath_bench::{sized_experiment, CYC_I};
use callpath_core::prelude::*;
use callpath_viewer::{render, ExpandMode, RenderConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn print_fused_table() {
    println!("--- fused vs separate call-site/callee lines ---");
    let exp = sized_experiment(10_000);
    for fused in [true, false] {
        let mut view = View::calling_context(&exp);
        let text = render(
            &mut view,
            &RenderConfig {
                fused,
                max_children: usize::MAX,
                max_depth: 512,
                ..Default::default()
            },
        );
        println!("fused={fused}: {} rendered rows", text.lines().count());
    }
}

fn bench(c: &mut Criterion) {
    print_fused_table();
    let mut group = c.benchmark_group("render_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &size in &[1_000usize, 10_000, 100_000] {
        let exp = sized_experiment(size);
        group.bench_with_input(BenchmarkId::new("full_ccv", size), &exp, |b, exp| {
            b.iter(|| {
                let mut view = View::calling_context(exp);
                render(
                    &mut view,
                    &RenderConfig {
                        max_children: usize::MAX,
                        max_depth: 512,
                        ..Default::default()
                    },
                )
                .len()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("top_three_levels", size),
            &exp,
            |b, exp| {
                b.iter(|| {
                    let mut view = View::calling_context(exp);
                    render(
                        &mut view,
                        &RenderConfig {
                            expand: ExpandMode::Levels(3),
                            ..Default::default()
                        },
                    )
                    .len()
                })
            },
        );
    }

    // Sorting cost in isolation.
    let exp = sized_experiment(100_000);
    group.bench_function("sort_100k_siblings", |b| {
        let view = View::calling_context(&exp);
        let mut nodes: Vec<u32> = (0..100_000u32).collect();
        b.iter(|| {
            sort_by_column(&view, &mut nodes, CYC_I);
            nodes[0]
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
