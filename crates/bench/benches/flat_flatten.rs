//! E4 / Section III-C — Flat View construction and the flattening
//! operation (Figs. 5 & 6).

use callpath_bench::{moab_experiment, sized_experiment};
use callpath_core::flat::flatten;
use callpath_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_flatten");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &size in &[1_000usize, 10_000, 100_000] {
        let exp = sized_experiment(size);
        group.bench_with_input(BenchmarkId::new("build_shell", size), &exp, |b, exp| {
            b.iter(|| FlatView::build(exp, StorageKind::Dense))
        });
        group.bench_with_input(BenchmarkId::new("build_eager", size), &exp, |b, exp| {
            b.iter(|| FlatView::build_eager(exp, StorageKind::Dense))
        });
        let flat = FlatView::build_eager(&exp, StorageKind::Dense);
        group.bench_with_input(
            BenchmarkId::new("flatten_to_leaves", size),
            &flat,
            |b, flat| {
                let roots = flat.tree.roots();
                b.iter(|| flatten(&flat.tree, &roots, 64).len())
            },
        );
    }

    // The Fig. 5 workflow: build the MOAB flat view (with its recovered
    // inline hierarchy) and strip three layers.
    let moab = moab_experiment();
    group.bench_function("fig5_moab_flat_and_flatten", |b| {
        b.iter(|| {
            let mut flat = FlatView::build(&moab, StorageKind::Dense);
            let roots = flat.tree.roots();
            flat.flatten(&moab, &roots, 3).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
