//! E2 / Section V-C — hot path analysis (Eq. 3): cost of the automatic
//! drill-down, across tree sizes and thresholds.
//!
//! The paper's pitch is that hot-path expansion replaces "tediously
//! opening each link along a deep chain" with one instantaneous action;
//! this bench quantifies "instantaneous" and sweeps the threshold `t`
//! (the preference-dialog knob) to show cost is threshold-insensitive.

use callpath_bench::{s3d_experiment, sized_experiment, CYC_I};
use callpath_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    // Fig. 3 scenario: hot path over the measured S3D CCT.
    let s3d = s3d_experiment();
    group.bench_function("s3d_calling_context", |b| {
        b.iter(|| {
            let mut view = View::calling_context(&s3d);
            let roots = view.roots();
            view.hot_path(roots[0], CYC_I, HotPathConfig::default())
        })
    });

    // Threshold sweep on a large random CCT.
    let big = sized_experiment(100_000);
    for t in [0.3, 0.5, 0.7] {
        group.bench_with_input(
            BenchmarkId::new("threshold", format!("{t}")),
            &t,
            |b, &t| {
                b.iter(|| {
                    let mut view = View::calling_context(&big);
                    let roots = view.roots();
                    view.hot_path(roots[0], CYC_I, HotPathConfig::with_threshold(t))
                })
            },
        );
    }

    // Hot path through the *lazy* Callers View (materializes children on
    // the way down — the paper's combination of V-C with VII).
    group.bench_function("lazy_callers_drilldown", |b| {
        b.iter(|| {
            let mut view = View::callers(&big);
            let mut roots = view.roots();
            sort_by_column(&view, &mut roots, CYC_I);
            view.hot_path(roots[0], CYC_I, HotPathConfig::default())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
