//! E8 / Section I — "using asynchronous statistical sampling, it is
//! possible to collect accurate and precise call path profiles for only a
//! few percent overhead".
//!
//! Sweeps the sampling period on the S3D workload and prints, per period:
//! tool overhead as a fraction of application cycles, number of samples,
//! and the attribution error versus ground truth. Then times `execute`
//! itself (simulator throughput) at each period.

use callpath_core::prelude::*;
use callpath_prof::correlate;
use callpath_profiler::{execute, lower, Counter, ExecConfig};
use callpath_structure::recover;
use callpath_workloads::s3d;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const PERIODS: [u64; 4] = [101, 1_009, 10_007, 100_003];

fn print_overhead_table() {
    let binary = lower(&s3d::program(s3d::S3dConfig::default()));
    let structure = recover(&binary).unwrap();
    println!("--- sampling overhead & accuracy vs period (S3D) ---");
    println!(
        "{:>9} {:>10} {:>11} {:>12}",
        "period", "samples", "overhead%", "root error%"
    );
    for &p in &PERIODS {
        let cfg = ExecConfig {
            sample_cost_cycles: 150, // a realistic signal-handler cost
            ..ExecConfig::single(Counter::Cycles, p)
        };
        let res = execute(&binary, &cfg).unwrap();
        let exp = correlate(&structure, &res.profile, cfg.periods, StorageKind::Dense);
        let measured = exp.columns.get(ColumnId(0), exp.cct.root().0);
        let truth = res.totals[Counter::Cycles] as f64;
        println!(
            "{:>9} {:>10} {:>10.2}% {:>11.3}%",
            p,
            res.samples_taken,
            100.0 * res.overhead_fraction(),
            100.0 * (measured - truth).abs() / truth
        );
    }
}

fn bench(c: &mut Criterion) {
    print_overhead_table();
    let binary = lower(&s3d::program(s3d::S3dConfig::default()));
    let mut group = c.benchmark_group("sampling_overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &p in &PERIODS {
        group.bench_with_input(BenchmarkId::new("execute_period", p), &p, |b, &p| {
            let cfg = ExecConfig::single(Counter::Cycles, p);
            b.iter(|| execute(&binary, &cfg).unwrap().samples_taken)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
