//! E3 + E7 / Sections III-B and VII — the Callers View and its lazy
//! construction ablation.
//!
//! Paper claim: "the Callers View is constructed dynamically [...] we
//! store and process data only when needed", ensuring "scalability for
//! both execution time and memory consumption". The bench compares
//! time-to-first-view (lazy top-level only) against full eager
//! construction, and measures the marginal cost of expanding one entry.
//! A side table of materialized node counts and heap bytes is printed
//! once at startup.

use callpath_bench::{moab_experiment, sized_experiment};
use callpath_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn print_footprints() {
    println!("--- lazy vs eager callers-view footprint ---");
    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>14}",
        "CCT nodes", "lazy nodes", "lazy bytes", "eager nodes", "eager bytes"
    );
    for &size in &[1_000usize, 10_000, 100_000] {
        let exp = sized_experiment(size);
        let lazy = CallersView::build(&exp, StorageKind::Dense);
        let eager = CallersView::build_eager(&exp, StorageKind::Dense);
        println!(
            "{:>10} {:>12} {:>14} {:>12} {:>14}",
            exp.cct.len(),
            lazy.tree.len(),
            lazy.tree.heap_bytes(),
            eager.tree.len(),
            eager.tree.heap_bytes()
        );
    }
}

fn bench(c: &mut Criterion) {
    print_footprints();
    let mut group = c.benchmark_group("callers_lazy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &size in &[1_000usize, 10_000, 100_000] {
        let exp = sized_experiment(size);
        group.bench_with_input(BenchmarkId::new("lazy_build", size), &exp, |b, exp| {
            b.iter(|| CallersView::build(exp, StorageKind::Dense))
        });
        group.bench_with_input(BenchmarkId::new("eager_build", size), &exp, |b, exp| {
            b.iter(|| CallersView::build_eager(exp, StorageKind::Dense))
        });
        group.bench_with_input(
            BenchmarkId::new("expand_one_entry", size),
            &exp,
            |b, exp| {
                b.iter(|| {
                    let mut view = CallersView::build(exp, StorageKind::Dense);
                    let roots = view.tree.roots();
                    view.expand(exp, roots[0]);
                    view.tree.len()
                })
            },
        );
        // Repeated-query path: refreshing an already-built view is served
        // from the per-callee memo cache (no re-aggregation) as long as
        // the raw metrics haven't mutated.
        group.bench_with_input(
            BenchmarkId::new("refresh_memoized", size),
            &exp,
            |b, exp| {
                let mut view = CallersView::build(exp, StorageKind::Dense);
                b.iter(|| {
                    view.refresh(exp);
                    view.cache_stats().0
                })
            },
        );
    }

    // The Fig. 4 workflow itself: find memset's callers.
    let moab = moab_experiment();
    group.bench_function("fig4_memset_callers", |b| {
        b.iter(|| {
            let mut view = View::callers(&moab);
            let memset = view
                .roots()
                .into_iter()
                .find(|&r| view.label(r) == "_intel_fast_memset.A")
                .unwrap();
            view.children(memset).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
