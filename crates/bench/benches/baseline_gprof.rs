//! E10 / Section VIII — cost comparison against the gprof-style baseline:
//! flat-profile analysis vs full CCT correlation on the same raw data.
//!
//! The interesting output is the *ratio*: how much extra analysis time
//! the calling-context views cost over a flat profile (the answer the
//! paper implies is "little enough to be irrelevant").

use callpath_baseline::analyze;
use callpath_core::prelude::*;
use callpath_prof::correlate;
use callpath_profiler::{execute, lower, ExecConfig};
use callpath_structure::recover;
use callpath_workloads::{moab, s3d};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_gprof");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let workloads: Vec<(&str, callpath_profiler::Program)> = vec![
        ("s3d", s3d::program(s3d::S3dConfig::default())),
        ("moab", moab::program()),
    ];
    for (name, program) in workloads {
        let binary = lower(&program);
        let cfg = ExecConfig::default();
        let res = execute(&binary, &cfg).unwrap();
        let structure = recover(&binary).unwrap();

        group.bench_with_input(
            BenchmarkId::new("gprof_flat_analysis", name),
            &(),
            |b, _| b.iter(|| analyze(&binary, &res, 1_009).flat.len()),
        );
        group.bench_with_input(BenchmarkId::new("cct_correlation", name), &(), |b, _| {
            b.iter(|| {
                correlate(&structure, &res.profile, cfg.periods, StorageKind::Dense)
                    .cct
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("structure_recovery", name), &(), |b, _| {
            b.iter(|| recover(&binary).unwrap().scope_count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
