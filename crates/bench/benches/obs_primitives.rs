//! Cost of the observability primitives themselves: span open/close,
//! counter bump, histogram observe, and a snapshot of a populated
//! registry. The per-call numbers bound what instrumenting a hot loop
//! would cost; with the `enabled` feature off every primitive is an
//! empty inline stub, which the obs-overhead smoke test
//! (`tests/obs_overhead.rs`) verifies end to end.

use callpath_obs as obs;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    obs::reset();
    group.bench_function("span_open_close", |b| {
        b.iter(|| {
            let _g = obs::span("bench.span");
        })
    });

    group.bench_function("nested_span", |b| {
        b.iter(|| {
            let _outer = obs::span("bench.outer");
            let _inner = obs::span("bench.inner");
        })
    });

    group.bench_function("counter_bump", |b| {
        b.iter(|| obs::count("bench.counter", 1))
    });

    group.bench_function("lazy_counter_bump", |b| {
        static C: obs::LazyCounter = obs::LazyCounter::new("bench.lazy_counter");
        b.iter(|| C.add(1))
    });

    group.bench_function("lazy_span_open_close", |b| {
        static S: obs::LazySpan = obs::LazySpan::new("bench.lazy_span");
        b.iter(|| {
            let _g = S.open();
        })
    });

    group.bench_function("histogram_observe", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            obs::observe("bench.hist", x >> 32);
        })
    });

    group.bench_function("snapshot", |b| b.iter(obs::snapshot));

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
