//! # callpath-bench
//!
//! Shared fixtures for the Criterion benchmark harness. Each bench target
//! under `benches/` regenerates one of the paper's figures or claims; see
//! `EXPERIMENTS.md` at the workspace root for the per-experiment index.

use callpath_core::prelude::*;
use callpath_profiler::ExecConfig;
use callpath_workloads::{generator, moab, pipeline, s3d};

/// The standard S3D experiment (Figs. 3 & 6).
pub fn s3d_experiment() -> Experiment {
    pipeline::build_experiment(
        &s3d::program(s3d::S3dConfig::default()),
        &ExecConfig::default(),
    )
}

/// The standard MOAB experiment (Figs. 4 & 5).
pub fn moab_experiment() -> Experiment {
    pipeline::build_experiment(&moab::program(), &ExecConfig::default())
}

/// Random experiments of the sizes the scalability benches sweep.
pub fn sized_experiment(nodes: usize) -> Experiment {
    generator::random_experiment(0xBEEF ^ nodes as u64, nodes, (nodes / 50).clamp(10, 400))
}

/// Column 0 is always the first metric's inclusive projection.
pub const CYC_I: ColumnId = ColumnId(0);
