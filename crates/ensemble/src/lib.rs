#![warn(missing_docs)]
//! # callpath-ensemble
//!
//! Deterministic N-way **union supergraph** over many profile runs,
//! with cross-run statistics — the ensemble path of DESIGN.md §15.
//!
//! Given N runs (each a CCT plus sparse per-metric costs), this crate
//! builds one union CCT containing every calling context that appears
//! in any run, remaps every run's costs into union node ids, computes
//! per-node cross-run statistics (mean / min / max / stddev, one
//! column each per base metric), and serializes the whole thing as a
//! `.cpens` container ([`callpath_expdb::ens`]) that reopens
//! topology-only in milliseconds.
//!
//! ## Determinism
//!
//! The union is **byte-identical** regardless of worker count and of
//! the order runs are supplied in:
//!
//! * runs are first sorted into a *canonical order* by `(label,
//!   content fingerprint)` — a pure function of run content;
//! * the canonical sequence is split into one contiguous group per
//!   worker, each group folded left-to-right into a **fresh empty
//!   shard** (so no input's stored name-table order leaks into the
//!   result), and the groups merged pairwise on the worker pool
//!   ([`reduce_pairwise`] preserves left-to-right operand order), which
//!   makes the parallel reduction equal to the sequential fold —
//!   same node ids, same name table, bit for bit;
//! * statistics fold runs in canonical order per node, over fixed-size
//!   node tiles whose boundaries do not depend on the worker count, so
//!   every f64 accumulation order is fixed too.
//!
//! The property tests in `tests/ensemble_properties.rs` pin all of
//! this, and `tests/ensemble_smoke.rs` measures the 1,000-run build
//! and cold open for `BENCH_ensemble.json`.

use callpath_core::prelude::*;
use callpath_expdb::ens::{Directory, EnsembleRun, STAT_NAMES};
use callpath_expdb::model::{DbError, DbMetric, DbModel};
use callpath_obs as obs;

/// One run's raw material: a CCT and sparse direct costs per metric,
/// in the run's own node ids.
#[derive(Debug, Clone)]
pub struct RunData {
    /// Display label (file name, rank, trial id, ...). Sorts first in
    /// the canonical order; need not be unique.
    pub label: String,
    /// The run's calling context tree.
    pub cct: Cct,
    /// Metric descriptors, index = local metric id.
    pub metrics: Vec<MetricDesc>,
    /// Per metric: sparse `(local node, value)`, ascending by node.
    pub costs: Vec<Vec<(u32, f64)>>,
}

impl RunData {
    /// Build from a database model (the synthetic-workload path):
    /// validates topology and cost node ranges, attributes nothing.
    pub fn from_model(label: impl Into<String>, model: &DbModel) -> Result<RunData, DbError> {
        let cct = model.build_cct()?;
        let n = cct.len() as u32;
        let mut metrics = Vec::with_capacity(model.metrics.len());
        let mut costs = Vec::with_capacity(model.metrics.len());
        for m in &model.metrics {
            if let Some(&(node, _)) = m.costs.iter().find(|&&(node, _)| node >= n) {
                return Err(DbError::new(format!(
                    "metric '{}': cost references node {node} beyond CCT size {n}",
                    m.name
                )));
            }
            metrics.push(MetricDesc::new(&m.name, &m.unit, m.period));
            costs.push(m.costs.clone());
        }
        Ok(RunData {
            label: label.into(),
            cct,
            metrics,
            costs,
        })
    }

    /// Build from an opened experiment (the `.cpdb` path). On a lazily
    /// opened database this faults exactly the raw direct-cost columns
    /// — never the presentation columns.
    pub fn from_experiment(label: impl Into<String>, exp: &Experiment) -> RunData {
        let metrics: Vec<MetricDesc> = (0..exp.raw.metric_count())
            .map(|m| exp.raw.desc(MetricId::from_usize(m)).clone())
            .collect();
        let costs = (0..exp.raw.metric_count())
            .map(|m| {
                exp.raw
                    .column(MetricId::from_usize(m))
                    .nonzero_sorted()
                    .collect()
            })
            .collect();
        RunData {
            label: label.into(),
            cct: exp.cct.clone(),
            metrics,
            costs,
        }
    }
}

/// FNV-1a 64 over a canonical serialization of a run's content —
/// resolved name strings (so the value is independent of name-table
/// intern order), topology in arena order, metric descriptors, and
/// cost bit patterns. The label is deliberately excluded: it is the
/// *other* half of the canonical sort key.
pub fn fingerprint(run: &RunData) -> u64 {
    let mut h = Fnv::new();
    let cct = &run.cct;
    let names = &cct.names;
    for node in cct.all_nodes().skip(1) {
        h.u32(cct.parent(node).expect("non-root has parent").0);
        match cct.kind(node) {
            ScopeKind::Root => unreachable!("root is node 0"),
            ScopeKind::Frame {
                proc,
                module,
                def,
                call_site,
            } => {
                h.u8(1);
                h.str(names.proc_name(proc));
                h.str(names.module_name(module));
                h.str(names.file_name(def.file));
                h.u32(def.line);
                match call_site {
                    Some(c) => {
                        h.u8(1);
                        h.str(names.file_name(c.file));
                        h.u32(c.line);
                    }
                    None => h.u8(0),
                }
            }
            ScopeKind::InlinedFrame {
                proc,
                def,
                call_site,
            } => {
                h.u8(2);
                h.str(names.proc_name(proc));
                h.str(names.file_name(def.file));
                h.u32(def.line);
                h.str(names.file_name(call_site.file));
                h.u32(call_site.line);
            }
            ScopeKind::Loop { header } => {
                h.u8(3);
                h.str(names.file_name(header.file));
                h.u32(header.line);
            }
            ScopeKind::Stmt { loc } => {
                h.u8(4);
                h.str(names.file_name(loc.file));
                h.u32(loc.line);
            }
        }
    }
    h.u32(run.metrics.len() as u32);
    for (desc, costs) in run.metrics.iter().zip(&run.costs) {
        h.str(&desc.name);
        h.str(&desc.unit);
        h.u64(desc.period.to_bits());
        h.u32(costs.len() as u32);
        for &(node, v) in costs {
            h.u32(node);
            h.u64(v.to_bits());
        }
    }
    h.0
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }
    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
}

/// The union supergraph of a run set, plus everything needed to place
/// each run's costs in it.
pub struct Union {
    /// The union CCT: every calling context of every run, once.
    pub cct: Cct,
    /// Canonical run order: `order[i]` is an index into the input
    /// slice; position `i` is the run's index everywhere downstream.
    pub order: Vec<usize>,
    /// `node_maps[i][local]` = union node of canonical run `i`'s
    /// `local` node.
    pub node_maps: Vec<Vec<NodeId>>,
}

/// Per-run payload carried through the shard merge: the canonical
/// position (for a debug assertion) and the local→merged node map.
struct RunSlot {
    pos: usize,
    map: Vec<NodeId>,
}

impl RemapNodes for RunSlot {
    fn remap_nodes(&mut self, map: &[NodeId]) {
        for n in &mut self.map {
            *n = map[n.index()];
        }
    }
}

/// Build the union supergraph of `runs` on `threads` workers
/// (0 = automatic). Deterministic: the result is byte-identical for
/// any thread count and any input order (see the module docs).
pub fn build_union(runs: &[RunData], threads: usize) -> Union {
    assert!(!runs.is_empty(), "an ensemble needs at least one run");
    let _span = obs::span("ensemble.union");
    obs::count("ensemble.runs", runs.len() as u64);

    let fps: Vec<u64> = {
        let _span = obs::span("ensemble.fingerprint");
        chunked_map(runs, threads, |_, chunk| {
            chunk.iter().map(fingerprint).collect::<Vec<u64>>()
        })
        .into_iter()
        .flatten()
        .collect()
    };
    let mut order: Vec<usize> = (0..runs.len()).collect();
    order.sort_by(|&a, &b| {
        (&runs[a].label, fps[a])
            .cmp(&(&runs[b].label, fps[b]))
            .then(a.cmp(&b))
    });

    // One contiguous group of the canonical sequence per worker, each
    // folded sequentially into a fresh empty shard; then a pairwise
    // reduction that preserves left-to-right order. Group boundaries
    // vary with the worker count, but the result does not: merging
    // adjacent folds equals folding the concatenation.
    let t = resolve_threads(threads);
    let group_len = order.len().div_ceil(t).max(1);
    let fold_group = |start: usize, group: &[usize]| -> CctShard<RunSlot> {
        let mut shard = CctShard::empty();
        for (k, &ri) in group.iter().enumerate() {
            let src = &runs[ri].cct;
            let journal = arena_journal(src);
            let map = replay_into(&mut shard.cct, &mut shard.journal, src, &journal);
            shard.payload.push(RunSlot {
                pos: start + k,
                map,
            });
        }
        shard
    };
    let shards: Vec<CctShard<RunSlot>> = run_tasks(
        order
            .chunks(group_len)
            .enumerate()
            .map(|(gi, group)| {
                let fold_group = &fold_group;
                move || fold_group(gi * group_len, group)
            })
            .collect(),
    );
    let merged = reduce_pairwise(shards, |a, b| {
        obs::count("ensemble.merge.pairs", 1);
        merge_shards(a, b)
    })
    .expect("at least one run implies at least one shard");

    debug_assert!(merged.payload.windows(2).all(|w| w[0].pos + 1 == w[1].pos));
    Union {
        cct: merged.cct,
        order,
        node_maps: merged.payload.into_iter().map(|s| s.map).collect(),
    }
}

/// Remap one sparse cost list through a node map, re-sorting by union
/// node id. Replay is injective for trees built by child lookup, but a
/// loaded file makes no such promise, so duplicates are summed (in
/// original order — the sort is stable).
fn remap_costs(costs: &[(u32, f64)], map: &[NodeId]) -> Vec<(u32, f64)> {
    let mut out: Vec<(u32, f64)> = costs.iter().map(|&(n, v)| (map[n as usize].0, v)).collect();
    out.sort_by_key(|&(n, _)| n);
    let mut w = 0;
    for i in 0..out.len() {
        if w > 0 && out[w - 1].0 == out[i].0 {
            out[w - 1].1 += out[i].1;
        } else {
            out[w] = out[i];
            w += 1;
        }
    }
    out.truncate(w);
    out
}

/// Node-tile width of the statistics pass. Fixed — independent of the
/// worker count — so per-node accumulation order never changes.
const STAT_TILE: usize = 4096;

/// A fully built ensemble, ready to serialize.
pub struct BuiltEnsemble {
    /// The union CCT.
    pub cct: Cct,
    /// Base metric names (from the canonical-first run; other runs
    /// matched by name, missing metrics contribute zero columns).
    pub metric_names: Vec<String>,
    /// Stat columns, metric-major per [`STAT_NAMES`].
    pub stat_metrics: Vec<DbMetric>,
    /// Per-run remapped costs, canonical order.
    pub runs: Vec<EnsembleRun>,
}

impl BuiltEnsemble {
    /// Serialize as a `.cpens` container.
    pub fn to_bytes(self) -> Vec<u8> {
        callpath_expdb::ens::write_cpens(
            &self.cct,
            self.stat_metrics,
            &self.metric_names,
            &self.runs,
        )
    }
}

/// Build the full ensemble: union supergraph, per-run remapped costs,
/// and cross-run statistics, on `threads` workers (0 = automatic).
pub fn build(runs: &[RunData], threads: usize) -> BuiltEnsemble {
    let union = build_union(runs, threads);
    build_from_union(runs, union, threads)
}

/// The post-union half of [`build`], split out so benches can time the
/// union and the statistics separately.
pub fn build_from_union(runs: &[RunData], union: Union, threads: usize) -> BuiltEnsemble {
    let _span = obs::span("ensemble.stats");
    let first = &runs[union.order[0]];
    let base: Vec<MetricDesc> = first.metrics.clone();
    let metric_names: Vec<String> = base.iter().map(|d| d.name.clone()).collect();

    // Remap every run's costs into union ids, matching metrics by name
    // against the base list. Embarrassingly parallel per run.
    let positions: Vec<usize> = (0..union.order.len()).collect();
    let ens_runs: Vec<EnsembleRun> = chunked_map(&positions, threads, |_, chunk| {
        chunk
            .iter()
            .map(|&i| {
                let run = &runs[union.order[i]];
                let map = &union.node_maps[i];
                let costs = base
                    .iter()
                    .map(|bd| {
                        run.metrics
                            .iter()
                            .position(|d| d.name == bd.name)
                            .map(|mi| remap_costs(&run.costs[mi], map))
                            .unwrap_or_default()
                    })
                    .collect();
                EnsembleRun {
                    label: run.label.clone(),
                    fingerprint: fingerprint(run),
                    costs,
                }
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();

    // One streaming pass per (metric, node tile): fold runs in
    // canonical order, then derive all four statistics. Absent nodes
    // count as zero for min/max (a run that never reached a context
    // spent nothing there) and for the mean/stddev denominator, which
    // is always the run count.
    let n_nodes = union.cct.len();
    let n_runs = ens_runs.len() as f64;
    let tiles: Vec<(usize, usize)> = (0..base.len())
        .flat_map(|m| (0..n_nodes).step_by(STAT_TILE).map(move |lo| (m, lo)))
        .collect();
    type TileStats = [Vec<(u32, f64)>; 4];
    let tile_stats: Vec<TileStats> = chunked_map(&tiles, threads, |_, chunk| {
        chunk
            .iter()
            .map(|&(m, lo)| {
                let hi = (lo + STAT_TILE).min(n_nodes);
                let w = hi - lo;
                let mut sum = vec![0.0f64; w];
                let mut sumsq = vec![0.0f64; w];
                let mut cnt = vec![0u32; w];
                let mut mn = vec![f64::INFINITY; w];
                let mut mx = vec![f64::NEG_INFINITY; w];
                for run in &ens_runs {
                    let costs = &run.costs[m];
                    let a = costs.partition_point(|&(n, _)| (n as usize) < lo);
                    let b = costs.partition_point(|&(n, _)| (n as usize) < hi);
                    for &(node, v) in &costs[a..b] {
                        let k = node as usize - lo;
                        sum[k] += v;
                        sumsq[k] += v * v;
                        cnt[k] += 1;
                        mn[k] = mn[k].min(v);
                        mx[k] = mx[k].max(v);
                    }
                }
                let mut out: TileStats = Default::default();
                for k in 0..w {
                    if cnt[k] == 0 {
                        continue;
                    }
                    let node = (lo + k) as u32;
                    let mean = sum[k] / n_runs;
                    let (lo_v, hi_v) = if (cnt[k] as f64) < n_runs {
                        (mn[k].min(0.0), mx[k].max(0.0))
                    } else {
                        (mn[k], mx[k])
                    };
                    let var = (sumsq[k] / n_runs - mean * mean).max(0.0);
                    for (s, v) in [mean, lo_v, hi_v, var.sqrt()].into_iter().enumerate() {
                        if v != 0.0 {
                            out[s].push((node, v));
                        }
                    }
                }
                out
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();

    let mut stat_metrics: Vec<DbMetric> = base
        .iter()
        .flat_map(|d| {
            STAT_NAMES.iter().map(|s| DbMetric {
                name: format!("{} {s}", d.name),
                unit: d.unit.clone(),
                period: d.period,
                costs: Vec::new(),
            })
        })
        .collect();
    let tiles_per_metric = n_nodes.div_ceil(STAT_TILE);
    for (ti, tile) in tile_stats.into_iter().enumerate() {
        let m = ti / tiles_per_metric;
        for (s, entries) in tile.into_iter().enumerate() {
            stat_metrics[m * STAT_NAMES.len() + s].costs.extend(entries);
        }
    }

    BuiltEnsemble {
        cct: union.cct,
        metric_names,
        stat_metrics,
        runs: ens_runs,
    }
}

/// Score each run's distance from the ensemble from directory totals
/// alone (no column ever faulted): per run, the maximum over base
/// metrics of `|total − mean| / stddev` of that metric's per-run
/// totals (population stddev; metrics with zero spread contribute 0).
/// Returns `(canonical run index, score)` sorted by descending score,
/// ties by run index.
pub fn outlier_scores(dir: &Directory) -> Vec<(usize, f64)> {
    let n_runs = dir.runs.len() as f64;
    let n_metrics = dir.metric_names.len();
    let mut scores = vec![0.0f64; dir.runs.len()];
    for m in 0..n_metrics {
        let mean = dir.runs.iter().map(|r| r.stats[m].1).sum::<f64>() / n_runs;
        let var = dir
            .runs
            .iter()
            .map(|r| {
                let d = r.stats[m].1 - mean;
                d * d
            })
            .sum::<f64>()
            / n_runs;
        let sd = var.sqrt();
        if sd > 0.0 {
            for (r, run) in dir.runs.iter().enumerate() {
                let z = (run.stats[m].1 - mean).abs() / sd;
                if z.is_finite() && z > scores[r] {
                    scores[r] = z;
                }
            }
        }
    }
    let mut out: Vec<(usize, f64)> = scores.into_iter().enumerate().collect();
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(label: &str, procs: &[&str], costs: &[(u32, f64)]) -> RunData {
        let mut names = NameTable::new();
        let file = names.file("x.c");
        let module = names.module("x");
        let ids: Vec<ProcId> = procs.iter().map(|p| names.proc(p)).collect();
        let mut cct = Cct::new(names);
        let mut parent = cct.root();
        for (i, p) in ids.into_iter().enumerate() {
            parent = cct.add_child(
                parent,
                ScopeKind::Frame {
                    proc: p,
                    module,
                    def: SourceLoc::new(file, 10 * (i as u32 + 1)),
                    call_site: None,
                },
            );
        }
        RunData {
            label: label.into(),
            cct,
            metrics: vec![MetricDesc::new("cycles", "ev", 1.0)],
            costs: vec![costs.to_vec()],
        }
    }

    #[test]
    fn union_contains_every_context_once() {
        let runs = vec![
            run("a", &["main", "fast"], &[(2, 1.0)]),
            run("b", &["main", "slow"], &[(2, 2.0)]),
            run("c", &["main", "fast"], &[(2, 4.0)]),
        ];
        let u = build_union(&runs, 1);
        // root + main + fast + slow
        assert_eq!(u.cct.len(), 4);
        // Runs a and c share "fast": their leaves map to the same node.
        let pos_of = |l: &str| u.order.iter().position(|&i| runs[i].label == l).unwrap();
        assert_eq!(u.node_maps[pos_of("a")][2], u.node_maps[pos_of("c")][2]);
        assert_ne!(u.node_maps[pos_of("a")][2], u.node_maps[pos_of("b")][2]);
    }

    #[test]
    fn union_is_independent_of_input_order_and_threads() {
        let runs = vec![
            run("r2", &["main", "g", "h"], &[(3, 1.0)]),
            run("r0", &["main", "f"], &[(2, 2.0)]),
            run("r1", &["main", "g"], &[(2, 3.0)]),
        ];
        let reference = build(&runs, 1).to_bytes();
        let mut shuffled = runs.clone();
        shuffled.rotate_left(2);
        for t in [1, 2, 3, 8] {
            assert_eq!(build(&shuffled, t).to_bytes(), reference, "threads {t}");
        }
    }

    #[test]
    fn stats_count_absent_runs_as_zero() {
        let runs = vec![
            run("a", &["main"], &[(1, 3.0)]),
            run("b", &["main"], &[(1, 5.0)]),
            run("c", &["main", "only_c"], &[(2, 8.0)]),
        ];
        let built = build(&runs, 1);
        let stat = |name: &str| {
            built
                .stat_metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap()
                .costs
                .clone()
        };
        // Node for "main" is 1 in the union. mean = (3+5+0)/3.
        let mean = stat("cycles mean");
        assert_eq!(mean.iter().find(|&&(n, _)| n == 1).unwrap().1, 8.0 / 3.0);
        // "only_c" exists in one run of three: min counts the zeros.
        assert!(mean.iter().any(|&(n, v)| n == 2 && v == 8.0 / 3.0));
        assert!(!stat("cycles min").iter().any(|&(n, _)| n == 2));
        assert_eq!(
            stat("cycles max").iter().find(|&&(n, _)| n == 2).unwrap().1,
            8.0
        );
        // All three runs hit "main": min/max are true extrema — but a
        // missing zero at node 1 in run c widens min to 0.
        assert!(!stat("cycles min").iter().any(|&(n, _)| n == 1));
        assert_eq!(
            stat("cycles max").iter().find(|&&(n, _)| n == 1).unwrap().1,
            5.0
        );
    }

    #[test]
    fn metrics_match_by_name_across_runs() {
        let mut a = run("a", &["main"], &[(1, 1.0)]);
        a.metrics.push(MetricDesc::new("insns", "ev", 1.0));
        a.costs.push(vec![(1, 10.0)]);
        let mut b = run("b", &["main"], &[(1, 3.0)]);
        // b stores insns FIRST: matching must go by name, not index.
        b.metrics.insert(0, MetricDesc::new("insns", "ev", 1.0));
        b.costs.insert(0, vec![(1, 20.0)]);
        let built = build(&[a, b], 1);
        assert_eq!(built.metric_names, vec!["cycles", "insns"]);
        let insns_mean = built
            .stat_metrics
            .iter()
            .find(|m| m.name == "insns mean")
            .unwrap();
        assert_eq!(insns_mean.costs, vec![(1, 15.0)]);
    }

    #[test]
    fn outliers_surface_the_inflated_run() {
        let mut runs: Vec<RunData> = (0..8)
            .map(|i| run(&format!("r{i}"), &["main"], &[(1, 100.0)]))
            .collect();
        runs[5].costs[0] = vec![(1, 1000.0)];
        let bytes = build(&runs, 0).to_bytes();
        let dir = callpath_expdb::ens::read_directory(&bytes).unwrap();
        let scores = outlier_scores(&dir);
        assert_eq!(dir.runs[scores[0].0].label, "r5");
        assert!(scores[0].1 > 2.0, "z-score {}", scores[0].1);
        assert!(scores[0].1 > scores[1].1 * 2.0);
    }

    #[test]
    fn duplicate_runs_collapse_to_the_same_topology() {
        let a = run("same", &["main", "f"], &[(2, 1.0)]);
        let b = a.clone();
        let u = build_union(&[a, b], 2);
        assert_eq!(u.cct.len(), 3);
        assert_eq!(u.node_maps[0], u.node_maps[1]);
    }
}
