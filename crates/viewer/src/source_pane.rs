//! The source pane: navigate from a navigation-pane scope to its source
//! code (Section V-B).
//!
//! Two navigations exist per line, mirroring hpcviewer's fused
//! presentation: selecting the scope name goes to the *callee/scope*
//! definition; clicking the call-site icon goes to the *call site* in the
//! caller. Access to source is exclusively through the navigation pane —
//! the paper removed direct metric access from the source pane because it
//! "encouraged users to inspect performance data that was often of little
//! or no importance" (Section V-A).

use callpath_core::prelude::*;
use callpath_core::source::SourceStore;

/// Where a navigation lands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceHit {
    /// File the navigation landed in.
    pub file_name: String,
    /// 1-based line.
    pub line: u32,
    /// Numbered excerpt with the focus line marked, if the store has the
    /// file.
    pub excerpt: Option<String>,
}

fn hit(view: &View<'_>, store: &SourceStore, loc: SourceLoc, context: u32) -> SourceHit {
    let names = &view.experiment().cct.names;
    SourceHit {
        file_name: names.file_name(loc.file).to_owned(),
        line: loc.line,
        excerpt: store.excerpt(loc.file, loc.line, context),
    }
}

/// Navigate to the scope itself (procedure definition, loop header,
/// statement). Returns `None` for scopes without source (binary-only
/// routines render in plain black and are not navigable).
pub fn navigate_to_scope(
    view: &View<'_>,
    node: u32,
    store: &SourceStore,
    context: u32,
) -> Option<SourceHit> {
    let loc = view.source_of(node)?;
    Some(hit(view, store, loc, context))
}

/// Navigate to the call site in the caller (the call-site icon's action).
pub fn navigate_to_call_site(
    view: &View<'_>,
    node: u32,
    store: &SourceStore,
    context: u32,
) -> Option<SourceHit> {
    let loc = view.call_site(node)?;
    Some(hit(view, store, loc, context))
}

/// Render a two-pane presentation for one selected scope: its navigation
/// row (label + metrics) above its source excerpt.
pub fn render_selection(view: &View<'_>, node: u32, store: &SourceStore, context: u32) -> String {
    render_selection_filtered(
        view,
        node,
        store,
        context,
        &std::collections::HashSet::new(),
    )
}

/// [`render_selection`], additionally skipping columns the session's
/// metric-properties dialog has hidden. The pane honoring the hidden set
/// matters beyond consistency: on a lazily opened database, rendering a
/// hidden column's value here would fault its block in from disk.
pub fn render_selection_filtered(
    view: &View<'_>,
    node: u32,
    store: &SourceStore,
    context: u32,
    hidden: &std::collections::HashSet<u32>,
) -> String {
    let mut out = String::new();
    let label = view.label(node);
    out.push_str(&format!("selected: {label}\n"));
    let cols: Vec<ColumnId> = view
        .columns()
        .visible_columns()
        .filter(|c| !hidden.contains(&c.0))
        .collect();
    for c in cols {
        let v = view.value(c, node);
        if v != 0.0 {
            out.push_str(&format!(
                "  {} = {}\n",
                view.columns().desc(c).name,
                format::metric_value(v)
            ));
        }
    }
    match navigate_to_scope(view, node, store, context) {
        Some(h) => {
            out.push_str(&format!("--- {}:{} ---\n", h.file_name, h.line));
            match h.excerpt {
                Some(e) => out.push_str(&e),
                None => out.push_str("(source file not available)\n"),
            }
        }
        None => out.push_str("(no source: binary-only scope)\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_profiler::{generate_listings, Costs, ExecConfig, Op, ProgramBuilder};
    use callpath_workloads::pipeline;

    fn setup() -> (Experiment, Vec<(String, String)>) {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("app.c");
        let work = b.declare("work", f, 10);
        let main = b.declare("main", f, 1);
        b.body(
            work,
            vec![Op::looped(11, 4, vec![Op::work(12, Costs::cycles(10_000))])],
        );
        b.body(main, vec![Op::call(3, work)]);
        b.entry(main);
        let program = b.build();
        let listings = generate_listings(&program);
        let exp = pipeline::build_experiment(&program, &ExecConfig::default());
        (exp, listings)
    }

    fn store_for(exp: &Experiment, listings: &[(String, String)]) -> SourceStore {
        SourceStore::from_texts(
            &exp.cct.names,
            listings.iter().map(|(n, t)| (n.as_str(), t.as_str())),
        )
    }

    #[test]
    fn scope_navigation_reaches_the_definition() {
        let (exp, listings) = setup();
        let store = store_for(&exp, &listings);
        let mut view = View::calling_context(&exp);
        let roots = view.roots();
        let main = roots[0];
        let hit = navigate_to_scope(&view, main, &store, 1).unwrap();
        assert_eq!(hit.file_name, "app.c");
        assert_eq!(hit.line, 1);
        assert!(hit.excerpt.unwrap().contains("void main() {"));
        let work = view.children(main)[0];
        let hit = navigate_to_scope(&view, work, &store, 0).unwrap();
        assert_eq!(hit.line, 10);
    }

    #[test]
    fn call_site_navigation_reaches_the_caller_line() {
        let (exp, listings) = setup();
        let store = store_for(&exp, &listings);
        let mut view = View::calling_context(&exp);
        let roots = view.roots();
        let work = view.children(roots[0])[0];
        let hit = navigate_to_call_site(&view, work, &store, 0).unwrap();
        assert_eq!(hit.line, 3, "the call in main");
        assert!(hit.excerpt.unwrap().contains("work();"));
        // main itself has no call site.
        assert!(navigate_to_call_site(&view, roots[0], &store, 0).is_none());
    }

    #[test]
    fn loop_scopes_navigate_to_their_header() {
        let (exp, listings) = setup();
        let store = store_for(&exp, &listings);
        let mut view = View::calling_context(&exp);
        let roots = view.roots();
        let work = view.children(roots[0])[0];
        let lp = view.children(work)[0];
        assert!(view.label(lp).starts_with("loop at"));
        let hit = navigate_to_scope(&view, lp, &store, 0).unwrap();
        assert_eq!(hit.line, 11);
        assert!(hit.excerpt.unwrap().contains("for (i = 0; i < 4;"));
    }

    #[test]
    fn selection_rendering_combines_metrics_and_source() {
        let (exp, listings) = setup();
        let store = store_for(&exp, &listings);
        let mut view = View::calling_context(&exp);
        let roots = view.roots();
        let text = render_selection(&view, roots[0], &store, 1);
        assert!(text.contains("selected: main"));
        assert!(text.contains("PAPI_TOT_CYC (I) ="));
        assert!(text.contains("void main() {"));
        let _ = view.children(roots[0]);
    }

    #[test]
    fn missing_source_degrades_gracefully() {
        let (exp, _) = setup();
        let empty = SourceStore::new();
        let view = View::calling_context(&exp);
        let roots = view.roots();
        let hit = navigate_to_scope(&view, roots[0], &empty, 1).unwrap();
        assert!(hit.excerpt.is_none());
        let text = render_selection(&view, roots[0], &empty, 1);
        assert!(text.contains("not available"));
    }
}
