#![warn(missing_docs)]
//! # callpath-viewer
//!
//! Text-mode presentation of call path profiles — the `hpcviewer`
//! substitute (the paper's GUI principles, renderer-independent):
//!
//! * a **navigation pane** rendered as an indented tree with fused
//!   call-site/callee lines (Section V-B; a `separate-lines` option exists
//!   for the ablation that shows fusing halves the tree depth);
//! * a **metric pane** with one column per metric, scientific-notation
//!   values, percentages of the aggregate, and *blank* zero cells
//!   (Section V-A);
//! * scopes at every level **sorted by the selected metric column**;
//! * **hot-path rendering** that auto-expands along Eq. 3's path and marks
//!   it (Section V-C);
//! * **flattening** and **zoom** for the Flat View (Section III-C).
//!
//! Output is deterministic, which the golden tests rely on.

pub mod render;
pub mod session;
pub mod source_pane;

pub use render::{
    render, render_flattened, render_hot_path, render_subtree, ExpandMode, RenderConfig,
};
pub use session::{Command, Session};
pub use source_pane::{
    navigate_to_call_site, navigate_to_scope, render_selection, render_selection_filtered,
    SourceHit,
};
