//! An interactive viewer session: the hpcviewer UX as a deterministic
//! state machine (Section V).
//!
//! The session owns the paper's interaction model:
//!
//! * **top-down enforcement**: everything starts collapsed at the top
//!   level; the only way to see a scope is to expand its parent (or run
//!   hot-path analysis, which expands for you);
//! * per-view **expansion state**, **selection**, and **sort column**;
//! * **hot path** from the selected scope (or the view's top) at the
//!   configurable threshold (the preferences-dialog knob);
//! * **zoom** into a subtree and back;
//! * **flatten/unflatten** for the Flat View;
//! * **source navigation** for the selected scope — the only route to
//!   source, per Section V-A.
//!
//! Commands return `Err` with a message instead of panicking, so a shell
//! or test can drive the session blindly.

use crate::render::{render_flattened, write_truncated_name, RenderConfig};
use callpath_core::prelude::*;
use callpath_core::source::SourceStore;
use callpath_obs as obs;
use std::collections::HashSet;

/// A user action.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Switch between the three views (each keeps its own state).
    SwitchView(ViewKind),
    /// Expand a visible scope (children become visible).
    Expand(u32),
    /// Collapse a scope (its subtree disappears).
    Collapse(u32),
    /// Select a visible scope (shows its source pane).
    Select(u32),
    /// Sort scopes by this metric column.
    SortBy(ColumnId),
    /// Run hot-path analysis from the selection (or each top-level scope's
    /// maximum when nothing is selected), expanding along the path.
    HotPath,
    /// Set the hot-path threshold (the preferences-dialog knob).
    SetThreshold(f64),
    /// Restrict the view to one subtree.
    Zoom(u32),
    /// Undo a zoom.
    Unzoom,
    /// Flat View only.
    Flatten,
    /// Restore one flattened hierarchy layer.
    Unflatten,
    /// Metric-properties dialog: hide/show a column (hidden columns still
    /// feed derived formulas, they just don't render).
    HideColumn(ColumnId),
    /// Show a previously hidden column.
    ShowColumn(ColumnId),
    /// Sort scopes by name instead of a metric (footnote 2).
    SortByName(bool),
    /// Search: find the first scope whose label contains the needle
    /// (case-sensitive), expand its ancestors so it becomes visible, and
    /// select it.
    Find(String),
}

/// Per-view interaction state.
#[derive(Debug, Default, Clone)]
struct ViewState {
    expanded: HashSet<u32>,
    selected: Option<u32>,
    zoom: Option<u32>,
    flatten_level: usize,
    hot: Vec<u32>,
}

/// An interactive session over one experiment.
pub struct Session<'e> {
    exp: &'e Experiment,
    store: SourceStore,
    kind: ViewKind,
    views: [Option<View<'e>>; 3],
    states: [ViewState; 3],
    sort: ColumnId,
    sort_by_name: bool,
    threshold: f64,
    hidden: HashSet<u32>,
    cfg: RenderConfig,
    // Per-view query caches (indexed like `views`): cached child sort
    // orders with generation-stamped invalidation, and interned per-node
    // labels. Re-rendering an unchanged view costs lookups, not sorts.
    sort_caches: [SortCache; 3],
    label_caches: [LabelCache; 3],
}

fn idx(kind: ViewKind) -> usize {
    match kind {
        ViewKind::CallingContext => 0,
        ViewKind::Callers => 1,
        ViewKind::Flat => 2,
    }
}

impl<'e> Session<'e> {
    /// Start a session on the Calling Context View with everything
    /// collapsed (the top-down discipline).
    pub fn new(exp: &'e Experiment, store: SourceStore) -> Self {
        Session {
            exp,
            store,
            kind: ViewKind::CallingContext,
            views: [None, None, None],
            states: Default::default(),
            sort: ColumnId(0),
            sort_by_name: false,
            threshold: 0.5,
            hidden: HashSet::new(),
            cfg: RenderConfig::default(),
            sort_caches: Default::default(),
            label_caches: Default::default(),
        }
    }

    /// `(hits, full_sorts)` summed over the three per-view sort caches.
    /// The acceptance hook for the PR 2 tentpole: re-sorting or
    /// re-rendering an already-built view must not grow `full_sorts`.
    ///
    /// This is the per-session compat shim over the same events the
    /// process-wide obs registry counts as `viewer.sort_cache.hit` /
    /// `viewer.sort_cache.miss` — the session view stays scoped to this
    /// session's three caches, while `--stats` reports the global tally.
    pub fn sort_stats(&self) -> (u64, u64) {
        self.sort_caches.iter().fold((0, 0), |(h, f), c| {
            let (ch, cf) = c.stats();
            (h + ch, f + cf)
        })
    }

    /// How many of the experiment's presentation columns hold resident
    /// values. On an eagerly built experiment this equals the column
    /// count; on a lazily opened v2 database it counts the columns
    /// faulted in so far — the acceptance hook for the storage-path
    /// tentpole: rendering one sorted view must materialize only the
    /// columns that view reads.
    pub fn materialized_columns(&self) -> usize {
        self.exp.columns.materialized_columns()
    }

    /// Which view is active.
    pub fn view_kind(&self) -> ViewKind {
        self.kind
    }

    /// The currently selected scope, if any.
    pub fn selected(&self) -> Option<u32> {
        self.states[idx(self.kind)].selected
    }

    /// The hot-path threshold in effect.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    fn view(&mut self) -> &mut View<'e> {
        let i = idx(self.kind);
        if self.views[i].is_none() {
            self.views[i] = Some(match self.kind {
                ViewKind::CallingContext => View::calling_context(self.exp),
                ViewKind::Callers => View::callers(self.exp),
                ViewKind::Flat => View::flat(self.exp),
            });
        }
        self.views[i].as_mut().unwrap()
    }

    /// Scopes currently visible at the top of the view (zoom target, or
    /// flattened roots, or the view's natural roots).
    fn top_level(&mut self) -> Vec<u32> {
        let state = self.states[idx(self.kind)].clone();
        if let Some(z) = state.zoom {
            return vec![z];
        }
        let kind = self.kind;
        let view = self.view();
        let mut roots = view.roots();
        if let (ViewKind::Flat, level) = (kind, state.flatten_level) {
            if level > 0 {
                if let View::Flat { exp, view: flat } = view {
                    let _span = obs::span("viewer.flat_flatten");
                    obs::count("viewer.flat.force", 1);
                    let cur: Vec<ViewNodeId> = roots.iter().map(|&r| ViewNodeId(r)).collect();
                    // The forcing variant: flattening must descend through
                    // procedure interiors that haven't been filled yet.
                    let cur = flat.flatten(exp, &cur, level);
                    roots = cur.iter().map(|n| n.0).collect();
                }
            }
        }
        roots
    }

    /// Is `node` currently visible (reachable from the top level through
    /// expanded scopes)? Commands that address invisible scopes are
    /// rejected — the top-down discipline.
    fn is_visible(&mut self, node: u32) -> bool {
        let tops = self.top_level();
        if tops.contains(&node) {
            return true;
        }
        let expanded = self.states[idx(self.kind)].expanded.clone();
        let mut stack = tops;
        while let Some(n) = stack.pop() {
            if expanded.contains(&n) {
                for c in self.view().children(n) {
                    if c == node {
                        return true;
                    }
                    stack.push(c);
                }
            }
        }
        false
    }

    /// Apply one command.
    pub fn apply(&mut self, cmd: Command) -> Result<(), String> {
        match cmd {
            Command::SwitchView(kind) => {
                self.kind = kind;
                Ok(())
            }
            Command::Expand(n) => {
                if !self.is_visible(n) {
                    return Err(format!(
                        "scope {n} is not visible; expand its parents first"
                    ));
                }
                if self.view().children(n).is_empty() {
                    return Err(format!("scope {n} has no children"));
                }
                self.states[idx(self.kind)].expanded.insert(n);
                Ok(())
            }
            Command::Collapse(n) => {
                self.states[idx(self.kind)].expanded.remove(&n);
                Ok(())
            }
            Command::Select(n) => {
                if !self.is_visible(n) {
                    return Err(format!("scope {n} is not visible"));
                }
                self.states[idx(self.kind)].selected = Some(n);
                Ok(())
            }
            Command::SortBy(c) => {
                if c.index() >= self.exp.columns.column_count() {
                    return Err(format!("no column {c:?}"));
                }
                self.sort = c;
                Ok(())
            }
            Command::SetThreshold(t) => {
                if !(t > 0.0 && t <= 1.0) {
                    return Err("threshold must be in (0, 1]".into());
                }
                self.threshold = t;
                Ok(())
            }
            Command::HotPath => {
                let _span = obs::span("viewer.hot_path");
                let start = match self.selected() {
                    Some(s) => s,
                    None => {
                        let tops = self.top_level();
                        if tops.is_empty() {
                            return Err("empty view".into());
                        }
                        let sort = self.sort;
                        // Top-1 selection: a single max scan (first-max on
                        // ties, like the stable descending sort it replaced)
                        // instead of sorting the whole top level.
                        let view = self.view();
                        let mut best = tops[0];
                        let mut best_v = view.value(sort, best);
                        for &t in &tops[1..] {
                            let v = view.value(sort, t);
                            if v > best_v {
                                best = t;
                                best_v = v;
                            }
                        }
                        best
                    }
                };
                let cfg = HotPathConfig {
                    threshold: self.threshold,
                    ..Default::default()
                };
                let sort = self.sort;
                let path = self.view().hot_path(start, sort, cfg);
                let state = &mut self.states[idx(self.kind)];
                for &n in &path {
                    state.expanded.insert(n);
                }
                state.selected = path.last().copied();
                state.hot = path;
                Ok(())
            }
            Command::Zoom(n) => {
                if !self.is_visible(n) {
                    return Err(format!("scope {n} is not visible"));
                }
                self.states[idx(self.kind)].zoom = Some(n);
                Ok(())
            }
            Command::Unzoom => {
                self.states[idx(self.kind)].zoom = None;
                Ok(())
            }
            Command::Flatten => {
                if self.kind != ViewKind::Flat {
                    return Err("flattening applies to the Flat View".into());
                }
                self.states[idx(self.kind)].flatten_level += 1;
                Ok(())
            }
            Command::Unflatten => {
                if self.kind != ViewKind::Flat {
                    return Err("flattening applies to the Flat View".into());
                }
                let s = &mut self.states[idx(self.kind)];
                if s.flatten_level == 0 {
                    return Err("not flattened".into());
                }
                s.flatten_level -= 1;
                Ok(())
            }
            Command::HideColumn(c) => {
                if c.index() >= self.exp.columns.column_count() {
                    return Err(format!("no column {c:?}"));
                }
                self.hidden.insert(c.0);
                Ok(())
            }
            Command::ShowColumn(c) => {
                self.hidden.remove(&c.0);
                Ok(())
            }
            Command::SortByName(on) => {
                self.sort_by_name = on;
                Ok(())
            }
            Command::Find(needle) => {
                // BFS from the top level so the shallowest match wins, and
                // record the path for ancestor expansion.
                let tops = self.top_level();
                let mut queue: std::collections::VecDeque<(u32, Vec<u32>)> =
                    tops.into_iter().map(|t| (t, vec![t])).collect();
                let mut seen = HashSet::new();
                let mut label_buf = String::new();
                while let Some((n, path)) = queue.pop_front() {
                    if !seen.insert(n) {
                        continue;
                    }
                    label_buf.clear();
                    self.view().write_label(n, &mut label_buf);
                    if label_buf.contains(&needle) {
                        let state = &mut self.states[idx(self.kind)];
                        for &a in &path[..path.len() - 1] {
                            state.expanded.insert(a);
                        }
                        state.selected = Some(n);
                        return Ok(());
                    }
                    for c in self.view().children(n) {
                        let mut p = path.clone();
                        p.push(c);
                        queue.push_back((c, p));
                    }
                }
                Err(format!("no scope matching '{needle}'"))
            }
        }
    }

    /// Render the current view: only expanded scopes show children; the
    /// selection is marked with `»` and the last hot path with flames.
    pub fn render(&mut self) -> String {
        self.render_impl(false).0
    }

    /// Render with a `[row]` prefix on every scope line and return the
    /// node id of each row, so an interactive shell can address scopes by
    /// row number (`expand 3`, `select 0`, ...).
    pub fn render_numbered(&mut self) -> (String, Vec<u32>) {
        self.render_impl(true)
    }

    fn render_impl(&mut self, numbered: bool) -> (String, Vec<u32>) {
        static RENDER: obs::LazySpan = obs::LazySpan::new("viewer.render");
        let _span = RENDER.open();
        let tops = self.top_level();
        let state = self.states[idx(self.kind)].clone();
        let sort = self.sort;
        let cfg = self.cfg.clone();
        let title = self.kind.title();
        let hidden = self.hidden.clone();
        let by_name = self.sort_by_name;
        self.view(); // materialize, then split the field borrows below
        let i = idx(self.kind);
        let view = self.views[i].as_mut().expect("view materialized above");
        let sort_cache = &mut self.sort_caches[i];
        let labels = &mut self.label_caches[i];

        let mut out = format!("[{title}]\n");
        let cols: Vec<ColumnId> = view
            .columns()
            .visible_columns()
            .filter(|c| !hidden.contains(&c.0))
            .collect();
        let mut header = format!("{:width$}", "scope", width = cfg.label_width + 4);
        let descs = view.columns().descs().to_vec();
        {
            use std::fmt::Write as _;
            let mut shown = String::new();
            for &c in &cols {
                // Same head…tail truncation as the plain renderer, so the
                // statistic/flavor suffix of long names stays readable.
                shown.clear();
                write_truncated_name(&descs[c.index()].name, &mut shown);
                let _ = write!(header, " {shown:>18}");
            }
        }
        out.push_str(header.trim_end());
        out.push('\n');

        let aggregates: Vec<f64> = cols
            .iter()
            .map(|&c| view.experiment().aggregate(c))
            .collect();

        #[allow(clippy::too_many_arguments)]
        fn emit(
            view: &mut View<'_>,
            sort_cache: &mut SortCache,
            labels: &mut LabelCache,
            n: u32,
            depth: usize,
            state: &super::session::SessionRenderCtx<'_>,
            out: &mut String,
            rows: &mut Vec<u32>,
            numbered: bool,
        ) {
            if numbered {
                out.push_str(&format!("[{:>3}] ", rows.len()));
            }
            rows.push(n);
            let indent = "  ".repeat(depth);
            let mut label = String::new();
            if state.selected == Some(n) {
                label.push('»');
            }
            if state.hot.contains(&n) {
                label.push('🔥');
            }
            let expandable = !view.children_if_built(n).is_empty() || view.may_expand(n);
            let marker = if state.expanded.contains(&n) {
                "▼ "
            } else if expandable {
                "▶ "
            } else {
                "  "
            };
            label.push_str(marker);
            if view.is_call(n) {
                label.push_str("↪ ");
            }
            label.push_str(labels.get(n, |buf| view.write_label(n, buf)));
            if !view.has_source(n) {
                label.push_str(" †");
            }
            let width = state.cfg.label_width.saturating_sub(indent.chars().count());
            let mut cells = String::new();
            for (i, &c) in state.cols.iter().enumerate() {
                let v = view.value(c, n);
                cells.push_str(&format!(
                    " {:>18}",
                    format::metric_with_percent(v, state.aggregates[i])
                ));
            }
            out.push_str(&format!(
                "{}{}    {}\n",
                indent,
                format::fit(&label, width),
                cells.trim_end()
            ));
            if state.expanded.contains(&n) {
                let kids = cached_order(view, sort_cache, labels, n as u64, state.key, |v| {
                    v.children(n)
                });
                for k in kids {
                    emit(
                        view,
                        sort_cache,
                        labels,
                        k,
                        depth + 1,
                        state,
                        out,
                        rows,
                        numbered,
                    );
                }
            }
        }

        let key = if by_name {
            SortKey::Name
        } else {
            SortKey::Column {
                column: sort,
                dir: SortDir::Descending,
            }
        };
        let ctx = SessionRenderCtx {
            selected: state.selected,
            hot: &state.hot,
            expanded: &state.expanded,
            cols: &cols,
            aggregates: &aggregates,
            key,
            cfg: &cfg,
        };
        // Top-level ordering goes through the same cache under a synthetic
        // slot (per flatten level). Zoomed/singleton tops skip the sort.
        let sorted_tops: Vec<u32> = if tops.len() <= 1 {
            tops
        } else {
            let slot = TOP_SLOT_BASE + state.flatten_level as u64;
            cached_order(view, sort_cache, labels, slot, key, move |_| tops)
        };
        let mut rows: Vec<u32> = Vec::new();
        for t in sorted_tops {
            emit(
                view, sort_cache, labels, t, 0, &ctx, &mut out, &mut rows, numbered,
            );
        }

        // Source pane for the selection. Re-borrow view immutably so the
        // store can be read alongside it.
        if let Some(sel) = state.selected {
            let i = idx(self.kind);
            let view = self.views[i].as_ref().expect("view materialized above");
            out.push('\n');
            out.push_str(&crate::source_pane::render_selection_filtered(
                view,
                sel,
                &self.store,
                2,
                &self.hidden,
            ));
        }
        (out, rows)
    }

    /// Convenience for tests and shells: render from flattened roots using
    /// the plain renderer (no interaction state).
    pub fn render_plain(&mut self) -> String {
        let tops = self.top_level();
        let cfg = self.cfg.clone();
        render_flattened(self.view(), &tops, &cfg)
    }
}

/// Borrowed context for the recursive renderer (kept out of the closure to
/// satisfy the borrow checker).
struct SessionRenderCtx<'a> {
    selected: Option<u32>,
    hot: &'a [u32],
    expanded: &'a HashSet<u32>,
    cols: &'a [ColumnId],
    aggregates: &'a [f64],
    key: SortKey,
    cfg: &'a RenderConfig,
}

/// A `(slot, key)` child ordering through the per-view [`SortCache`]:
/// valid cached orderings are reused as-is; misses compute the node list,
/// sort it via the interned [`LabelCache`], and stamp the entry with the
/// generation observed *after* computing (lazy views may materialize
/// children — and bump the generation — inside `nodes`).
fn cached_order(
    view: &mut View<'_>,
    sort_cache: &mut SortCache,
    labels: &mut LabelCache,
    slot: u64,
    key: SortKey,
    nodes: impl FnOnce(&mut View<'_>) -> Vec<u32>,
) -> Vec<u32> {
    static HIT: obs::LazyCounter = obs::LazyCounter::new("viewer.sort_cache.hit");
    static MISS: obs::LazyCounter = obs::LazyCounter::new("viewer.sort_cache.miss");
    static FULL_SORT: obs::LazySpan = obs::LazySpan::new("viewer.full_sort");
    let generation = view.generation();
    if let Some(order) = sort_cache.lookup(slot, key, generation) {
        HIT.add(1);
        return order;
    }
    MISS.add(1);
    let _span = FULL_SORT.open();
    let mut out = nodes(view);
    sort_nodes_with(view, labels, &mut out, key);
    sort_cache.insert(slot, key, view.generation(), out.clone());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_profiler::{generate_listings, Costs, ExecConfig, Op, ProgramBuilder};
    use callpath_workloads::pipeline;

    fn experiment() -> (Experiment, SourceStore) {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("app.c");
        let hot = b.declare("hot", f, 10);
        let cold = b.declare("cold", f, 20);
        let main = b.declare("main", f, 1);
        b.body(hot, vec![Op::work(11, Costs::cycles(90_000))]);
        b.body(cold, vec![Op::work(21, Costs::cycles(10_000))]);
        b.body(main, vec![Op::call(3, hot), Op::call(4, cold)]);
        b.entry(main);
        let program = b.build();
        let listings = generate_listings(&program);
        let exp = pipeline::build_experiment(&program, &ExecConfig::default());
        let store = SourceStore::from_texts(
            &exp.cct.names,
            listings.iter().map(|(n, t)| (n.as_str(), t.as_str())),
        );
        (exp, store)
    }

    #[test]
    fn starts_collapsed_at_top_level() {
        let (exp, store) = experiment();
        let mut s = Session::new(&exp, store);
        let text = s.render();
        assert!(text.contains("main"));
        assert!(
            !text.contains("hot\n"),
            "children hidden until expanded:\n{text}"
        );
        assert!(text.contains("▶"), "expandable marker");
    }

    #[test]
    fn top_down_discipline_rejects_deep_access() {
        let (exp, store) = experiment();
        let mut s = Session::new(&exp, store);
        // Find main's id and a grandchild id.
        let main = {
            let v = View::calling_context(&exp);
            v.roots()[0]
        };
        let grandchild = {
            let mut v = View::calling_context(&exp);
            let kid = v.children(main)[0];
            v.children(kid)[0]
        };
        assert!(s.apply(Command::Select(grandchild)).is_err());
        assert!(s.apply(Command::Expand(main)).is_ok());
        // Grandchild still invisible (its parent not expanded).
        assert!(s.apply(Command::Select(grandchild)).is_err());
        let child = {
            let mut v = View::calling_context(&exp);
            v.children(main)[0]
        };
        assert!(s.apply(Command::Expand(child)).is_ok());
        assert!(s.apply(Command::Select(grandchild)).is_ok());
    }

    #[test]
    fn hot_path_expands_and_selects() {
        let (exp, store) = experiment();
        let mut s = Session::new(&exp, store);
        s.apply(Command::HotPath).unwrap();
        let text = s.render();
        assert!(text.contains("🔥"), "{text}");
        assert!(text.contains("hot"), "hot subtree expanded:\n{text}");
        assert!(s.selected().is_some());
        // The selection's source shows in the pane.
        assert!(text.contains("--- app.c:"), "{text}");
    }

    #[test]
    fn threshold_preference_changes_hot_path() {
        let (exp, store) = experiment();
        let mut s = Session::new(&exp, store);
        assert!(s.apply(Command::SetThreshold(1.5)).is_err());
        s.apply(Command::SetThreshold(0.95)).unwrap();
        s.apply(Command::HotPath).unwrap();
        // With t=0.95, main(100%) -> hot(90%) fails the threshold: path
        // stops at main.
        let text = s.render();
        let flames = text.matches("🔥").count();
        assert_eq!(flames, 1, "{text}");
    }

    #[test]
    fn zoom_and_unzoom() {
        let (exp, store) = experiment();
        let mut s = Session::new(&exp, store);
        let main = {
            let v = View::calling_context(&exp);
            v.roots()[0]
        };
        let hot_frame = {
            let mut v = View::calling_context(&exp);
            v.children(main)[0]
        };
        s.apply(Command::Expand(main)).unwrap();
        s.apply(Command::Zoom(hot_frame)).unwrap();
        let text = s.render();
        assert!(
            !text.lines().any(|l| l.trim_start().starts_with("▶ main")),
            "{text}"
        );
        s.apply(Command::Unzoom).unwrap();
        assert!(s.render().contains("main"));
    }

    #[test]
    fn flatten_only_in_flat_view() {
        let (exp, store) = experiment();
        let mut s = Session::new(&exp, store);
        assert!(s.apply(Command::Flatten).is_err());
        s.apply(Command::SwitchView(ViewKind::Flat)).unwrap();
        s.apply(Command::Flatten).unwrap();
        let text = s.render();
        // One flatten strips the module: files at top level.
        assert!(text.lines().nth(2).unwrap().contains("app.c"), "{text}");
        s.apply(Command::Unflatten).unwrap();
        assert!(s.apply(Command::Unflatten).is_err());
    }

    #[test]
    fn view_state_is_independent_per_view() {
        let (exp, store) = experiment();
        let mut s = Session::new(&exp, store);
        s.apply(Command::HotPath).unwrap();
        assert!(s.selected().is_some());
        s.apply(Command::SwitchView(ViewKind::Callers)).unwrap();
        assert!(s.selected().is_none(), "fresh state in the callers view");
        s.apply(Command::SwitchView(ViewKind::CallingContext))
            .unwrap();
        assert!(s.selected().is_some(), "CCV state preserved");
    }

    #[test]
    fn collapse_hides_subtree_again() {
        let (exp, store) = experiment();
        let mut s = Session::new(&exp, store);
        let main = {
            let v = View::calling_context(&exp);
            v.roots()[0]
        };
        s.apply(Command::Expand(main)).unwrap();
        assert!(s.render().contains("hot"));
        s.apply(Command::Collapse(main)).unwrap();
        assert!(!s.render().contains("hot"));
    }

    #[test]
    fn sort_by_invalid_column_is_rejected() {
        let (exp, store) = experiment();
        let mut s = Session::new(&exp, store);
        assert!(s.apply(Command::SortBy(ColumnId(999))).is_err());
        assert!(s.apply(Command::SortBy(ColumnId(1))).is_ok());
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use callpath_profiler::{Costs, ExecConfig, Op, ProgramBuilder};
    use callpath_workloads::pipeline;

    fn experiment() -> Experiment {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("app.c");
        let alpha = b.declare("alpha", f, 10);
        let beta = b.declare("beta", f, 20);
        let main = b.declare("main", f, 1);
        b.body(alpha, vec![Op::work(11, Costs::cycles(10_000))]);
        b.body(beta, vec![Op::work(21, Costs::cycles(90_000))]);
        b.body(main, vec![Op::call(3, beta), Op::call(4, alpha)]);
        b.entry(main);
        pipeline::build_experiment(&b.build(), &ExecConfig::default())
    }

    #[test]
    fn hidden_columns_disappear_from_the_pane() {
        let exp = experiment();
        let mut s = Session::new(&exp, callpath_core::source::SourceStore::new());
        assert!(s.render().contains("PAPI_TOT_CYC (E)"));
        s.apply(Command::HideColumn(ColumnId(1))).unwrap();
        let text = s.render();
        assert!(!text.contains("PAPI_TOT_CYC (E)"), "{text}");
        assert!(text.contains("PAPI_TOT_CYC (I)"));
        s.apply(Command::ShowColumn(ColumnId(1))).unwrap();
        assert!(s.render().contains("PAPI_TOT_CYC (E)"));
        assert!(s.apply(Command::HideColumn(ColumnId(99))).is_err());
    }

    #[test]
    fn name_sorting_orders_alphabetically() {
        let exp = experiment();
        let mut s = Session::new(&exp, callpath_core::source::SourceStore::new());
        let main = {
            let v = View::calling_context(&exp);
            v.roots()[0]
        };
        s.apply(Command::Expand(main)).unwrap();
        // Metric sort: beta (90%) before alpha (10%).
        let text = s.render();
        assert!(text.find("beta").unwrap() < text.find("alpha").unwrap());
        // Name sort: alpha before beta.
        s.apply(Command::SortByName(true)).unwrap();
        let text = s.render();
        assert!(
            text.find("alpha").unwrap() < text.find("beta").unwrap(),
            "{text}"
        );
    }
}

#[cfg(test)]
mod find_tests {
    use super::*;
    use callpath_profiler::{Costs, ExecConfig, Op, ProgramBuilder};
    use callpath_workloads::pipeline;

    fn experiment() -> Experiment {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("app.c");
        let inner = b.declare("deeply_nested_target", f, 30);
        let mid = b.declare("mid", f, 20);
        let main = b.declare("main", f, 1);
        b.body(inner, vec![Op::work(31, Costs::cycles(1_000))]);
        b.body(mid, vec![Op::call(21, inner)]);
        b.body(main, vec![Op::call(3, mid)]);
        b.entry(main);
        pipeline::build_experiment(&b.build(), &ExecConfig::default())
    }

    #[test]
    fn find_expands_ancestors_and_selects() {
        let exp = experiment();
        let mut s = Session::new(&exp, callpath_core::source::SourceStore::new());
        assert!(!s.render().contains("deeply_nested_target"));
        s.apply(Command::Find("nested_target".into())).unwrap();
        let text = s.render();
        assert!(text.contains("deeply_nested_target"), "{text}");
        assert!(text.contains("»"), "selection marker: {text}");
        assert!(s.selected().is_some());
    }

    #[test]
    fn find_misses_report_an_error() {
        let exp = experiment();
        let mut s = Session::new(&exp, callpath_core::source::SourceStore::new());
        let err = s.apply(Command::Find("no_such_scope".into())).unwrap_err();
        assert!(err.contains("no_such_scope"));
        assert!(s.selected().is_none());
    }

    #[test]
    fn find_works_in_the_callers_view_too() {
        let exp = experiment();
        let mut s = Session::new(&exp, callpath_core::source::SourceStore::new());
        s.apply(Command::SwitchView(ViewKind::Callers)).unwrap();
        s.apply(Command::Find("deeply".into())).unwrap();
        assert!(s.render().contains("deeply_nested_target"));
    }
}
