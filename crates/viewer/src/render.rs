//! The tree-table renderer: navigation pane + metric pane as plain text.

use callpath_core::prelude::*;

/// How far to expand the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpandMode {
    /// Expand everything to `max_depth`.
    All,
    /// Expand only the top `n` levels.
    Levels(usize),
}

/// Rendering options.
#[derive(Debug, Clone)]
pub struct RenderConfig {
    /// Column to sort scopes by at every level (descending). `None` keeps
    /// tree order.
    pub sort: Option<ColumnId>,
    /// Sort by scope name instead of a metric (the paper's footnote 2:
    /// "the user can sort according to the source scopes in the
    /// navigation pane itself"). Overrides `sort`.
    pub sort_by_name: bool,
    /// Columns to show, in order. Empty = all visible columns.
    pub columns: Vec<ColumnId>,
    /// Grouped-column header: `(label, span)` pairs rendered as an
    /// extra line above the metric names, each label centered over the
    /// next `span` shown columns. The ensemble views use one group per
    /// base metric over its statistic columns, plus a `runs` group
    /// over per-run drill-down columns. Spans beyond the shown column
    /// count are clipped; empty means no group line.
    pub groups: Vec<(String, usize)>,
    /// How deep the tree expands.
    pub expand: ExpandMode,
    /// Hard depth cap.
    pub max_depth: usize,
    /// Show at most this many children per scope (the rest summarized as
    /// `… k more`). Keeps huge fan-outs readable.
    pub max_children: usize,
    /// Label column width.
    pub label_width: usize,
    /// Fused call-site/callee lines (Section V-B). With `false`, each
    /// called frame is preceded by a separate `called from <loc>` line —
    /// the paper's earlier design, kept for the ablation.
    pub fused: bool,
    /// Append `value%-of-aggregate` to each metric cell.
    pub show_percent: bool,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            sort: Some(ColumnId(0)),
            sort_by_name: false,
            columns: Vec::new(),
            groups: Vec::new(),
            expand: ExpandMode::All,
            max_depth: 64,
            max_children: 100,
            label_width: 44,
            fused: true,
            show_percent: true,
        }
    }
}

/// The call-site icon: the paper uses a box with a right-facing arrow;
/// we use a two-character arrow marker.
const CALL_ICON: &str = "↪ ";
/// Marker for scopes on a rendered hot path.
const HOT_ICON: &str = "🔥";
/// Marker for binary-only scopes (no source: rendered "in plain black").
const NO_SOURCE_MARK: &str = " †";

/// Truncate a column/metric name longer than 18 characters to
/// `{first 9}…{last 8}` — the tail usually carries the distinguishing
/// part (metric flavor, summary statistic). Single pass over the char
/// boundaries, no intermediate allocations; appends to `out`.
pub(crate) fn write_truncated_name(name: &str, out: &mut String) {
    let n_chars = name.chars().count();
    if n_chars <= 18 {
        out.push_str(name);
        return;
    }
    let head_end = name
        .char_indices()
        .nth(9)
        .map(|(i, _)| i)
        .unwrap_or(name.len());
    let tail_start = name
        .char_indices()
        .nth(n_chars - 8)
        .map(|(i, _)| i)
        .unwrap_or(name.len());
    out.push_str(&name[..head_end]);
    out.push('…');
    out.push_str(&name[tail_start..]);
}

struct Renderer<'v, 'e> {
    view: &'v mut View<'e>,
    cfg: RenderConfig,
    cols: Vec<ColumnId>,
    aggregates: Vec<f64>,
    out: String,
    hot: Vec<u32>,
    // Scratch buffers reused across rows: the row loop is the renderer's
    // hot path, and per-row `format!`/label clones dominated it before.
    // Labels are written straight out of the interned name table.
    label_buf: String,
    cells_buf: String,
    cell_buf: String,
    // Interned per-node labels: sort comparisons and tie-breaks share one
    // rendered label per node instead of allocating per comparison.
    labels: LabelCache,
}

impl Renderer<'_, '_> {
    /// Extra header line over grouped columns: each `(label, span)` in
    /// `cfg.groups` is centered over the next `span` column cells (19
    /// display chars each). Spans past the shown columns are clipped.
    fn group_line(&mut self) {
        if self.cfg.groups.is_empty() {
            return;
        }
        let mut line = " ".repeat(self.cfg.label_width + 4);
        let mut used = 0usize;
        let mut shown = String::new();
        for (label, span) in &self.cfg.groups {
            let span = (*span).min(self.cols.len().saturating_sub(used));
            if span == 0 {
                break;
            }
            used += span;
            let width = span * 19;
            shown.clear();
            write_truncated_name(label, &mut shown);
            while shown.chars().count() > width.saturating_sub(2) {
                shown.pop();
            }
            let pad = width - shown.chars().count();
            for _ in 0..pad / 2 {
                line.push(' ');
            }
            line.push_str(&shown);
            for _ in 0..pad - pad / 2 {
                line.push(' ');
            }
        }
        self.out.push_str(line.trim_end());
        self.out.push('\n');
    }

    fn header(&mut self) {
        use std::fmt::Write as _;
        self.group_line();
        let mut line = format!("{:width$}", "scope", width = self.cfg.label_width + 4);
        let descs = self.view.columns().descs().to_vec();
        let mut shown = String::new();
        for &c in &self.cols {
            // Long derived-metric names are truncated so the table stays
            // aligned; the full name is available via --list-columns /
            // the column descriptor.
            shown.clear();
            write_truncated_name(&descs[c.index()].name, &mut shown);
            let _ = write!(line, " {shown:>18}");
        }
        self.out.push_str(line.trim_end());
        self.out.push('\n');
        self.out
            .push_str(&"-".repeat(self.cfg.label_width + 4 + self.cols.len() * 19));
        self.out.push('\n');
    }

    /// Fill `cells_buf` with `n`'s metric cells, each right-aligned to 18
    /// display characters, without allocating.
    fn write_cells(&mut self, n: u32) {
        self.cells_buf.clear();
        for (i, &c) in self.cols.iter().enumerate() {
            let v = self.view.value(c, n);
            self.cell_buf.clear();
            if self.cfg.show_percent {
                format::write_metric_with_percent(v, self.aggregates[i], &mut self.cell_buf);
            } else {
                format::write_metric_value(v, &mut self.cell_buf);
            }
            self.cells_buf.push(' ');
            for _ in self.cell_buf.chars().count()..18 {
                self.cells_buf.push(' ');
            }
            self.cells_buf.push_str(&self.cell_buf);
        }
    }

    /// Emit one `indent label    cells` row for `n` straight into `out`.
    fn emit_row(&mut self, n: u32, depth: usize, flame: bool, mark_no_source: bool) {
        self.label_buf.clear();
        if flame {
            self.label_buf.push_str(HOT_ICON);
        }
        if self.view.is_call(n) && self.cfg.fused {
            self.label_buf.push_str(CALL_ICON);
        }
        self.view.write_label(n, &mut self.label_buf);
        if mark_no_source && !self.view.has_source(n) {
            self.label_buf.push_str(NO_SOURCE_MARK);
        }
        let width = self.cfg.label_width.saturating_sub(2 * depth);
        self.write_cells(n);
        for _ in 0..depth {
            self.out.push_str("  ");
        }
        format::write_fit(&self.label_buf, width, &mut self.out);
        self.out.push_str("    ");
        self.out.push_str(self.cells_buf.trim_end());
        self.out.push('\n');
    }

    fn node(&mut self, n: u32, depth: usize, remaining: usize) {
        if depth >= self.cfg.max_depth {
            return;
        }
        if !self.cfg.fused && self.view.is_call(n) {
            // Separate-lines mode: the call site gets its own row.
            if let Some(cs) = self.view.call_site(n) {
                use std::fmt::Write as _;
                self.label_buf.clear();
                let names = &self.view.experiment().cct.names;
                let _ = write!(
                    self.label_buf,
                    "call at {}:{}",
                    names.file_name(cs.file),
                    cs.line
                );
                for _ in 0..depth {
                    self.out.push_str("  ");
                }
                format::write_fit(&self.label_buf, self.cfg.label_width, &mut self.out);
                self.out.push('\n');
            }
        }
        self.emit_row(n, depth, self.hot.contains(&n), true);

        if remaining == 0 {
            return;
        }
        let mut kids = self.view.children(n);
        let total = kids.len();
        let shown = total.min(self.cfg.max_children);
        self.sort_visible(&mut kids, shown);
        let hidden = total - shown;
        for &k in kids.iter().take(shown) {
            self.node(k, depth + 1, remaining - 1);
        }
        if hidden > 0 {
            let indent = "  ".repeat(depth + 1);
            self.out
                .push_str(&std::format!("{indent}… {hidden} more\n"));
        }
    }

    /// Order `nodes` so the first `shown` are what the pane displays.
    /// Metric sorts over a truncated fan-out use top-k partial selection
    /// (only the visible window is fully ordered — identical prefix to a
    /// stable full sort); full expansion falls back to a full stable sort.
    fn sort_visible(&mut self, nodes: &mut Vec<u32>, shown: usize) {
        static BY_NAME: callpath_obs::LazyCounter =
            callpath_obs::LazyCounter::new("viewer.sort.name");
        static TOPK: callpath_obs::LazyCounter = callpath_obs::LazyCounter::new("viewer.sort.topk");
        static FULL: callpath_obs::LazyCounter = callpath_obs::LazyCounter::new("viewer.sort.full");
        if self.cfg.sort_by_name {
            BY_NAME.add(1);
            sort_nodes_with(self.view, &mut self.labels, nodes, SortKey::Name);
        } else if let Some(c) = self.cfg.sort {
            if shown < nodes.len() {
                TOPK.add(1);
                top_k_by_column(
                    self.view,
                    &mut self.labels,
                    nodes,
                    c,
                    SortDir::Descending,
                    shown,
                );
            } else {
                FULL.add(1);
                sort_nodes_with(
                    self.view,
                    &mut self.labels,
                    nodes,
                    SortKey::Column {
                        column: c,
                        dir: SortDir::Descending,
                    },
                );
            }
        }
    }

    fn run(&mut self, roots: &[u32]) {
        self.header();
        let mut roots = roots.to_vec();
        let total = roots.len();
        let shown = total.min(self.cfg.max_children);
        self.sort_visible(&mut roots, shown);
        let levels = match self.cfg.expand {
            ExpandMode::All => usize::MAX,
            ExpandMode::Levels(n) => n,
        };
        for &r in roots.iter().take(shown) {
            self.node(r, 0, levels.saturating_sub(1));
        }
        if total > shown {
            self.out
                .push_str(&std::format!("… {} more\n", total - shown));
        }
    }
}

fn make_renderer<'v, 'e>(view: &'v mut View<'e>, cfg: &RenderConfig) -> Renderer<'v, 'e> {
    let available = view.columns().column_count();
    let cols: Vec<ColumnId> = if cfg.columns.is_empty() {
        view.columns().visible_columns().collect()
    } else {
        // Out-of-range requests are dropped rather than panicking; the
        // header simply omits them.
        cfg.columns
            .iter()
            .copied()
            .filter(|c| c.index() < available)
            .collect()
    };
    let aggregates: Vec<f64> = cols
        .iter()
        .map(|&c| view.experiment().aggregate(c))
        .collect();
    Renderer {
        view,
        cfg: cfg.clone(),
        cols,
        aggregates,
        out: String::new(),
        hot: Vec::new(),
        label_buf: String::new(),
        cells_buf: String::new(),
        cell_buf: String::new(),
        labels: LabelCache::new(),
    }
}

/// Render a whole view.
pub fn render(view: &mut View<'_>, cfg: &RenderConfig) -> String {
    let roots = view.roots();
    let mut r = make_renderer(view, cfg);
    r.run(&roots);
    r.out
}

/// Render a zoomed subtree rooted at `start`.
pub fn render_subtree(view: &mut View<'_>, start: u32, cfg: &RenderConfig) -> String {
    let mut r = make_renderer(view, cfg);
    r.run(&[start]);
    r.out
}

/// Render starting from an explicit root list — used with
/// [`callpath_core::flat::flatten`] to present a flattened Flat View.
pub fn render_flattened(view: &mut View<'_>, roots: &[u32], cfg: &RenderConfig) -> String {
    let mut r = make_renderer(view, cfg);
    r.run(roots);
    r.out
}

/// Run hot-path analysis from `start` on column `col` and render only the
/// path (plus each path scope's immediate children for context), marking
/// path members with the flame icon.
pub fn render_hot_path(
    view: &mut View<'_>,
    start: u32,
    col: ColumnId,
    hot_cfg: HotPathConfig,
    cfg: &RenderConfig,
) -> String {
    let path = view.hot_path(start, col, hot_cfg);
    let mut r = make_renderer(view, cfg);
    r.hot = path.clone();
    r.header();
    for (depth, &n) in path.iter().enumerate() {
        // Render the path node, then (unless it continues) stop.
        let is_last = depth + 1 == path.len();
        r.emit_row(n, depth, true, true);
        if is_last {
            // Show where the path went cold: the children that each fell
            // below the threshold. Only the shown window needs ordering.
            let mut kids = r.view.children(n);
            let shown = kids.len().min(r.cfg.max_children.min(5));
            if let Some(c) = r.cfg.sort {
                top_k_by_column(
                    r.view,
                    &mut r.labels,
                    &mut kids,
                    c,
                    SortDir::Descending,
                    shown,
                );
            }
            for k in kids.into_iter().take(shown) {
                r.emit_row(k, depth + 1, false, false);
            }
        }
    }
    r.out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny experiment: main -> {hot (90), cold (10)}.
    fn sample() -> Experiment {
        let mut names = NameTable::new();
        let file = names.file("app.c");
        let module = names.module("app");
        let p_main = names.proc("main");
        let p_hot = names.proc("hot");
        let p_cold = names.proc("cold");
        let mut cct = Cct::new(names);
        let root = cct.root();
        let fr = |proc, line, cs: Option<u32>| ScopeKind::Frame {
            proc,
            module,
            def: SourceLoc::new(file, line),
            call_site: cs.map(|l| SourceLoc::new(file, l)),
        };
        let main = cct.add_child(root, fr(p_main, 1, None));
        let hot = cct.add_child(main, fr(p_hot, 10, Some(2)));
        let cold = cct.add_child(main, fr(p_cold, 20, Some(3)));
        let sh = cct.add_child(
            hot,
            ScopeKind::Stmt {
                loc: SourceLoc::new(file, 11),
            },
        );
        let sc = cct.add_child(
            cold,
            ScopeKind::Stmt {
                loc: SourceLoc::new(file, 21),
            },
        );
        let mut raw = RawMetrics::new(StorageKind::Dense);
        let cyc = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
        raw.add_cost(cyc, sh, 90.0);
        raw.add_cost(cyc, sc, 10.0);
        Experiment::build(cct, raw, StorageKind::Dense)
    }

    #[test]
    fn group_line_spans_and_clips_columns() {
        let exp = sample();
        let mut view = View::calling_context(&exp);
        let cfg = RenderConfig {
            // Three groups over two shown columns: the second is clipped
            // to one column, the third dropped entirely.
            groups: vec![("cycles".into(), 1), ("runs".into(), 4), ("gone".into(), 2)],
            ..RenderConfig::default()
        };
        let text = render(&mut view, &cfg);
        let group = text.lines().next().unwrap();
        assert!(group.contains("cycles"), "{text}");
        assert!(group.contains("runs"), "{text}");
        assert!(!group.contains("gone"), "{text}");
        assert!(group.find("cycles").unwrap() < group.find("runs").unwrap());
        // Without groups the first line is the plain column header.
        let plain = render(&mut view, &RenderConfig::default());
        assert!(plain.lines().next().unwrap().starts_with("scope"));
    }

    #[test]
    fn renders_sorted_tree_with_columns() {
        let exp = sample();
        let mut view = View::calling_context(&exp);
        let text = render(&mut view, &RenderConfig::default());
        assert!(text.contains("cycles (I)"));
        let hot_pos = text.find("hot").unwrap();
        let cold_pos = text.find("cold").unwrap();
        assert!(hot_pos < cold_pos, "sorted descending:\n{text}");
        // Percentages of the aggregate appear.
        assert!(text.contains("90.0%"), "{text}");
    }

    #[test]
    fn zero_cells_are_blank() {
        let exp = sample();
        let mut view = View::calling_context(&exp);
        let text = render(&mut view, &RenderConfig::default());
        // main's exclusive is zero: its row must contain exactly one
        // numeric cell (the inclusive one).
        let main_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("main"))
            .unwrap();
        let numbers = main_line.matches("e").count();
        // "1.00e2" appears once for the inclusive column only.
        assert_eq!(main_line.matches("1.00e2").count(), 1);
        assert!(numbers >= 1);
        assert!(
            !main_line.contains("0.00e0"),
            "zeros must be blank: {main_line}"
        );
    }

    #[test]
    fn call_icon_marks_called_frames() {
        let exp = sample();
        let mut view = View::calling_context(&exp);
        let text = render(&mut view, &RenderConfig::default());
        let hot_line = text.lines().find(|l| l.contains("hot")).unwrap();
        assert!(hot_line.contains("↪"), "{hot_line}");
        let main_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("main"))
            .unwrap();
        assert!(!main_line.contains("↪"));
    }

    #[test]
    fn separate_lines_mode_doubles_call_rows() {
        let exp = sample();
        let mut view = View::calling_context(&exp);
        let fused = render(&mut view, &RenderConfig::default());
        let mut view2 = View::calling_context(&exp);
        let separate = render(
            &mut view2,
            &RenderConfig {
                fused: false,
                ..Default::default()
            },
        );
        let fused_rows = fused.lines().count();
        let separate_rows = separate.lines().count();
        // Two called frames => two extra "call at" rows.
        assert_eq!(separate_rows, fused_rows + 2, "{separate}");
        assert!(separate.contains("call at app.c:2"));
    }

    #[test]
    fn expansion_levels_limit_depth() {
        let exp = sample();
        let mut view = View::calling_context(&exp);
        let text = render(
            &mut view,
            &RenderConfig {
                expand: ExpandMode::Levels(1),
                ..Default::default()
            },
        );
        assert!(text.contains("main"));
        assert!(
            !text.contains("hot"),
            "children must stay collapsed:\n{text}"
        );
    }

    #[test]
    fn hot_path_rendering_marks_the_path() {
        let exp = sample();
        let mut view = View::calling_context(&exp);
        let roots = view.roots();
        let text = render_hot_path(
            &mut view,
            roots[0],
            ColumnId(0),
            HotPathConfig::default(),
            &RenderConfig::default(),
        );
        assert!(text.contains("🔥"));
        let flames = text.matches("🔥").count();
        assert_eq!(flames, 3, "main -> hot -> stmt:\n{text}");
        assert!(!text.lines().any(|l| l.contains("cold") && l.contains("🔥")));
    }

    #[test]
    fn max_children_truncates_fanout() {
        // Build a root with many children.
        let mut names = NameTable::new();
        let file = names.file("x.c");
        let module = names.module("x");
        let procs: Vec<ProcId> = (0..30).map(|i| names.proc(&std::format!("p{i}"))).collect();
        let p_main = names.proc("main");
        let mut cct = Cct::new(names);
        let root = cct.root();
        let main = cct.add_child(
            root,
            ScopeKind::Frame {
                proc: p_main,
                module,
                def: SourceLoc::new(file, 1),
                call_site: None,
            },
        );
        let mut raw = RawMetrics::new(StorageKind::Dense);
        let cyc = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
        for (i, &p) in procs.iter().enumerate() {
            let f = cct.add_child(
                main,
                ScopeKind::Frame {
                    proc: p,
                    module,
                    def: SourceLoc::new(file, 10 + i as u32),
                    call_site: Some(SourceLoc::new(file, 2)),
                },
            );
            let s = cct.add_child(
                f,
                ScopeKind::Stmt {
                    loc: SourceLoc::new(file, 100 + i as u32),
                },
            );
            raw.add_cost(cyc, s, 1.0 + i as f64);
        }
        let exp = Experiment::build(cct, raw, StorageKind::Dense);
        let mut view = View::calling_context(&exp);
        let text = render(
            &mut view,
            &RenderConfig {
                max_children: 5,
                expand: ExpandMode::Levels(2),
                ..Default::default()
            },
        );
        assert!(text.contains("… 25 more"), "{text}");
    }

    #[test]
    fn flattened_render_uses_custom_roots() {
        let exp = sample();
        let flat = FlatView::build(&exp, StorageKind::Dense);
        let roots = flat.tree.roots();
        let once = flatten_once(&flat.tree, &roots);
        let ids: Vec<u32> = once.iter().map(|n| n.0).collect();
        let mut view = View::Flat {
            exp: &exp,
            view: flat,
        };
        let text = render_flattened(&mut view, &ids, &RenderConfig::default());
        // Flattening the module level exposes the file directly.
        assert!(text.starts_with("scope"));
        assert!(text.contains("app.c"));
        assert!(
            !text.lines().nth(2).unwrap().contains("app "),
            "module row elided"
        );
    }

    #[test]
    fn binary_only_scopes_are_marked() {
        let mut names = NameTable::new();
        let file = names.file("<unknown>");
        let module = names.module("rt");
        let p = names.proc("__libc_start_main");
        let mut cct = Cct::new(names);
        let root = cct.root();
        let f = cct.add_child(
            root,
            ScopeKind::Frame {
                proc: p,
                module,
                def: SourceLoc::new(file, 0), // line 0 = no source
                call_site: None,
            },
        );
        let s = cct.add_child(
            f,
            ScopeKind::Stmt {
                loc: SourceLoc::new(file, 0),
            },
        );
        let mut raw = RawMetrics::new(StorageKind::Dense);
        let cyc = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
        raw.add_cost(cyc, s, 5.0);
        let exp = Experiment::build(cct, raw, StorageKind::Dense);
        let mut view = View::calling_context(&exp);
        let text = render(&mut view, &RenderConfig::default());
        assert!(text.contains("__libc_start_main †"), "{text}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let exp = sample();
        let a = render(&mut View::calling_context(&exp), &RenderConfig::default());
        let b = render(&mut View::calling_context(&exp), &RenderConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_names_keep_head_and_tail() {
        let shown = |name: &str| {
            let mut out = String::new();
            write_truncated_name(name, &mut out);
            out
        };
        // At or under 18 chars: untouched.
        assert_eq!(shown(""), "");
        assert_eq!(shown("PAPI_TOT_CYC (I)"), "PAPI_TOT_CYC (I)");
        assert_eq!(shown("exactly_18_chars__"), "exactly_18_chars__");
        // Over 18: first 9 + ellipsis + last 8, counted in chars.
        assert_eq!(shown("PAPI_TOT_CYC (I) mean"), "PAPI_TOT_…(I) mean");
        assert_eq!(shown("PAPI_TOT_CYC (I) mean").chars().count(), 18);
        // Multi-byte chars truncate on char boundaries, not bytes.
        let cyrillic = "цццццццццц_metric_(E)_stddev";
        let t = shown(cyrillic);
        assert_eq!(t.chars().count(), 18);
        assert!(t.starts_with("ццццццццц"));
        assert!(t.ends_with(")_stddev"));
    }
}
