//! The recovery pass: binary image → static structure tree.

use callpath_profiler::{Addr, Binary, InstrKind, LineInfo};
use serde::{Deserialize, Serialize};

/// A recovered static scope inside a procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Scope {
    /// A loop discovered from a backward branch. `header` is the source
    /// location of the loop (taken from the branch instruction's line-map
    /// entry, which the compiler points at the loop header).
    Loop {
        /// Source location of the loop (from the branch's line-map entry).
        header: LineInfo,
    },
    /// An inlined procedure body.
    Inline {
        /// Name of the inlined procedure.
        callee_name: String,
        /// Its defining file index.
        callee_file: usize,
        /// Its first definition line.
        callee_def_line: u32,
        /// Where it was inlined into the host.
        call_site: LineInfo,
    },
}

/// A node in a procedure's scope tree. Ranges are half-open `[lo, hi)` and
/// properly nested; children are stored by index into
/// [`ProcStructure::nodes`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeNode {
    /// What the scope is.
    pub scope: Scope,
    /// First covered address (inclusive).
    pub lo: Addr,
    /// End of the covered range (exclusive).
    pub hi: Addr,
    /// Nested scopes, by index into [`ProcStructure::nodes`].
    pub children: Vec<usize>,
}

/// Recovered structure of one procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcStructure {
    /// Procedure name.
    pub name: String,
    /// Defining file index.
    pub file: usize,
    /// First source line of the definition.
    pub def_line: u32,
    /// Entry address (inclusive).
    pub lo: Addr,
    /// End address (exclusive).
    pub hi: Addr,
    /// False for binary-only routines.
    pub has_source: bool,
    /// Load module name; `None` = the main module.
    pub module: Option<String>,
    /// All scope nodes of this procedure.
    pub nodes: Vec<ScopeNode>,
    /// Indices of top-level scopes (directly inside the procedure).
    pub top: Vec<usize>,
}

impl ProcStructure {
    /// Scope chain containing `addr`, outermost first.
    pub fn scope_chain(&self, addr: Addr) -> Vec<usize> {
        let mut chain = Vec::new();
        let mut level = &self.top;
        'outer: loop {
            for &i in level {
                let n = &self.nodes[i];
                if n.lo <= addr && addr < n.hi {
                    chain.push(i);
                    level = &self.nodes[i].children;
                    continue 'outer;
                }
            }
            return chain;
        }
    }
}

/// Recovered structure of a whole load module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Structure {
    /// Main load-module name.
    pub module: String,
    /// Source file names, index = file id.
    pub files: Vec<String>,
    /// Per-procedure recovered structure, ascending address order.
    pub procs: Vec<ProcStructure>,
    /// Copy of the binary's line map (structure files ship the line map to
    /// the correlation tool).
    pub line_map: Vec<LineInfo>,
}

impl Structure {
    /// Line-map entry of the instruction at `addr`.
    pub fn line_of(&self, addr: Addr) -> LineInfo {
        self.line_map[addr as usize]
    }

    /// Procedure containing `addr` (bounds are sorted and disjoint).
    pub fn proc_at(&self, addr: Addr) -> Option<usize> {
        let i = self.procs.partition_point(|p| p.hi <= addr);
        (i < self.procs.len() && self.procs[i].lo <= addr).then_some(i)
    }

    /// Scope chain (outermost first) of the scopes containing `addr`, as
    /// `(proc index, node indices within that proc)`.
    pub fn scope_chain(&self, addr: Addr) -> Option<(usize, Vec<usize>)> {
        let p = self.proc_at(addr)?;
        Some((p, self.procs[p].scope_chain(addr)))
    }

    /// Total number of recovered scopes (for stats and tests).
    pub fn scope_count(&self) -> usize {
        self.procs.iter().map(|p| p.nodes.len()).sum()
    }
}

/// Half-recovered interval, before tree construction.
#[derive(Debug, Clone)]
struct Interval {
    lo: Addr,
    hi: Addr,
    scope: Scope,
    /// When a loop range and an inline range have identical bounds, the
    /// inline splice wrapped a body that ends with its own loop's branch,
    /// so the inline is the *outer* scope: inlines get priority 0, loops
    /// 1, and the sort puts the inline outside.
    priority: u8,
}

/// Recover static structure from a binary image.
///
/// Loops: every `Branch { target }` instruction at address `a` with
/// `target <= a` closes a loop spanning `[target, a]`; each back edge is
/// one loop (our lowering emits exactly one branch per counted loop).
///
/// The recovered intervals (loops + inline ranges) must be properly
/// nested; crossing ranges indicate a corrupt image and are reported as an
/// error.
pub fn recover(binary: &Binary) -> Result<Structure, String> {
    let mut procs = Vec::with_capacity(binary.procs.len());
    for bp in &binary.procs {
        let mut intervals: Vec<Interval> = Vec::new();
        // Loop discovery from backward branches. Each back edge closes one
        // loop spanning [target, branch]. Nested loops whose bodies start
        // at the same instruction share a target address; they stay
        // distinct loops (with identical `lo` and different `hi`), which
        // the containment sort below nests correctly.
        for a in bp.lo..bp.hi {
            if let InstrKind::Branch { target, .. } = binary.instr(a).kind {
                intervals.push(Interval {
                    lo: target,
                    hi: a + 1,
                    scope: Scope::Loop {
                        header: binary.instr(a).loc,
                    },
                    priority: 1,
                });
            }
        }
        // Inline ranges within this procedure.
        for r in &binary.inline_ranges {
            if r.lo >= bp.lo && r.hi <= bp.hi {
                intervals.push(Interval {
                    lo: r.lo,
                    hi: r.hi,
                    scope: Scope::Inline {
                        callee_name: r.callee_name.clone(),
                        callee_file: r.callee_file,
                        callee_def_line: r.callee_def_line,
                        call_site: r.call_site,
                    },
                    priority: 0,
                });
            }
        }
        // Sort outermost-first: by lo ascending, then size descending,
        // then inline-before-loop for equal ranges.
        intervals.sort_by(|x, y| {
            x.lo.cmp(&y.lo)
                .then((y.hi - y.lo).cmp(&(x.hi - x.lo)))
                .then(x.priority.cmp(&y.priority))
        });
        // Stack-based nesting.
        let mut nodes: Vec<ScopeNode> = Vec::with_capacity(intervals.len());
        let mut top: Vec<usize> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        for iv in intervals {
            while let Some(&t) = stack.last() {
                if iv.lo >= nodes[t].hi {
                    stack.pop();
                } else if iv.hi > nodes[t].hi {
                    return Err(format!(
                        "crossing scope ranges in {}: [{},{}) vs [{},{})",
                        bp.name, iv.lo, iv.hi, nodes[t].lo, nodes[t].hi
                    ));
                } else {
                    break;
                }
            }
            let idx = nodes.len();
            nodes.push(ScopeNode {
                scope: iv.scope,
                lo: iv.lo,
                hi: iv.hi,
                children: Vec::new(),
            });
            match stack.last() {
                Some(&parent) => nodes[parent].children.push(idx),
                None => top.push(idx),
            }
            stack.push(idx);
        }
        procs.push(ProcStructure {
            name: bp.name.clone(),
            file: bp.file,
            def_line: bp.def_line,
            lo: bp.lo,
            hi: bp.hi,
            has_source: bp.has_source,
            module: bp.module.clone(),
            nodes,
            top,
        });
    }
    Ok(Structure {
        module: binary.module.clone(),
        files: binary.files.clone(),
        procs,
        line_map: binary.code.iter().map(|i| i.loc).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_profiler::{lower, Costs, Op, ProgramBuilder};

    fn recover_program(build: impl FnOnce(&mut ProgramBuilder)) -> (Binary, Structure) {
        let mut b = ProgramBuilder::new("app");
        build(&mut b);
        let bin = lower(&b.build());
        let s = recover(&bin).expect("recovery");
        (bin, s)
    }

    #[test]
    fn recovers_nested_loops() {
        let (_bin, s) = recover_program(|b| {
            let f = b.file("file2.c");
            let h = b.declare("h", f, 7);
            b.body(
                h,
                vec![Op::looped(
                    8,
                    2,
                    vec![Op::looped(9, 4, vec![Op::work(9, Costs::cycles(1))])],
                )],
            );
            b.entry(h);
        });
        let p = &s.procs[0];
        assert_eq!(p.nodes.len(), 2);
        assert_eq!(p.top.len(), 1);
        let outer = &p.nodes[p.top[0]];
        assert!(matches!(outer.scope, Scope::Loop { header } if header.line == 8));
        assert_eq!(outer.children.len(), 1);
        let inner = &p.nodes[outer.children[0]];
        assert!(matches!(inner.scope, Scope::Loop { header } if header.line == 9));
        assert!(inner.lo >= outer.lo && inner.hi <= outer.hi);
    }

    #[test]
    fn scope_chain_is_outermost_first() {
        let (bin, s) = recover_program(|b| {
            let f = b.file("a.c");
            let h = b.declare("h", f, 7);
            b.body(
                h,
                vec![Op::looped(
                    8,
                    2,
                    vec![Op::looped(9, 4, vec![Op::work(10, Costs::cycles(1))])],
                )],
            );
            b.entry(h);
        });
        // The work instruction is the first one of proc 0.
        let work_addr = bin.procs[0].lo;
        let (p, chain) = s.scope_chain(work_addr).unwrap();
        assert_eq!(p, 0);
        assert_eq!(chain.len(), 2);
        let lines: Vec<u32> = chain
            .iter()
            .map(|&i| match s.procs[0].nodes[i].scope {
                Scope::Loop { header } => header.line,
                _ => 0,
            })
            .collect();
        assert_eq!(lines, vec![8, 9]);
    }

    #[test]
    fn recovers_inline_tree_inside_loop() {
        let (bin, s) = recover_program(|b| {
            let f1 = b.file("mesh.cc");
            let f2 = b.file("stl_tree.h");
            let cmp = b.declare("SequenceCompare", f2, 300);
            let find = b.declare("rb_find", f2, 200);
            let get = b.declare("get_coords", f1, 680);
            b.body(cmp, vec![Op::work(301, Costs::memory(20, 5))]);
            b.body(
                find,
                vec![Op::looped(201, 8, vec![Op::call_inline(202, cmp)])],
            );
            b.body(
                get,
                vec![Op::looped(685, 100, vec![Op::call_inline(686, find)])],
            );
            b.entry(get);
        });
        let get_idx = s.procs.iter().position(|p| p.name == "get_coords").unwrap();
        let p = &s.procs[get_idx];
        // Top scope: the loop at 685; inside it the inlined rb_find; inside
        // that the inlined search loop at 201; inside that SequenceCompare.
        assert_eq!(p.top.len(), 1);
        let l = &p.nodes[p.top[0]];
        assert!(matches!(l.scope, Scope::Loop { header } if header.line == 685));
        let inl_find = &p.nodes[l.children[0]];
        assert!(
            matches!(&inl_find.scope, Scope::Inline { callee_name, .. } if callee_name == "rb_find")
        );
        let search_loop = &p.nodes[inl_find.children[0]];
        assert!(matches!(search_loop.scope, Scope::Loop { header } if header.line == 201));
        let inl_cmp = &p.nodes[search_loop.children[0]];
        assert!(
            matches!(&inl_cmp.scope, Scope::Inline { callee_name, .. } if callee_name == "SequenceCompare")
        );
        let _ = bin;
    }

    #[test]
    fn straight_line_proc_has_no_scopes() {
        let (_bin, s) = recover_program(|b| {
            let f = b.file("a.c");
            let m = b.declare("m", f, 1);
            b.body(m, vec![Op::work(2, Costs::cycles(5))]);
            b.entry(m);
        });
        assert_eq!(s.procs[0].nodes.len(), 0);
        assert_eq!(s.scope_count(), 0);
    }

    #[test]
    fn line_map_is_preserved() {
        let (bin, s) = recover_program(|b| {
            let f = b.file("a.c");
            let m = b.declare("m", f, 1);
            b.body(m, vec![Op::work(42, Costs::cycles(5))]);
            b.entry(m);
        });
        let work_addr = bin.procs[0].lo;
        assert_eq!(s.line_of(work_addr).line, 42);
        assert_eq!(s.line_map.len(), bin.code.len());
    }

    #[test]
    fn proc_lookup_matches_binary() {
        let (bin, s) = recover_program(|b| {
            let f = b.file("a.c");
            let m = b.declare("m", f, 1);
            let g = b.declare("g", f, 10);
            b.body(m, vec![Op::call(2, g)]);
            b.body(g, vec![Op::work(11, Costs::cycles(1))]);
            b.entry(m);
        });
        for a in 0..bin.code.len() as Addr {
            assert_eq!(s.proc_at(a), bin.proc_at(a), "addr {a}");
        }
    }

    #[test]
    fn call_inside_loop_is_detectable() {
        // The paper's Fig. 3 point: call sites nested within loops.
        let (bin, s) = recover_program(|b| {
            let f = b.file("integrate_erk.f90");
            let rhsf = b.declare("rhsf", f, 200);
            let main = b.declare("integrate", f, 80);
            b.body(rhsf, vec![Op::work(201, Costs::cycles(10))]);
            b.body(main, vec![Op::looped(82, 5, vec![Op::call(83, rhsf)])]);
            b.entry(main);
        });
        // Find the call instruction.
        let call_addr = (0..bin.code.len() as Addr)
            .find(|&a| matches!(bin.instr(a).kind, InstrKind::Call { .. }))
            .unwrap();
        let (p, chain) = s.scope_chain(call_addr).unwrap();
        assert_eq!(s.procs[p].name, "integrate");
        assert_eq!(chain.len(), 1, "the call sits inside one loop");
        assert!(
            matches!(s.procs[p].nodes[chain[0]].scope, Scope::Loop { header } if header.line == 82)
        );
    }
}
