#![warn(missing_docs)]
//! # callpath-structure
//!
//! Static program-structure recovery from a lowered binary image — the
//! `hpcstruct` substitute.
//!
//! Given only what a real binary exposes — instruction stream, procedure
//! bounds, line map, DWARF-style inline records — this crate rebuilds the
//! static structure `hpcprof` needs to fuse with dynamic call chains:
//!
//! * **loops**, rediscovered from backward branches (a counted loop leaves
//!   no other trace in the image);
//! * **inline trees**, from the nesting of inline ranges;
//! * a per-instruction **scope chain** query ([`Structure::scope_chain`])
//!   that answers "which loops and inlined bodies contain this address?" —
//!   the fact the paper uses to show call sites nested within loops in the
//!   Calling Context View (Section III-D).

pub mod recover;

pub use recover::{recover, ProcStructure, Scope, ScopeNode, Structure};
