//! Load-imbalance presentation: Fig. 7's three per-process charts
//! (scatter, sorted, histogram) as deterministic ASCII, plus scalar
//! statistics.

use callpath_core::prelude::Welford;

/// Scalar imbalance signals for a per-rank value series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImbalanceStats {
    /// Mean per-rank value.
    pub mean: f64,
    /// Fastest rank's value.
    pub min: f64,
    /// Slowest rank's value.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation (stddev / mean).
    pub cov: f64,
    /// `max / mean - 1`: the classic "percent of time the slowest rank
    /// makes everyone wait".
    pub imbalance_factor: f64,
}

impl ImbalanceStats {
    /// Compute the statistics of a per-rank series.
    pub fn of(values: &[f64]) -> ImbalanceStats {
        let mut w = Welford::new();
        for &v in values {
            w.push(v);
        }
        let mean = w.mean();
        ImbalanceStats {
            mean,
            min: w.min(),
            max: w.max(),
            std_dev: w.std_dev(),
            cov: w.coeff_of_variation(),
            imbalance_factor: if mean == 0.0 {
                0.0
            } else {
                w.max() / mean - 1.0
            },
        }
    }
}

/// Bin a value series: returns `(lo, hi, count)` per bin.
pub fn histogram(values: &[f64], bins: usize) -> Vec<(f64, f64, usize)> {
    assert!(bins > 0);
    if values.is_empty() {
        return Vec::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let width = if max > min {
        (max - min) / bins as f64
    } else {
        1.0
    };
    let mut counts = vec![0usize; bins];
    for &v in values {
        let mut b = ((v - min) / width) as usize;
        if b >= bins {
            b = bins - 1;
        }
        counts[b] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (min + i as f64 * width, min + (i + 1) as f64 * width, c))
        .collect()
}

fn scale_to_rows(v: f64, lo: f64, hi: f64, rows: usize) -> usize {
    if hi <= lo {
        return 0;
    }
    let t = (v - lo) / (hi - lo);
    ((t * (rows - 1) as f64).round() as usize).min(rows - 1)
}

/// Fig. 7 top chart: per-rank values in rank order (a scatter showing the
/// "scattered inclusive total cycles").
pub fn ascii_scatter(values: &[f64], width: usize, height: usize) -> String {
    chart(values, width, height, false)
}

/// Fig. 7 middle chart: the same values sorted ascending, making the
/// bimodal step visible.
pub fn ascii_sorted(values: &[f64], width: usize, height: usize) -> String {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    chart(&sorted, width, height, true)
}

fn chart(values: &[f64], width: usize, height: usize, line: bool) -> String {
    assert!(width >= 2 && height >= 2);
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut grid = vec![vec![' '; width]; height];
    let n = values.len();
    for (i, &v) in values.iter().enumerate() {
        let x = if n == 1 { 0 } else { i * (width - 1) / (n - 1) };
        let y = scale_to_rows(v, lo, hi, height);
        let row = height - 1 - y;
        grid[row][x] = if line { '▪' } else { '·' };
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{hi:>10.3e} ")
        } else if r == height - 1 {
            format!("{lo:>10.3e} ")
        } else {
            " ".repeat(11)
        };
        out.push_str(&label);
        out.push('|');
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!(
        "{}+{}\n{} ranks 0..{}\n",
        " ".repeat(11),
        "-".repeat(width),
        " ".repeat(12),
        n - 1
    ));
    out
}

/// Fig. 7 bottom chart: histogram of per-rank values.
pub fn ascii_histogram(values: &[f64], bins: usize, bar_width: usize) -> String {
    let h = histogram(values, bins);
    let max_count = h.iter().map(|&(_, _, c)| c).max().unwrap_or(0).max(1);
    let mut out = String::new();
    for (lo, hi, count) in h {
        let bar = "#".repeat(count * bar_width / max_count);
        out.push_str(&format!("[{lo:>10.3e}, {hi:>10.3e})  {bar} {count}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bimodal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| if i % 2 == 0 { 100.0 } else { 160.0 })
            .collect()
    }

    #[test]
    fn stats_capture_imbalance() {
        let s = ImbalanceStats::of(&bimodal(64));
        assert_eq!(s.min, 100.0);
        assert_eq!(s.max, 160.0);
        assert_eq!(s.mean, 130.0);
        assert!((s.imbalance_factor - (160.0 / 130.0 - 1.0)).abs() < 1e-12);
        assert!(s.cov > 0.2);
    }

    #[test]
    fn balanced_series_has_zero_factor() {
        let s = ImbalanceStats::of(&[42.0; 16]);
        assert_eq!(s.imbalance_factor, 0.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn histogram_is_bimodal_for_bimodal_data() {
        let h = histogram(&bimodal(64), 6);
        assert_eq!(h.len(), 6);
        let total: usize = h.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total, 64);
        assert_eq!(h[0].2, 32, "low mode in first bin");
        assert_eq!(h[5].2, 32, "high mode in last bin");
        assert!(h[2].2 == 0 && h[3].2 == 0, "empty middle");
    }

    #[test]
    fn histogram_handles_constant_data() {
        let h = histogram(&[5.0; 10], 4);
        let total: usize = h.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn charts_render_and_are_deterministic() {
        let vals = bimodal(32);
        let a = ascii_scatter(&vals, 40, 8);
        let b = ascii_scatter(&vals, 40, 8);
        assert_eq!(a, b);
        assert!(a.contains('·'));
        let s = ascii_sorted(&vals, 40, 8);
        assert!(s.contains('▪'));
        let h = ascii_histogram(&vals, 5, 30);
        assert!(h.contains('#'));
        // Sorted chart: first plotted row (max label) appears at top.
        assert!(s.starts_with(&format!("{:>10.3e} ", 160.0)));
    }

    #[test]
    fn sorted_chart_shows_a_step() {
        // In the sorted chart of a bimodal series, the left half sits on
        // the bottom row and the right half on the top row.
        let vals = bimodal(32);
        let s = ascii_sorted(&vals, 32, 4);
        let lines: Vec<&str> = s.lines().collect();
        let top = lines[0];
        let bottom = lines[3];
        let top_marks = top.matches('▪').count();
        let bottom_marks = bottom.matches('▪').count();
        assert!(top_marks >= 14 && bottom_marks >= 14, "{s}");
    }
}
