//! SPMD execution harness: N ranks, barrier semantics, idleness
//! attribution, shared-CCT correlation.

use callpath_core::prelude::{chunked_map, Experiment, NodeId, StorageKind};
use callpath_prof::{ParallelCorrelator, PerNodeCosts};
use callpath_profiler::{execute, lower, Counter, ExecConfig, ExecResult, Program, RawProfile};
use callpath_structure::recover;

/// Configuration of an SPMD run.
#[derive(Debug, Clone)]
pub struct SpmdConfig {
    /// Per-rank work multipliers; `scales.len()` is the rank count.
    pub scales: Vec<f64>,
    /// Base execution config (per-rank jitter seeds are derived from
    /// `jitter_seed + rank`).
    pub exec: ExecConfig,
    /// Worker threads for rank simulation (0 = one per available core,
    /// capped at 8).
    pub threads: usize,
    /// Keep each rank's per-node direct costs (needed for per-rank series
    /// in Fig. 7-style charts; disable for huge rank counts).
    pub keep_rank_data: bool,
}

impl SpmdConfig {
    /// A config with default worker threads and rank data kept.
    pub fn new(scales: Vec<f64>, exec: ExecConfig) -> Self {
        SpmdConfig {
            scales,
            exec,
            threads: 0,
            keep_rank_data: true,
        }
    }
}

/// Result of an SPMD run.
pub struct SpmdRun {
    /// Merged experiment over all ranks (cost columns are sums over
    /// ranks, so the `IDLENESS (I)` column is exactly the paper's "total
    /// inclusive idleness summed over all MPI processes").
    pub experiment: Experiment,
    /// Per-rank direct costs on the shared CCT (empty when
    /// `keep_rank_data` is off).
    pub rank_direct: Vec<PerNodeCosts>,
    /// Per-rank ground-truth cycle totals (for tests and charts).
    pub rank_cycles: Vec<u64>,
}

impl SpmdRun {
    /// Number of simulated ranks.
    pub fn n_ranks(&self) -> usize {
        self.rank_cycles.len()
    }

    /// Per-rank inclusive value of `counter` at CCT node `node`: the sum
    /// of the rank's direct costs attributed within the node's subtree.
    /// This is what Fig. 7's charts plot.
    pub fn rank_inclusive_series(&self, node: NodeId, counter: Counter) -> Vec<f64> {
        let cct = &self.experiment.cct;
        self.rank_direct
            .iter()
            .map(|costs| {
                costs
                    .iter()
                    .filter(|(n, _)| *n == node || cct.ancestors(*n).any(|a| a == node))
                    .map(|(_, c)| c[counter as usize])
                    .sum()
            })
            .collect()
    }
}

/// Execute `program` on every rank, inject barrier idleness, and correlate
/// everything into one canonical CCT.
///
/// Barrier semantics: ranks synchronize at each `(barrier id, occurrence)`
/// pair; the last arrival's virtual time defines the release time, and
/// every earlier rank accrues `release - arrival` cycles of `IDLENESS`,
/// attributed to its own calling context at the barrier (so imbalance is
/// visible *in context*, the point of Section VI-C).
pub fn run_spmd(program: &Program, cfg: &SpmdConfig) -> SpmdRun {
    let binary = lower(program);
    let n_ranks = cfg.scales.len();
    assert!(n_ranks > 0, "need at least one rank");

    // --- Phase 1: simulate all ranks (parallel, deterministic results).
    let ranks: Vec<usize> = (0..n_ranks).collect();
    let mut results: Vec<ExecResult> = chunked_map(&ranks, cfg.threads, |_ci, batch| {
        batch
            .iter()
            .map(|&rank| {
                let rank_cfg = ExecConfig {
                    work_scale: cfg.scales[rank],
                    jitter_seed: cfg.exec.jitter_seed.map(|sd| sd.wrapping_add(rank as u64)),
                    ..cfg.exec.clone()
                };
                execute(&binary, &rank_cfg).expect("rank execution failed")
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();

    // --- Phases 2+3: barrier wall-clock reconciliation and idleness
    // injection. A rank's virtual clock only counts its own work, but
    // after a barrier releases, *all* ranks resume together; so each
    // rank's effective arrival time at barrier k is its raw arrival plus
    // all the idle time it accumulated at earlier barriers. Without this
    // offset, imbalance would compound across steps and idleness would be
    // overstated.
    let seq_len = results[0].barrier_arrivals.len();
    for res in &results {
        assert_eq!(
            res.barrier_arrivals.len(),
            seq_len,
            "SPMD ranks must execute the same barrier sequence"
        );
    }
    let mut offset = vec![0u64; n_ranks];
    for k in 0..seq_len {
        let key = {
            let a = &results[0].barrier_arrivals[k];
            (a.id, a.occurrence)
        };
        let mut release = 0u64;
        for (r, res) in results.iter().enumerate() {
            let a = &res.barrier_arrivals[k];
            assert_eq!((a.id, a.occurrence), key, "barrier sequences diverge");
            release = release.max(a.time_cycles + offset[r]);
        }
        for (r, res) in results.iter_mut().enumerate() {
            let arr = res.barrier_arrivals[k].clone();
            let idle = release - (arr.time_cycles + offset[r]);
            if idle > 0 {
                res.profile
                    .add_path(&arr.path, arr.addr, Counter::Idleness, idle as f64);
                res.totals[Counter::Idleness] += idle;
                offset[r] += idle;
            }
        }
    }

    // --- Phase 4: correlate every rank into one canonical CCT. The
    // sharded correlator's deterministic journal replay produces the
    // same experiment — node ids included — as a sequential `add` loop.
    let structure = recover(&binary).expect("structure recovery failed");
    let mut periods = cfg.exec.periods;
    periods[Counter::Idleness as usize] = 1; // injected as raw cycles
    let rank_cycles: Vec<u64> = results.iter().map(|r| r.totals[Counter::Cycles]).collect();
    let profiles: Vec<RawProfile> = results.into_iter().map(|r| r.profile).collect();
    let (experiment, costs) = ParallelCorrelator::new(&structure, periods)
        .with_threads(cfg.threads)
        .correlate(&profiles, StorageKind::Dense);
    let rank_direct = if cfg.keep_rank_data {
        costs
    } else {
        Vec::new()
    };

    SpmdRun {
        experiment,
        rank_direct,
        rank_cycles,
    }
}

/// Merge raw rank profiles without correlation (utility for tests and the
/// expdb benches).
pub fn merge_profiles(profiles: &[RawProfile]) -> RawProfile {
    let mut merged = RawProfile::new();
    for p in profiles {
        merged.merge(p);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_core::prelude::*;
    use callpath_profiler::{Costs, Op, ProgramBuilder};

    fn barrier_program() -> Program {
        let mut b = ProgramBuilder::new("spmd");
        let f = b.file("spmd.c");
        let work = b.declare("do_work", f, 10);
        let main = b.declare("main", f, 1);
        b.body(work, vec![Op::work(11, Costs::cycles(100_000))]);
        b.body(
            main,
            vec![Op::looped(
                3,
                4,
                vec![Op::call(4, work), Op::Barrier { line: 5, id: 0 }],
            )],
        );
        b.entry(main);
        b.build()
    }

    fn idleness_col(exp: &Experiment) -> ColumnId {
        let m = exp.raw.find("IDLENESS").expect("idleness metric");
        exp.inclusive_col(m)
    }

    #[test]
    fn balanced_ranks_have_no_idleness() {
        let cfg = SpmdConfig::new(vec![1.0; 4], ExecConfig::default());
        let run = run_spmd(&barrier_program(), &cfg);
        let col = idleness_col(&run.experiment);
        let root = run.experiment.cct.root();
        assert_eq!(run.experiment.columns.get(col, root.0), 0.0);
    }

    #[test]
    fn imbalanced_ranks_accrue_idleness_in_context() {
        let cfg = SpmdConfig::new(vec![1.0, 1.0, 1.0, 2.0], ExecConfig::default());
        let run = run_spmd(&barrier_program(), &cfg);
        let exp = &run.experiment;
        let col = idleness_col(exp);
        let root = exp.cct.root();
        // Three light ranks wait 100k cycles per step for 4 steps each.
        let total_idle = exp.columns.get(col, root.0);
        assert_eq!(total_idle, 3.0 * 4.0 * 100_000.0);
        // Idleness is attributed inside main's loop, not at the root only.
        let main = exp.cct.children(root).next().unwrap();
        let lp = exp
            .cct
            .children(main)
            .find(|&n| exp.cct.kind(n).is_loop())
            .expect("barrier context includes the loop");
        assert_eq!(exp.columns.get(col, lp.0), total_idle);
    }

    #[test]
    fn hot_path_on_idleness_lands_in_the_loop() {
        let cfg = SpmdConfig::new(vec![1.0, 1.0, 1.0, 2.0], ExecConfig::default());
        let run = run_spmd(&barrier_program(), &cfg);
        let exp = &run.experiment;
        let col = idleness_col(exp);
        let mut view = View::calling_context(exp);
        let roots = view.roots();
        let path = view.hot_path(roots[0], col, HotPathConfig::default());
        let labels: Vec<String> = path.iter().map(|&n| view.label(n)).collect();
        assert!(
            labels.iter().any(|l| l.starts_with("loop at spmd.c:3")),
            "{labels:?}"
        );
    }

    #[test]
    fn rank_series_reflects_partition() {
        let cfg = SpmdConfig::new(vec![1.0, 2.0, 1.0, 2.0], ExecConfig::default());
        let run = run_spmd(&barrier_program(), &cfg);
        let root = run.experiment.cct.root();
        let series = run.rank_inclusive_series(root, Counter::Cycles);
        assert_eq!(series.len(), 4);
        assert!(series[1] > series[0] * 1.8, "{series:?}");
        assert!(series[3] > series[2] * 1.8, "{series:?}");
    }

    #[test]
    fn rank_cycles_scale_with_work() {
        let cfg = SpmdConfig::new(vec![1.0, 3.0], ExecConfig::default());
        let run = run_spmd(&barrier_program(), &cfg);
        assert_eq!(run.rank_cycles.len(), 2);
        assert_eq!(run.rank_cycles[1], 3 * run.rank_cycles[0]);
    }

    #[test]
    fn keep_rank_data_can_be_disabled() {
        let mut cfg = SpmdConfig::new(vec![1.0; 3], ExecConfig::default());
        cfg.keep_rank_data = false;
        let run = run_spmd(&barrier_program(), &cfg);
        assert!(run.rank_direct.is_empty());
        assert_eq!(run.rank_cycles.len(), 3);
    }

    #[test]
    fn parallel_and_serial_simulation_agree() {
        let mut cfg = SpmdConfig::new(vec![1.0, 1.5, 2.0, 2.5], ExecConfig::default());
        cfg.threads = 1;
        let serial = run_spmd(&barrier_program(), &cfg);
        cfg.threads = 4;
        let parallel = run_spmd(&barrier_program(), &cfg);
        assert_eq!(serial.rank_cycles, parallel.rank_cycles);
        let c = ColumnId(0);
        let root = serial.experiment.cct.root();
        assert_eq!(
            serial.experiment.columns.get(c, root.0),
            parallel.experiment.columns.get(c, root.0),
        );
    }

    #[test]
    fn merge_profiles_totals_add_up() {
        let mut a = RawProfile::new();
        a.add_path(&[(callpath_profiler::NO_CALL, 0)], 1, Counter::Cycles, 5.0);
        let mut b = RawProfile::new();
        b.add_path(&[(callpath_profiler::NO_CALL, 0)], 1, Counter::Cycles, 7.0);
        let m = merge_profiles(&[a, b]);
        assert_eq!(m.total_samples(Counter::Cycles), 12.0);
    }
}
