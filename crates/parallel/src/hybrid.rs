//! Hybrid MPI + threads executions (the paper's recurring
//! "processes/threads": `hpcrun` profiles every *thread*, and the
//! summarization of Section VII runs over all of them).
//!
//! Model: each rank runs `threads_per_rank` worker threads that partition
//! the rank's domain work; OpenMP-style chunk skew gives the threads of a
//! rank slightly uneven shares. Every (rank, thread) unit is profiled
//! separately — exactly one simulated execution each — and synchronizes
//! at program barriers (an `MPI_THREAD_MULTIPLE`-style model where the
//! end-of-step barrier joins all workers). All unit profiles correlate
//! into one canonical CCT; per-rank series are recovered by summing a
//! rank's thread units.

use crate::spmd::{run_spmd, SpmdConfig, SpmdRun};
use callpath_core::prelude::NodeId;
use callpath_profiler::{Counter, ExecConfig, Program};

/// Configuration of a hybrid run.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Per-rank work multipliers (the domain partition).
    pub rank_scales: Vec<f64>,
    /// Worker threads per rank.
    pub threads_per_rank: usize,
    /// Thread-level imbalance within each rank: thread `t` of `T` gets a
    /// share multiplier `1 + skew × (t − (T−1)/2) / T`. 0.0 = perfectly
    /// even chunks.
    pub thread_skew: f64,
    /// Base execution configuration.
    pub exec: ExecConfig,
}

impl HybridConfig {
    /// Flatten to the per-unit scale vector (unit = rank-major order:
    /// rank 0's threads first).
    pub fn unit_scales(&self) -> Vec<f64> {
        let t = self.threads_per_rank.max(1);
        let mut out = Vec::with_capacity(self.rank_scales.len() * t);
        for &rs in &self.rank_scales {
            for ti in 0..t {
                let centered = ti as f64 - (t as f64 - 1.0) / 2.0;
                let share = (1.0 + self.thread_skew * centered / t as f64).max(0.05);
                out.push(rs * share / t as f64);
            }
        }
        out
    }
}

/// Result of a hybrid run: an SPMD run over rank×thread units plus the
/// grouping information.
pub struct HybridRun {
    /// The underlying per-unit SPMD run.
    pub spmd: SpmdRun,
    /// Number of MPI ranks.
    pub n_ranks: usize,
    /// Worker threads per rank.
    pub threads_per_rank: usize,
}

impl HybridRun {
    /// Per-*unit* inclusive series at a node (threads are the atoms).
    pub fn unit_series(&self, node: NodeId, counter: Counter) -> Vec<f64> {
        self.spmd.rank_inclusive_series(node, counter)
    }

    /// Per-*rank* series: each rank's threads summed.
    pub fn rank_series(&self, node: NodeId, counter: Counter) -> Vec<f64> {
        let units = self.unit_series(node, counter);
        units
            .chunks(self.threads_per_rank)
            .map(|c| c.iter().sum())
            .collect()
    }

    /// The thread series of one rank.
    pub fn thread_series(&self, rank: usize, node: NodeId, counter: Counter) -> Vec<f64> {
        let units = self.unit_series(node, counter);
        units[rank * self.threads_per_rank..(rank + 1) * self.threads_per_rank].to_vec()
    }
}

/// Run `program` on `rank_scales.len()` ranks × `threads_per_rank`
/// threads.
pub fn run_hybrid(program: &Program, cfg: &HybridConfig) -> HybridRun {
    assert!(cfg.threads_per_rank >= 1);
    let scales = cfg.unit_scales();
    let spmd = run_spmd(program, &SpmdConfig::new(scales, cfg.exec.clone()));
    HybridRun {
        spmd,
        n_ranks: cfg.rank_scales.len(),
        threads_per_rank: cfg.threads_per_rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imbalance::ImbalanceStats;
    use callpath_profiler::{Costs, Op, ProgramBuilder};

    fn exact_exec() -> ExecConfig {
        ExecConfig {
            jitter_seed: None,
            ..ExecConfig::single(Counter::Cycles, 1)
        }
    }

    fn program() -> Program {
        let mut b = ProgramBuilder::new("h");
        let f = b.file("h.c");
        let main = b.declare("main", f, 1);
        b.body(main, vec![Op::work(2, Costs::cycles(120_000))]);
        b.entry(main);
        b.build()
    }

    #[test]
    fn threads_partition_their_ranks_work() {
        let cfg = HybridConfig {
            rank_scales: vec![1.0, 2.0],
            threads_per_rank: 4,
            thread_skew: 0.0,
            exec: exact_exec(),
        };
        let run = run_hybrid(&program(), &cfg);
        assert_eq!(run.spmd.n_ranks(), 8, "8 units");
        let root = run.spmd.experiment.cct.root();
        let ranks = run.rank_series(root, Counter::Cycles);
        assert_eq!(ranks.len(), 2);
        // Each rank's threads sum back to the rank's work.
        assert_eq!(ranks[0], 120_000.0);
        assert_eq!(ranks[1], 240_000.0);
        // Even chunks: every thread of rank 0 does 30k.
        let t0 = run.thread_series(0, root, Counter::Cycles);
        assert_eq!(t0, vec![30_000.0; 4]);
    }

    #[test]
    fn thread_skew_creates_intra_rank_imbalance() {
        let cfg = HybridConfig {
            rank_scales: vec![1.0],
            threads_per_rank: 8,
            thread_skew: 0.5,
            exec: exact_exec(),
        };
        let run = run_hybrid(&program(), &cfg);
        let root = run.spmd.experiment.cct.root();
        let threads = run.thread_series(0, root, Counter::Cycles);
        let stats = ImbalanceStats::of(&threads);
        assert!(stats.cov > 0.05, "skewed chunks: cov {}", stats.cov);
        assert!(threads[7] > threads[0], "monotone skew: {threads:?}");
        // Total work is preserved (shares sum to ~1 per rank).
        let total: f64 = threads.iter().sum();
        assert!((total - 120_000.0).abs() / 120_000.0 < 0.01, "{total}");
    }

    #[test]
    fn unit_scales_sum_to_rank_scales() {
        let cfg = HybridConfig {
            rank_scales: vec![1.0, 1.5],
            threads_per_rank: 3,
            thread_skew: 0.3,
            exec: exact_exec(),
        };
        let scales = cfg.unit_scales();
        assert_eq!(scales.len(), 6);
        let r0: f64 = scales[..3].iter().sum();
        let r1: f64 = scales[3..].iter().sum();
        assert!((r0 - 1.0).abs() < 1e-12);
        assert!((r1 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn summaries_cover_all_threads() {
        let cfg = HybridConfig {
            rank_scales: vec![1.0; 4],
            threads_per_rank: 4,
            thread_skew: 0.2,
            exec: exact_exec(),
        };
        let run = run_hybrid(&program(), &cfg);
        let s = crate::summarize_ranks(
            &run.spmd.experiment,
            &[Counter::Cycles],
            &run.spmd.rank_direct,
            0,
        );
        let root = run.spmd.experiment.cct.root();
        let w = s.get(root, callpath_core::prelude::MetricId(0));
        assert_eq!(w.count(), 16, "one observation per thread");
    }
}
