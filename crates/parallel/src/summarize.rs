//! Streaming summarization of per-rank metrics (the `hpcprof` finalization
//! step, Section IV, and the scalability requirement of Section VII).
//!
//! For every CCT node and metric, the summarizer folds each rank's
//! *inclusive* value into a [`Welford`] accumulator. Ranks stream through
//! one at a time (per worker), so memory is O(nodes × metrics), not
//! O(nodes × metrics × ranks). Partial accumulators from worker threads
//! merge associatively — exactly the paper's "assembles intermediate
//! summary metric values into final values".

use callpath_core::attribution::attribute;
use callpath_core::prelude::*;
use callpath_prof::PerNodeCosts;
use callpath_profiler::Counter;

/// Per-node, per-metric summary statistics across ranks.
pub struct Summaries {
    /// `stats[node * n_metrics + metric]`.
    stats: Vec<Welford>,
    n_metrics: usize,
}

impl Summaries {
    /// Statistics of `metric` at CCT node `node`.
    pub fn get(&self, node: NodeId, metric: MetricId) -> &Welford {
        &self.stats[node.index() * self.n_metrics + metric.index()]
    }

    /// Number of summarized metrics.
    pub fn n_metrics(&self) -> usize {
        self.n_metrics
    }

    /// Append chosen statistics as new columns on the experiment's CCT
    /// metric table (named e.g. `PAPI_TOT_CYC (I) mean`).
    pub fn append_columns(&self, exp: &mut Experiment, stats: &[Stat]) -> Vec<ColumnId> {
        let mut out = Vec::new();
        for mi in 0..self.n_metrics {
            let m = MetricId::from_usize(mi);
            let base = exp.raw.desc(m).name.clone();
            for &st in stats {
                let col = exp.columns.add_column(ColumnDesc {
                    name: format!("{} (I) {}", base, st.label()),
                    flavor: ColumnFlavor::Summary { base: m, stat: st },
                    visible: true,
                });
                for n in exp.cct.all_nodes() {
                    let v = self.get(n, m).stat(st);
                    if v != 0.0 {
                        exp.columns.set(col, n.0, v);
                    }
                }
                out.push(col);
            }
        }
        out
    }
}

/// Build a temporary [`RawMetrics`] carrying one rank's direct costs.
/// Dense storage: one f64 per node per metric, freed right after use.
fn rank_raw(counters: &[Counter], costs: &PerNodeCosts) -> (RawMetrics, Vec<MetricId>) {
    let mut raw = RawMetrics::new(StorageKind::Dense);
    let ids: Vec<MetricId> = counters
        .iter()
        .map(|c| raw.add_metric(MetricDesc::new(c.papi_name(), c.unit(), 1.0)))
        .collect();
    for (node, per_counter) in costs {
        for (mi, &c) in counters.iter().enumerate() {
            let v = per_counter[c as usize];
            if v != 0.0 {
                raw.add_cost(ids[mi], *node, v);
            }
        }
    }
    (raw, ids)
}

/// Map a rank's sparse direct costs to per-node inclusive values and fold
/// them into `into`.
fn fold_rank(exp: &Experiment, counters: &[Counter], costs: &PerNodeCosts, into: &mut [Welford]) {
    let n_metrics = counters.len();
    let (raw, ids) = rank_raw(counters, costs);
    for (mi, &id) in ids.iter().enumerate() {
        let attr = attribute(&exp.cct, &raw, id, StorageKind::Dense);
        for n in exp.cct.all_nodes() {
            into[n.index() * n_metrics + mi].push(attr.inclusive.get(n.0));
        }
    }
}

/// Merge two equally-sized partial accumulator vectors element-wise
/// (the associative reduction both summarizers hand to
/// [`chunked_reduce`]).
fn merge_partials(mut a: Vec<Welford>, b: Vec<Welford>) -> Vec<Welford> {
    for (x, y) in a.iter_mut().zip(b.iter()) {
        x.merge(y);
    }
    a
}

/// Summarize per-rank inclusive values over the shared CCT.
///
/// `rank_costs[r]` is rank r's sparse per-node direct costs (from
/// [`callpath_prof::Correlator::add`]); `counters` selects and orders the
/// metrics (matching the experiment's metric ids). Work is split across
/// `threads` workers whose partial accumulators are merged.
pub fn summarize_ranks(
    exp: &Experiment,
    counters: &[Counter],
    rank_costs: &[PerNodeCosts],
    threads: usize,
) -> Summaries {
    let n_metrics = counters.len();
    let n_nodes = exp.cct.len();
    let stats = chunked_reduce(
        rank_costs,
        threads,
        |_ci, batch| {
            let mut acc = vec![Welford::new(); n_nodes * n_metrics];
            for costs in batch {
                fold_rank(exp, counters, costs, &mut acc);
            }
            acc
        },
        merge_partials,
    )
    .unwrap_or_else(|| vec![Welford::new(); n_nodes * n_metrics]);
    Summaries { stats, n_metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::{run_spmd, SpmdConfig};
    use callpath_profiler::{Costs, ExecConfig, Op, ProgramBuilder};

    /// Exact sampling (period 1, no jitter) so assertions are integral.
    fn exact_cfg() -> ExecConfig {
        ExecConfig {
            jitter_seed: None,
            ..ExecConfig::single(callpath_profiler::Counter::Cycles, 1)
        }
    }

    fn simple_run(scales: Vec<f64>) -> crate::spmd::SpmdRun {
        let mut b = ProgramBuilder::new("x");
        let f = b.file("x.c");
        let main = b.declare("main", f, 1);
        b.body(main, vec![Op::work(2, Costs::cycles(10_000))]);
        b.entry(main);
        run_spmd(&b.build(), &SpmdConfig::new(scales, exact_cfg()))
    }

    #[test]
    fn mean_min_max_match_partition() {
        let run = simple_run(vec![1.0, 1.0, 2.0, 2.0]);
        let s = summarize_ranks(&run.experiment, &[Counter::Cycles], &run.rank_direct, 2);
        let root = run.experiment.cct.root();
        let w = s.get(root, MetricId(0));
        assert_eq!(w.count(), 4);
        assert_eq!(w.min(), 10_000.0);
        assert_eq!(w.max(), 20_000.0);
        assert_eq!(w.mean(), 15_000.0);
        assert!(w.std_dev() > 0.0);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let run = simple_run(vec![1.0, 1.3, 1.7, 2.0, 2.3]);
        let a = summarize_ranks(&run.experiment, &[Counter::Cycles], &run.rank_direct, 1);
        let b = summarize_ranks(&run.experiment, &[Counter::Cycles], &run.rank_direct, 4);
        let root = run.experiment.cct.root();
        let (wa, wb) = (a.get(root, MetricId(0)), b.get(root, MetricId(0)));
        assert_eq!(wa.count(), wb.count());
        assert!((wa.mean() - wb.mean()).abs() < 1e-9);
        assert!((wa.variance() - wb.variance()).abs() < 1e-6);
    }

    #[test]
    fn summary_columns_append_and_fill() {
        let run = simple_run(vec![1.0, 3.0]);
        let s = summarize_ranks(&run.experiment, &[Counter::Cycles], &run.rank_direct, 1);
        let mut exp = run.experiment;
        let before = exp.columns.column_count();
        let cols = s.append_columns(&mut exp, &[Stat::Mean, Stat::Max, Stat::StdDev]);
        assert_eq!(exp.columns.column_count(), before + 3);
        let root = exp.cct.root();
        assert_eq!(exp.columns.get(cols[0], root.0), 20_000.0, "mean");
        assert_eq!(exp.columns.get(cols[1], root.0), 30_000.0, "max");
        assert!(exp.columns.desc(cols[2]).name.ends_with("stddev"));
    }

    #[test]
    fn interior_nodes_summarize_inclusively() {
        // main -> work: the summary at `main` must reflect inclusive
        // per-rank values, not just direct ones.
        let mut b = ProgramBuilder::new("x");
        let f = b.file("x.c");
        let work = b.declare("work", f, 10);
        let main = b.declare("main", f, 1);
        b.body(work, vec![Op::work(11, Costs::cycles(10_000))]);
        b.body(main, vec![Op::call(2, work)]);
        b.entry(main);
        let run = run_spmd(&b.build(), &SpmdConfig::new(vec![1.0, 2.0], exact_cfg()));
        let s = summarize_ranks(&run.experiment, &[Counter::Cycles], &run.rank_direct, 1);
        let root = run.experiment.cct.root();
        let main_node = run.experiment.cct.children(root).next().unwrap();
        let w = s.get(main_node, MetricId(0));
        assert_eq!(w.mean(), 15_000.0);
        assert_eq!(w.max(), 20_000.0);
    }
}

/// Summarize per-rank values over the nodes of a *derived view*
/// (Callers or Flat), using each view node's aggregated CCT instance set
/// with the same set-exposed rule the view's own columns use — so the
/// mean/min/max/stddev columns are consistent with the inclusive column
/// they summarize.
///
/// Returns one [`Welford`] per (view node, metric), indexed by view node
/// id.
pub fn summarize_view_nodes(
    exp: &Experiment,
    tree: &callpath_core::viewtree::ViewTree,
    counters: &[Counter],
    rank_costs: &[PerNodeCosts],
    threads: usize,
) -> Summaries {
    use callpath_core::exposure::exposed;
    let n_metrics = counters.len();
    let n_nodes = tree.len();
    // Precompute each node's exposed instance set once.
    let keep: Vec<Vec<callpath_core::prelude::NodeId>> = (0..n_nodes as u32)
        .map(|i| {
            exposed(
                &exp.cct,
                tree.instances(callpath_core::prelude::ViewNodeId(i)),
            )
        })
        .collect();

    let stats = chunked_reduce(
        rank_costs,
        threads,
        |_ci, batch| {
            let mut acc = vec![Welford::new(); n_nodes * n_metrics];
            for costs in batch {
                // Per-rank inclusive values on the CCT, then view-node
                // aggregation via the exposed sets.
                let (raw, ids) = rank_raw(counters, costs);
                for (mi, &id) in ids.iter().enumerate() {
                    let attr = attribute(&exp.cct, &raw, id, StorageKind::Dense);
                    for (vi, set) in keep.iter().enumerate() {
                        let v: f64 = set.iter().map(|n| attr.inclusive.get(n.0)).sum();
                        acc[vi * n_metrics + mi].push(v);
                    }
                }
            }
            acc
        },
        merge_partials,
    )
    .unwrap_or_else(|| vec![Welford::new(); n_nodes * n_metrics]);
    Summaries { stats, n_metrics }
}

impl Summaries {
    /// Access by view node id (same layout as [`Summaries::get`], just a
    /// different index type).
    pub fn get_view(&self, node: callpath_core::prelude::ViewNodeId, metric: MetricId) -> &Welford {
        &self.stats[node.index() * self.n_metrics + metric.index()]
    }

    /// Append chosen statistics as columns on a view tree.
    pub fn append_view_columns(
        &self,
        exp: &Experiment,
        tree: &mut callpath_core::viewtree::ViewTree,
        stats: &[Stat],
    ) -> Vec<ColumnId> {
        let mut out = Vec::new();
        let n_nodes = tree.len();
        for mi in 0..self.n_metrics {
            let m = MetricId::from_usize(mi);
            let base = exp.raw.desc(m).name.clone();
            for &st in stats {
                let col = tree.columns.add_column(ColumnDesc {
                    name: format!("{} (I) {}", base, st.label()),
                    flavor: ColumnFlavor::Summary { base: m, stat: st },
                    visible: true,
                });
                for i in 0..n_nodes as u32 {
                    let v = self.stats[i as usize * self.n_metrics + mi].stat(st);
                    if v != 0.0 {
                        tree.columns.set(col, i, v);
                    }
                }
                out.push(col);
            }
        }
        out
    }
}

#[cfg(test)]
mod view_summary_tests {
    use super::*;
    use crate::spmd::{run_spmd, SpmdConfig};
    use callpath_profiler::{Costs, ExecConfig, Op, ProgramBuilder};

    /// Recursive g called from two places, two ranks with different
    /// scales: exercises exposed aggregation inside the summaries.
    fn run() -> crate::spmd::SpmdRun {
        let mut b = ProgramBuilder::new("x");
        let f = b.file("x.c");
        let g = b.declare("g", f, 10);
        let main = b.declare("main", f, 1);
        b.body(
            g,
            vec![
                Op::work(11, Costs::cycles(1_000)),
                Op::call_recursive(12, g, 2),
            ],
        );
        b.body(main, vec![Op::call(3, g)]);
        b.entry(main);
        let exec = ExecConfig {
            jitter_seed: None,
            ..ExecConfig::single(callpath_profiler::Counter::Cycles, 1)
        };
        run_spmd(&b.build(), &SpmdConfig::new(vec![1.0, 3.0], exec))
    }

    #[test]
    fn callers_view_summaries_use_exposed_aggregation() {
        let run = run();
        let exp = &run.experiment;
        let callers = CallersView::build_eager(exp, StorageKind::Dense);
        let s = summarize_view_nodes(
            exp,
            &callers.tree,
            &[callpath_profiler::Counter::Cycles],
            &run.rank_direct,
            0,
        );
        // Top-level g: exposed inclusive per rank = 2000 (rank 0) and
        // 6000 (rank 1, scale 3).
        let g_top = callers
            .tree
            .roots()
            .into_iter()
            .find(|&r| callers.tree.label(r, &exp.cct.names) == "g")
            .unwrap();
        let w = s.get_view(g_top, MetricId(0));
        assert_eq!(w.count(), 2);
        assert_eq!(w.min(), 2_000.0);
        assert_eq!(w.max(), 6_000.0);
        // Consistency: mean × ranks == the view's own (summed) inclusive.
        let summed = callers.tree.columns.get(ColumnId(0), g_top.0);
        assert_eq!(w.sum(), summed);
    }

    #[test]
    fn flat_view_summary_columns_append() {
        let run = run();
        let exp = &run.experiment;
        let mut flat = FlatView::build(exp, StorageKind::Dense);
        let s = summarize_view_nodes(
            exp,
            &flat.tree,
            &[callpath_profiler::Counter::Cycles],
            &run.rank_direct,
            2,
        );
        let before = flat.tree.columns.column_count();
        let cols = s.append_view_columns(exp, &mut flat.tree, &[Stat::Mean, Stat::Max]);
        assert_eq!(flat.tree.columns.column_count(), before + 2);
        let module = flat.tree.roots()[0];
        assert_eq!(flat.tree.columns.get(cols[0], module.0), 4_000.0, "mean");
        assert_eq!(flat.tree.columns.get(cols[1], module.0), 6_000.0, "max");
    }
}
