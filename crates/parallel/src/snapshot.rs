//! Snapshot and replay of SPMD runs through the experiment database:
//! persist a merged run as a format-v2 container, reload it later for
//! re-analysis without re-simulating the ranks.
//!
//! Replay is the canonical *batch* consumer of the v2 format: unlike an
//! interactive viewer session (which faults in the two or three columns
//! it sorts and renders), replay re-derives summaries over **every**
//! metric, so [`replay`] opens lazily and immediately calls
//! `decode_all`, fanning per-column block decode and attribution across
//! the same worker pool the rank simulation used.

use crate::spmd::SpmdRun;
use callpath_core::prelude::Experiment;
use callpath_expdb::{decode_all, open_lazy, DbError};

/// Serialize a finished run's merged experiment as a format-v2
/// container (topology, metric descriptors, one cost block per metric,
/// derived definitions — see `callpath-expdb`). Per-rank series data is
/// not part of the database; persist it separately if Fig. 7-style
/// charts must survive the snapshot.
pub fn snapshot(run: &SpmdRun) -> Vec<u8> {
    callpath_expdb::to_binary_v2(&run.experiment)
}

/// Reload a snapshot for batch re-analysis: open the v2 container
/// lazily (topology only), then materialize every metric column across
/// `threads` workers (0 = automatic). The returned experiment is fully
/// resident — summarization, imbalance charts and diffing can hit any
/// column without further decoding.
pub fn replay(bytes: Vec<u8>, threads: usize) -> Result<Experiment, DbError> {
    let exp = open_lazy(bytes)?;
    decode_all(&exp, threads);
    Ok(exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::{run_spmd, SpmdConfig};
    use callpath_profiler::{Counter, ExecConfig};

    #[test]
    fn replayed_run_matches_the_original() {
        let program = callpath_workloads::fig1::program(40);
        let exec = ExecConfig {
            jitter_seed: Some(7),
            ..ExecConfig::single(Counter::Cycles, 97)
        };
        let run = run_spmd(&program, &SpmdConfig::new(vec![1.0, 1.4, 0.8], exec));
        let replayed = replay(snapshot(&run), 0).unwrap();
        let original = &run.experiment;

        assert_eq!(replayed.cct.len(), original.cct.len());
        assert_eq!(
            replayed.raw.materialized_metrics(),
            replayed.raw.metric_count(),
            "replay materializes everything up front"
        );
        for c in original.columns.columns() {
            for n in 0..original.cct.len() as u32 {
                let a = original.columns.get(c, n);
                let b = replayed.columns.get(c, n);
                assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "column {c:?} node {n}: {a} vs {b}"
                );
            }
        }
        // And the snapshot of the replay is byte-identical: the v2
        // encoding is canonical.
        assert_eq!(callpath_expdb::to_binary_v2(&replayed), snapshot(&run));
    }
}
