#![warn(missing_docs)]
//! # callpath-parallel
//!
//! SPMD execution, scalable metric summarization and load-imbalance
//! identification (Sections IV finalization, VI-C and VII).
//!
//! * [`spmd`] runs one program on N simulated ranks (in parallel, on
//!   the persistent worker pool), each with its own work scale from an
//!   uneven domain partition; barrier waiting time is converted into
//!   `IDLENESS` samples attributed to the barrier's calling context, and
//!   all rank profiles are correlated into one canonical CCT.
//! * [`summarize`] streams per-rank metric values through Welford
//!   accumulators — mean/min/max/stddev per CCT node — without ever
//!   holding all ranks in memory at once (the paper's scalability
//!   requirement), and can append the statistics as metric columns.
//! * [`imbalance`] reproduces Fig. 7's three per-process charts (scatter,
//!   sorted, histogram) as ASCII, plus scalar imbalance statistics.

pub mod hybrid;
pub mod imbalance;
pub mod snapshot;
pub mod spmd;
pub mod summarize;

pub use hybrid::{run_hybrid, HybridConfig, HybridRun};
pub use imbalance::{ascii_histogram, ascii_scatter, ascii_sorted, histogram, ImbalanceStats};
pub use snapshot::{replay, snapshot};
pub use spmd::{run_spmd, SpmdConfig, SpmdRun};
pub use summarize::{summarize_ranks, summarize_view_nodes, Summaries};
