//! The live registry (`enabled` feature on): a span-tree arena behind
//! one mutex, counter/histogram maps behind read-write locks, and a
//! thread-local current-span cursor so nesting works without any
//! per-span allocation.
//!
//! Span nodes are leaked (`&'static`) with atomic stats, so *closing*
//! a span never takes a lock; only interning a new `(parent, name)`
//! pair does. Hot call sites go further with [`LazyCounter`] and
//! [`LazySpan`], which cache the resolved registry entry at the call
//! site — the steady-state cost is a relaxed atomic add, not a
//! string-keyed map lookup.

use crate::{HistRec, Snapshot, SpanId, SpanRec};
use parking_lot::{Mutex, RwLock};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{
    AtomicPtr, AtomicU64, Ordering::Acquire, Ordering::Relaxed, Ordering::Release,
};
use std::sync::OnceLock;
use std::time::Instant;

/// One aggregated `(parent, name)` node of the span tree. Leaked on
/// intern so guards and call-site caches can hold `&'static` references
/// and record without the arena lock.
struct SpanNode {
    name: &'static str,
    parent: u32,
    count: AtomicU64,
    total_ns: AtomicU64,
}

/// Arena + child index. Node 0 is the synthetic root.
struct SpanArena {
    nodes: Vec<&'static SpanNode>,
    index: HashMap<(u32, &'static str), u32>,
}

impl SpanArena {
    fn new() -> Self {
        SpanArena {
            nodes: vec![Box::leak(Box::new(SpanNode {
                name: "(root)",
                parent: 0,
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
            }))],
            index: HashMap::new(),
        }
    }

    /// Find or add the child of `parent` named `name`. A stale parent
    /// id (possible only across a mid-span [`reset`]) clamps to root.
    fn intern(&mut self, parent: u32, name: &'static str) -> u32 {
        let parent = if (parent as usize) < self.nodes.len() {
            parent
        } else {
            0
        };
        if let Some(&id) = self.index.get(&(parent, name)) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Box::leak(Box::new(SpanNode {
            name,
            parent,
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        })));
        self.index.insert((parent, name), id);
        id
    }
}

/// Power-of-two histogram: bucket `i` counts values with `i`
/// significant bits (bucket 0 = zeros). 65 buckets cover all of `u64`.
struct Hist {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; 65],
}

impl Hist {
    fn new() -> Self {
        Hist {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Relaxed);
        // Saturating sum: fetch_add wraps, but an overflowing total of
        // nanoseconds (585 years) is out of scope for a process profile.
        self.sum.fetch_add(value, Relaxed);
        let bits = (64 - value.leading_zeros()) as usize;
        self.buckets[bits].fetch_add(1, Relaxed);
    }

    fn clear(&self) {
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
    }
}

struct Registry {
    arena: Mutex<SpanArena>,
    counters: RwLock<HashMap<&'static str, &'static AtomicU64>>,
    hists: RwLock<HashMap<&'static str, &'static Hist>>,
    /// Distinct error strings with counts, in first-seen order.
    errors: Mutex<Vec<(String, u64)>>,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        arena: Mutex::new(SpanArena::new()),
        counters: RwLock::new(HashMap::new()),
        hists: RwLock::new(HashMap::new()),
        errors: Mutex::new(Vec::new()),
    })
}

/// Bumped by [`reset`]; [`LazySpan`] call-site caches carry the epoch
/// they resolved under and re-resolve on mismatch.
static EPOCH: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The calling thread's current span (0 = root).
    static CURRENT: Cell<u32> = const { Cell::new(0) };
}

/// Is instrumentation compiled in? `true` in this build.
pub fn enabled() -> bool {
    true
}

/// The calling thread's current span, for [`span_under`] across a
/// thread fan-out.
pub fn current() -> SpanId {
    SpanId(CURRENT.with(Cell::get))
}

/// Open a timed span named `name` nested under the thread's current
/// span. Close it by dropping the guard.
pub fn span(name: &'static str) -> SpanGuard {
    span_under(current(), name)
}

/// Open a timed span under an explicit parent — the cross-thread form:
/// capture [`current`] before handing work to `core::chunked`, open
/// shard spans under it inside the worker closure.
pub fn span_under(parent: SpanId, name: &'static str) -> SpanGuard {
    let (id, node) = {
        let mut arena = registry().arena.lock();
        let id = arena.intern(parent.0, name);
        (id, arena.nodes[id as usize])
    };
    let prev = CURRENT.with(|c| c.replace(id));
    SpanGuard {
        node,
        prev,
        start: Instant::now(),
    }
}

/// Live timed region: records elapsed wall time into its span-tree node
/// on drop (two relaxed atomic adds — no lock) and restores the
/// thread's previous span. A guard that outlives a [`reset`] records
/// into its orphaned node, which no longer appears in snapshots.
#[must_use = "a span measures the region it is alive for"]
pub struct SpanGuard {
    node: &'static SpanNode,
    prev: u32,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        self.node.count.fetch_add(1, Relaxed);
        self.node.total_ns.fetch_add(ns, Relaxed);
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// A span whose registry node is cached at the call site:
///
/// ```ignore
/// static FULL_SORT: obs::LazySpan = obs::LazySpan::new("viewer.full_sort");
/// let _span = FULL_SORT.open();
/// ```
///
/// While the parent context stays the same (the common case — one call
/// site, one enclosing span), [`open`](LazySpan::open) skips the arena
/// lock and the `(parent, name)` hash lookup entirely. A parent change
/// or a [`reset`] falls back to the slow path and re-caches.
pub struct LazySpan {
    name: &'static str,
    site: AtomicPtr<SpanSite>,
}

/// Immutable-after-publish cache entry for one [`LazySpan`] call site.
struct SpanSite {
    epoch: u64,
    parent: u32,
    id: u32,
    node: &'static SpanNode,
}

impl LazySpan {
    /// A lazy span named `name`; resolution happens on first open.
    pub const fn new(name: &'static str) -> Self {
        LazySpan {
            name,
            site: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Open the span under the thread's current context.
    #[inline]
    pub fn open(&self) -> SpanGuard {
        let parent = CURRENT.with(Cell::get);
        let site = unsafe { self.site.load(Acquire).as_ref() };
        let (id, node) = match site {
            Some(s) if s.parent == parent && s.epoch == EPOCH.load(Relaxed) => (s.id, s.node),
            _ => self.resolve(parent),
        };
        let prev = CURRENT.with(|c| c.replace(id));
        SpanGuard {
            node,
            prev,
            start: Instant::now(),
        }
    }

    /// Slow path: intern under the arena lock and publish a fresh cache
    /// entry (leaked; entries are immutable once published).
    #[cold]
    fn resolve(&self, parent: u32) -> (u32, &'static SpanNode) {
        let epoch = EPOCH.load(Relaxed);
        let (id, node) = {
            let mut arena = registry().arena.lock();
            let id = arena.intern(parent, self.name);
            (id, arena.nodes[id as usize])
        };
        let entry = Box::leak(Box::new(SpanSite {
            epoch,
            parent,
            id,
            node,
        }));
        self.site.store(entry, Release);
        (id, node)
    }
}

/// Resolve (or create) the counter named `name` in the registry.
fn counter_handle(name: &'static str) -> &'static AtomicU64 {
    let reg = registry();
    if let Some(c) = reg.counters.read().get(name) {
        return c;
    }
    let mut map = reg.counters.write();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
}

/// Add `delta` to the counter named `name` (created on first use).
pub fn count(name: &'static str, delta: u64) {
    counter_handle(name).fetch_add(delta, Relaxed);
}

/// A counter whose registry slot is resolved once and cached at the
/// call site:
///
/// ```ignore
/// static HITS: obs::LazyCounter = obs::LazyCounter::new("viewer.sort_cache.hit");
/// HITS.add(1);
/// ```
///
/// After the first call, [`add`](LazyCounter::add) is one relaxed
/// atomic add — no lock, no hash. [`reset`] zeroes the shared slot in
/// place, so cached handles stay valid across it.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl LazyCounter {
    /// A lazy counter named `name`; resolution happens on first add.
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Add `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.cell
            .get_or_init(|| counter_handle(self.name))
            .fetch_add(delta, Relaxed);
    }
}

/// Current value of counter `name` (0 if it never fired).
pub fn counter_value(name: &str) -> u64 {
    registry()
        .counters
        .read()
        .get(name)
        .map(|c| c.load(Relaxed))
        .unwrap_or(0)
}

/// Record `value` into the histogram named `name` (created on first use).
pub fn observe(name: &'static str, value: u64) {
    let reg = registry();
    if let Some(h) = reg.hists.read().get(name) {
        h.record(value);
        return;
    }
    let mut map = reg.hists.write();
    let h = map
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Hist::new())));
    h.record(value);
}

/// Record an error message. Distinct messages are kept separately with
/// occurrence counts — nothing after the first failure is dropped.
pub fn error(message: &str) {
    let mut errors = registry().errors.lock();
    if let Some(e) = errors.iter_mut().find(|(m, _)| m == message) {
        e.1 += 1;
    } else {
        errors.push((message.to_owned(), 1));
    }
}

/// Freeze the registry into a plain-data [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let spans: Vec<SpanRec> = {
        let arena = reg.arena.lock();
        arena
            .nodes
            .iter()
            .map(|n| SpanRec {
                name: n.name.to_owned(),
                parent: n.parent as usize,
                count: n.count.load(Relaxed),
                total_ns: n.total_ns.load(Relaxed),
            })
            .collect()
    };
    let mut counters: Vec<(String, u64)> = reg
        .counters
        .read()
        .iter()
        .map(|(&name, c)| (name.to_owned(), c.load(Relaxed)))
        .collect();
    // The worker pool lives below this crate in the dependency graph
    // (callpath-obs depends on callpath-core), so it keeps its own
    // always-on atomics; fold them in here so `--stats` and
    // `--self-profile` show where fan-out time goes. Zero values are
    // skipped: a process that never fanned out reports no pool rows.
    for (name, value) in callpath_core::pool::stats().named() {
        if value > 0 {
            counters.push((name.to_owned(), value));
        }
    }
    counters.sort();
    let mut histograms: Vec<HistRec> = reg
        .hists
        .read()
        .iter()
        .map(|(&name, h)| HistRec {
            name: name.to_owned(),
            count: h.count.load(Relaxed),
            sum: h.sum.load(Relaxed),
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(bits, b)| {
                    let n = b.load(Relaxed);
                    (n > 0).then_some((bits as u32, n))
                })
                .collect(),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    let errors = reg.errors.lock().clone();
    Snapshot {
        spans,
        counters,
        histograms,
        errors,
    }
}

/// Clear everything recorded so far (counters keep their identity but
/// drop to zero). Intended for tests; a new epoch invalidates
/// [`LazySpan`] caches, and spans still open across a reset record into
/// orphaned nodes that no longer appear in snapshots.
pub fn reset() {
    let reg = registry();
    EPOCH.fetch_add(1, Relaxed);
    *reg.arena.lock() = SpanArena::new();
    for c in reg.counters.read().values() {
        c.store(0, Relaxed);
    }
    for h in reg.hists.read().values() {
        h.clear();
    }
    reg.errors.lock().clear();
    CURRENT.with(|c| c.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so the enabled-mode unit tests
    /// run as one sequence under a single lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_aggregate() {
        let _l = TEST_LOCK.lock();
        reset();
        for _ in 0..3 {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        {
            let _other = span("outer");
        }
        let snap = snapshot();
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.count, 4);
        assert_eq!(inner.count, 3);
        assert_eq!(snap.spans[inner.parent].name, "outer");
        assert_eq!(outer.parent, 0);
        assert!(outer.total_ns >= inner.total_ns);
    }

    #[test]
    fn span_under_crosses_threads() {
        let _l = TEST_LOCK.lock();
        reset();
        let _job = span("job");
        let parent = current();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    let _shard = span_under(parent, "shard");
                });
            }
        });
        drop(_job);
        let snap = snapshot();
        let shard = snap.spans.iter().find(|s| s.name == "shard").unwrap();
        assert_eq!(shard.count, 4);
        assert_eq!(snap.spans[shard.parent].name, "job");
    }

    #[test]
    fn counters_and_histograms_aggregate_concurrently() {
        let _l = TEST_LOCK.lock();
        reset();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        count("t.hits", 1);
                    }
                    observe("t.bytes", 4096);
                });
            }
        });
        assert_eq!(counter_value("t.hits"), 8000);
        let snap = snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "t.bytes")
            .unwrap();
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 8 * 4096);
        assert_eq!(h.buckets, vec![(13, 8)]); // 4096 has 13 significant bits
    }

    #[test]
    fn errors_keep_every_distinct_message() {
        let _l = TEST_LOCK.lock();
        reset();
        error("first failure");
        error("second failure");
        error("first failure");
        let snap = snapshot();
        assert_eq!(
            snap.errors,
            vec![
                ("first failure".to_owned(), 2),
                ("second failure".to_owned(), 1)
            ]
        );
    }

    #[test]
    fn lazy_handles_record_like_their_slow_counterparts() {
        let _l = TEST_LOCK.lock();
        reset();
        static C: LazyCounter = LazyCounter::new("t.lazy.hits");
        static S: LazySpan = LazySpan::new("t.lazy.region");
        for _ in 0..5 {
            C.add(2);
            let _g = S.open();
        }
        count("t.lazy.hits", 1); // same slot, by name
        assert_eq!(counter_value("t.lazy.hits"), 11);
        let snap = snapshot();
        let s = snap
            .spans
            .iter()
            .find(|s| s.name == "t.lazy.region")
            .unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.parent, 0);
    }

    #[test]
    fn lazy_span_follows_parent_changes_and_reset() {
        let _l = TEST_LOCK.lock();
        reset();
        static S: LazySpan = LazySpan::new("t.lazy.child");
        {
            let _a = span("t.parent.a");
            let _g = S.open();
        }
        {
            let _b = span("t.parent.b");
            let _g = S.open();
        }
        let snap = snapshot();
        let children: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.name == "t.lazy.child")
            .map(|s| snap.spans[s.parent].name.clone())
            .collect();
        assert_eq!(children, vec!["t.parent.a", "t.parent.b"]);

        // Reset orphans the cached node; recording must land in the
        // fresh arena, not the old one.
        reset();
        {
            let _g = S.open();
        }
        let snap = snapshot();
        let s = snap
            .spans
            .iter()
            .find(|s| s.name == "t.lazy.child")
            .unwrap();
        assert_eq!(s.count, 1);
    }
}
