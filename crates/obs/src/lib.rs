#![warn(missing_docs)]
//! # callpath-obs
//!
//! Self-observability for the `callpath` pipeline: lightweight **span
//! timers**, **counters**, **histograms** and an **error set** feeding a
//! process-wide static registry, plus an exporter that turns the
//! recorded span tree into a canonical [`Experiment`] — so the tool can
//! present its *own* profile in its own three views (the paper's thesis
//! applied to the paper's tool).
//!
//! ## Recording model
//!
//! * [`span`] opens a timed region nested under the calling thread's
//!   current span (tracked in a thread local); dropping the returned
//!   [`SpanGuard`] closes it. Identical `(parent, name)` pairs aggregate
//!   into one node — the registry holds a *calling context tree of the
//!   instrumentation*, not a trace.
//! * [`span_under`] opens a region under an explicitly captured parent
//!   ([`current`]), which is how spans follow work handed to
//!   `core::chunked` worker threads: capture the parent before the
//!   fan-out, open shard spans under it inside the closure.
//! * [`count`] / [`observe`] / [`error`] are single calls into
//!   lock-protected maps. Hot call sites use [`LazyCounter`] /
//!   [`LazySpan`] instead, which cache the resolved registry entry in a
//!   call-site static — the steady-state cost is one relaxed atomic add
//!   (plus two clock reads for spans), no lock and no string hash.
//!
//! ## Zero cost when disabled
//!
//! Everything above is behind the `enabled` cargo feature. Without it
//! this crate exports the same API as `#[inline]` empty bodies and
//! zero-sized guards, so instrumented code in `core`/`expdb`/`prof`/
//! `viewer` compiles to exactly what it was before instrumentation.
//!
//! ## Presentation
//!
//! [`snapshot`] freezes the registry into a plain-data [`Snapshot`];
//! [`Snapshot::to_json`] renders the `--stats` dump, and
//! [`to_experiment`] converts the span tree into a CCT with
//! inclusive/exclusive time (Eq. 1/2 attribution) and call-count
//! metrics, ready for `to_binary_v2` and all three views.

mod export;

pub use export::{to_experiment, TIME_METRIC_NAME};

#[cfg(feature = "enabled")]
#[path = "imp_enabled.rs"]
mod imp;

#[cfg(not(feature = "enabled"))]
#[path = "imp_disabled.rs"]
mod imp;

pub use imp::{
    count, counter_value, current, enabled, error, observe, reset, snapshot, span, span_under,
    LazyCounter, LazySpan, SpanGuard,
};

/// Opaque handle to a span-tree node, captured with [`current`] and
/// passed across threads to [`span_under`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) u32);

/// One aggregated span-tree node in a [`Snapshot`]. Index 0 is always
/// the synthetic root (zero time, zero count); `parent` indexes into
/// the same vector and parents always precede children.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Span name as given at the recording site, e.g. `viewer.render`.
    pub name: String,
    /// Index of the parent record (0 = root; the root points at itself).
    pub parent: usize,
    /// Number of times this `(calling context, name)` region closed.
    pub count: u64,
    /// Total wall-clock nanoseconds across all closures.
    pub total_ns: u64,
}

/// One histogram in a [`Snapshot`]: power-of-two buckets over `u64`
/// observations (bucket *i* holds values with *i* significant bits,
/// i.e. `[2^(i-1), 2^i)`; bucket 0 holds zeros).
#[derive(Debug, Clone, PartialEq)]
pub struct HistRec {
    /// Histogram name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Non-empty `(significant_bits, count)` buckets, ascending.
    pub buckets: Vec<(u32, u64)>,
}

/// A frozen copy of the registry: everything the `--stats` dump and the
/// [`to_experiment`] exporter need, with no locks attached.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Aggregated span tree in arena order (index 0 = synthetic root).
    pub spans: Vec<SpanRec>,
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistRec>,
    /// Distinct error strings with occurrence counts, in first-seen
    /// order — the "surface *all* failures" half of the lazy-fault fix.
    pub errors: Vec<(String, u64)>,
}

impl Snapshot {
    /// True when nothing was recorded (also the permanent state with
    /// the `enabled` feature off).
    pub fn is_empty(&self) -> bool {
        self.spans.len() <= 1
            && self.counters.is_empty()
            && self.histograms.is_empty()
            && self.errors.is_empty()
    }

    /// Render the snapshot as the `--stats` JSON document. Stable key
    /// order, two-space indentation, no external dependencies.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"obs_enabled\": {},\n", enabled()));
        out.push_str("  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"parent\": {}, \"count\": {}, \"total_ns\": {}}}{}\n",
                json_string(&s.name),
                s.parent,
                s.count,
                s.total_ns,
                if i + 1 < self.spans.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json_string(name)));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": [\n");
        for (i, h) in self.histograms.iter().enumerate() {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(bits, n)| format!("[{bits}, {n}]"))
                .collect();
            out.push_str(&format!(
                "    {{\"name\": {}, \"count\": {}, \"sum\": {}, \"buckets\": [{}]}}{}\n",
                json_string(&h.name),
                h.count,
                h.sum,
                buckets.join(", "),
                if i + 1 < self.histograms.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n  \"errors\": [\n");
        for (i, (msg, n)) in self.errors.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"message\": {}, \"count\": {n}}}{}\n",
                json_string(msg),
                if i + 1 < self.errors.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping: quotes, backslashes and control bytes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_snapshot_serializes() {
        let s = Snapshot::default();
        assert!(s.is_empty());
        let json = s.to_json();
        assert!(json.contains("\"spans\""));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"errors\""));
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_stubs_record_nothing() {
        assert!(!enabled());
        let _g = span("anything");
        count("c", 5);
        observe("h", 42);
        error("boom");
        assert!(snapshot().is_empty());
        assert_eq!(counter_value("c"), 0);
    }
}
