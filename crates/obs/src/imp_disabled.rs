//! No-op stubs (`enabled` feature off): the same API surface as
//! `imp_enabled`, every body empty and `#[inline]`, every type
//! zero-sized — instrumented call sites compile away entirely, which is
//! what the feature-matrix CI build and the obs-off row of
//! `BENCH_obs_overhead.json` pin down.

use crate::{Snapshot, SpanId};

/// Is instrumentation compiled in? `false` in this build.
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// Stub: there is no span tree; always the root id.
#[inline(always)]
pub fn current() -> SpanId {
    SpanId(0)
}

/// Stub span guard: zero-sized, drops without effect.
#[must_use = "a span measures the region it is alive for"]
pub struct SpanGuard(());

/// Stub: returns an inert guard.
#[inline(always)]
pub fn span(_name: &'static str) -> SpanGuard {
    SpanGuard(())
}

/// Stub: returns an inert guard.
#[inline(always)]
pub fn span_under(_parent: SpanId, _name: &'static str) -> SpanGuard {
    SpanGuard(())
}

/// Stub: discards the increment.
#[inline(always)]
pub fn count(_name: &'static str, _delta: u64) {}

/// Stub call-site counter handle: zero-sized, does nothing.
pub struct LazyCounter;

impl LazyCounter {
    /// Stub: the name is discarded.
    #[inline(always)]
    pub const fn new(_name: &'static str) -> Self {
        LazyCounter
    }

    /// Stub: discards the increment.
    #[inline(always)]
    pub fn add(&self, _delta: u64) {}
}

/// Stub call-site span handle: zero-sized, does nothing.
pub struct LazySpan;

impl LazySpan {
    /// Stub: the name is discarded.
    #[inline(always)]
    pub const fn new(_name: &'static str) -> Self {
        LazySpan
    }

    /// Stub: returns an inert guard.
    #[inline(always)]
    pub fn open(&self) -> SpanGuard {
        SpanGuard(())
    }
}

/// Stub: no counters exist; always 0.
#[inline(always)]
pub fn counter_value(_name: &str) -> u64 {
    0
}

/// Stub: discards the observation.
#[inline(always)]
pub fn observe(_name: &'static str, _value: u64) {}

/// Stub: discards the message.
#[inline(always)]
pub fn error(_message: &str) {}

/// Stub: always the empty snapshot.
#[inline(always)]
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// Stub: nothing to clear.
#[inline(always)]
pub fn reset() {}
