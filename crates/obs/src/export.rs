//! Snapshot → canonical experiment: the recorded span tree becomes a
//! CCT of procedure frames, span self-time becomes direct cost of a
//! `time` metric (so Eq. 1 exclusive = self time and Eq. 2 inclusive =
//! subtree wall time), and span closures become a `calls` metric.
//!
//! ## Mapping
//!
//! * Span node → [`ScopeKind::Frame`]: the span name is the procedure,
//!   the name's subsystem prefix (`viewer` of `viewer.render`) is the
//!   file, the load module is `callpath`, and the synthetic "line" is
//!   the node's arena index — stable, unique, and meaningful enough for
//!   the Flat View's module → file → procedure hierarchy to group spans
//!   by subsystem.
//! * Direct `time` cost at a node = recorded total minus the children's
//!   recorded totals, clamped at zero. The clamp matters under
//!   `core::chunked` fan-out: children timed on worker threads can sum
//!   to more wall time than their single-threaded parent, and clamping
//!   (rather than going negative) preserves the presentation invariant
//!   the acceptance test pins — every parent's inclusive time is at
//!   least the sum of its children's.
//! * Direct `calls` cost = the span's closure count.
//!
//! The result is an ordinary eager [`Experiment`]; callers wanting the
//! headline round trip write it with `callpath_expdb::to_binary_v2` and
//! reopen it lazily.

use crate::Snapshot;
use callpath_core::prelude::*;

/// Name of the exported wall-time metric (`ns` unit).
pub const TIME_METRIC_NAME: &str = "time";

/// Subsystem prefix of a span name: `viewer.render` → `viewer`, used as
/// the synthetic source file so the Flat View groups spans by layer.
fn subsystem(name: &str) -> &str {
    match name.split_once('.') {
        Some((prefix, _)) if !prefix.is_empty() => prefix,
        _ => "obs",
    }
}

/// Convert a recorded snapshot into a canonical experiment with `time`
/// (inclusive = subtree wall ns, exclusive = self ns) and `calls`
/// metrics, attributed per Eq. 1/2 by [`Experiment::build`]. An empty
/// snapshot (instrumentation disabled or nothing recorded) yields a
/// root-only experiment with zero totals.
pub fn to_experiment(snap: &Snapshot) -> Experiment {
    let mut names = NameTable::new();
    let module = names.module("callpath");

    let mut cct = Cct::new(NameTable::new());
    // Sum of children's recorded totals per snapshot index, for the
    // self-time clamp. Snapshot order puts parents before children.
    let mut child_ns = vec![0u64; snap.spans.len()];
    for s in snap.spans.iter().skip(1) {
        child_ns[s.parent] = child_ns[s.parent].saturating_add(s.total_ns);
    }

    // Build the frame arena: snapshot index → CCT node. Index 0 (the
    // synthetic root) maps onto the CCT root.
    let mut node_of = vec![cct.root(); snap.spans.len()];
    let mut defs = vec![SourceLoc::new(FileId(0), 0); snap.spans.len()];
    for (i, s) in snap.spans.iter().enumerate().skip(1) {
        let proc = names.proc(&s.name);
        let file = names.file(subsystem(&s.name));
        let def = SourceLoc::new(file, i as u32);
        let call_site = (s.parent != 0).then(|| defs[s.parent]);
        let kind = ScopeKind::Frame {
            proc,
            module,
            def,
            call_site,
        };
        node_of[i] = cct.add_child(node_of[s.parent], kind);
        defs[i] = def;
    }
    // The arena above was built against an empty name table; swap in
    // the populated one so labels resolve.
    cct.names = names;

    let mut raw = RawMetrics::new(StorageKind::Sparse);
    let time = raw.add_metric(MetricDesc::new(TIME_METRIC_NAME, "ns", 1.0));
    let calls = raw.add_metric(MetricDesc::new("calls", "calls", 1.0));
    for (i, s) in snap.spans.iter().enumerate().skip(1) {
        let self_ns = s.total_ns.saturating_sub(child_ns[i]);
        if self_ns > 0 {
            raw.add_cost(time, node_of[i], self_ns as f64);
        }
        if s.count > 0 {
            raw.add_cost(calls, node_of[i], s.count as f64);
        }
    }

    Experiment::build(cct, raw, StorageKind::Sparse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Snapshot, SpanRec};

    fn rec(name: &str, parent: usize, count: u64, total_ns: u64) -> SpanRec {
        SpanRec {
            name: name.to_owned(),
            parent,
            count,
            total_ns,
        }
    }

    fn sample() -> Snapshot {
        Snapshot {
            spans: vec![
                rec("(root)", 0, 0, 0),
                rec("viewer.render", 0, 10, 1_000),
                rec("viewer.full_sort", 1, 4, 600),
                rec("expdb.column_fault", 2, 2, 250),
            ],
            ..Default::default()
        }
    }

    #[test]
    fn span_tree_becomes_a_frame_cct() {
        let exp = to_experiment(&sample());
        assert_eq!(exp.cct.len(), 4, "root + three spans");
        let labels: Vec<String> = exp
            .cct
            .all_nodes()
            .map(|n| exp.cct.kind(n).label(&exp.cct.names))
            .collect();
        assert!(labels.iter().any(|l| l.contains("viewer.render")));
        assert!(labels.iter().any(|l| l.contains("expdb.column_fault")));
    }

    #[test]
    fn time_attribution_is_self_plus_children() {
        let exp = to_experiment(&sample());
        let time = MetricId(0);
        // Nodes are added in snapshot order: 1=render, 2=sort, 3=fault.
        let render = NodeId(1);
        let sort = NodeId(2);
        let fault = NodeId(3);
        assert_eq!(exp.inclusive(time, render), 1_000.0);
        assert_eq!(exp.exclusive(time, render), 400.0, "1000 - 600 self");
        assert_eq!(exp.inclusive(time, sort), 600.0);
        assert_eq!(exp.exclusive(time, sort), 350.0);
        assert_eq!(exp.exclusive(time, fault), 250.0);
        assert_eq!(exp.inclusive(time, exp.cct.root()), 1_000.0);
        // Calls metric rides along as the second column pair.
        let calls = MetricId(1);
        assert_eq!(exp.inclusive(calls, render), 16.0);
        assert_eq!(exp.exclusive(calls, fault), 2.0);
    }

    #[test]
    fn concurrent_children_clamp_to_zero_self_time() {
        // Shards timed on worker threads can out-sum their parent.
        let snap = Snapshot {
            spans: vec![
                rec("(root)", 0, 0, 0),
                rec("prof.correlate", 0, 1, 1_000),
                rec("prof.shard_correlate", 1, 8, 3_000),
            ],
            ..Default::default()
        };
        let exp = to_experiment(&snap);
        let time = MetricId(0);
        assert_eq!(exp.exclusive(time, NodeId(1)), 0.0, "clamped, not negative");
        // Inclusive grows to cover the children: the child-sum ≤ parent
        // presentation invariant survives the fan-out.
        assert_eq!(exp.inclusive(time, NodeId(1)), 3_000.0);
    }

    #[test]
    fn empty_snapshot_exports_a_root_only_experiment() {
        let exp = to_experiment(&Snapshot::default());
        assert_eq!(exp.cct.len(), 1);
        assert_eq!(exp.raw.metric_count(), 2);
        assert_eq!(exp.aggregate(ColumnId(0)), 0.0);
    }
}
