//! Convenience driver for the full measurement-to-presentation pipeline:
//! program → binary → simulated execution → structure recovery →
//! correlation → attributed experiment.

use callpath_core::prelude::{Experiment, StorageKind};
use callpath_prof::correlate;
use callpath_profiler::{execute, lower, ExecConfig, ExecResult, Program};
use callpath_structure::recover;

/// Everything the pipeline produced, for tests and benches that need the
/// intermediate artifacts too.
pub struct PipelineOutput {
    /// The lowered binary image.
    pub binary: callpath_profiler::Binary,
    /// Recovered static structure.
    pub structure: callpath_structure::Structure,
    /// Execution result (profile, ground truth, barrier arrivals).
    pub exec: ExecResult,
    /// The attributed experiment.
    pub experiment: Experiment,
}

/// Run the full pipeline on `program` under `config`.
pub fn run(program: &Program, config: &ExecConfig, storage: StorageKind) -> PipelineOutput {
    let binary = lower(program);
    let exec = execute(&binary, config).expect("simulated execution failed");
    let structure = recover(&binary).expect("structure recovery failed");
    let experiment = correlate(&structure, &exec.profile, config.periods, storage);
    PipelineOutput {
        binary,
        structure,
        exec,
        experiment,
    }
}

/// Run the pipeline and return only the experiment.
pub fn build_experiment(program: &Program, config: &ExecConfig) -> Experiment {
    run(program, config, StorageKind::Dense).experiment
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_profiler::{Costs, Counter, Op, ProgramBuilder};

    #[test]
    fn pipeline_round_trips_total_cost() {
        let mut b = ProgramBuilder::new("t");
        let f = b.file("t.c");
        let main = b.declare("main", f, 1);
        b.body(main, vec![Op::work(2, Costs::cycles(100_000))]);
        b.entry(main);
        let cfg = ExecConfig {
            jitter_seed: None,
            ..ExecConfig::single(Counter::Cycles, 100)
        };
        let out = run(&b.build(), &cfg, StorageKind::Dense);
        let incl = out
            .experiment
            .inclusive_col(callpath_core::prelude::MetricId(0));
        assert_eq!(
            out.experiment
                .columns
                .get(incl, out.experiment.cct.root().0),
            100_000.0
        );
        assert_eq!(out.exec.totals[Counter::Cycles], 100_000);
    }
}
