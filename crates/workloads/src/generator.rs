//! Random workload generators for the scalability experiments
//! (Section VII): arbitrary-size programs for the full pipeline, and
//! arbitrary-size ready-made experiments for view-construction benches
//! that don't need the simulator in the loop.

use callpath_core::prelude::*;
use callpath_profiler::{Costs, Op, Program, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for random program generation.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// RNG seed (same seed, same program).
    pub seed: u64,
    /// Number of procedures.
    pub n_procs: usize,
    /// Calls per procedure body (to strictly-later procedures, so the call
    /// graph is a DAG and needs no recursion guards).
    pub calls_per_proc: usize,
    /// Probability that a call site sits inside a loop.
    pub loop_probability: f64,
    /// Cycles of work per procedure body.
    pub work_cycles: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 42,
            n_procs: 100,
            calls_per_proc: 3,
            loop_probability: 0.3,
            work_cycles: 10_000,
        }
    }
}

/// Generate a random layered program: procedure `i` calls only procedures
/// `> i`, keeping the call graph acyclic while producing deep, bushy CCTs.
pub fn random_program(cfg: GenConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = ProgramBuilder::new("synth");
    let n_files = (cfg.n_procs / 10).max(1);
    let files: Vec<usize> = (0..n_files)
        .map(|i| b.file(&format!("synth_{i}.c")))
        .collect();
    let procs: Vec<usize> = (0..cfg.n_procs)
        .map(|i| {
            let f = files[i % n_files];
            b.declare(&format!("proc_{i:04}"), f, (i as u32) * 100 + 1)
        })
        .collect();
    for i in 0..cfg.n_procs {
        let base_line = (i as u32) * 100 + 2;
        let mut body = vec![Op::work(base_line, Costs::cycles(cfg.work_cycles.max(1)))];
        if i + 1 < cfg.n_procs {
            for k in 0..cfg.calls_per_proc {
                let callee = procs[rng.gen_range(i + 1..cfg.n_procs)];
                let line = base_line + 1 + k as u32;
                let call = Op::call(line, callee);
                if rng.gen_bool(cfg.loop_probability) {
                    body.push(Op::looped(line, rng.gen_range(2..5), vec![call]));
                } else {
                    body.push(call);
                }
            }
        }
        b.body(procs[i], body);
    }
    b.entry(procs[0]);
    b.build()
}

/// Generate a ready-made experiment with approximately `target_nodes` CCT
/// nodes: a random tree of frames with statements carrying random costs.
/// Bypasses the simulator so view benches isolate view construction.
pub fn random_experiment(seed: u64, target_nodes: usize, n_procs: usize) -> Experiment {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut names = NameTable::new();
    let module = names.module("synth");
    let files: Vec<FileId> = (0..(n_procs / 8).max(1))
        .map(|i| names.file(&format!("synth_{i}.c")))
        .collect();
    let procs: Vec<ProcId> = (0..n_procs)
        .map(|i| names.proc(&format!("proc_{i:04}")))
        .collect();
    let proc_file: Vec<FileId> = (0..n_procs).map(|i| files[i % files.len()]).collect();

    let mut cct = Cct::new(names);
    let root = cct.root();
    let main = cct.add_child(
        root,
        ScopeKind::Frame {
            proc: procs[0],
            module,
            def: SourceLoc::new(proc_file[0], 1),
            call_site: None,
        },
    );
    let mut frames = vec![main];
    let mut raw = RawMetrics::new(StorageKind::Dense);
    let cyc = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));

    while cct.len() < target_nodes {
        // Pick a random existing frame and grow under it: either a callee
        // frame (possibly through a loop) or a costed statement.
        let parent = frames[rng.gen_range(0..frames.len())];
        if rng.gen_bool(0.6) {
            let p = rng.gen_range(0..n_procs);
            let anchor = if rng.gen_bool(0.25) {
                cct.add_child(
                    parent,
                    ScopeKind::Loop {
                        header: SourceLoc::new(proc_file[p], rng.gen_range(2..1000)),
                    },
                )
            } else {
                parent
            };
            let frame = cct.add_child(
                anchor,
                ScopeKind::Frame {
                    proc: procs[p],
                    module,
                    def: SourceLoc::new(proc_file[p], 1),
                    call_site: Some(SourceLoc::new(proc_file[p], rng.gen_range(2..1000))),
                },
            );
            frames.push(frame);
        } else {
            let stmt = cct.add_child(
                parent,
                ScopeKind::Stmt {
                    loc: SourceLoc::new(
                        files[rng.gen_range(0..files.len())],
                        rng.gen_range(2..1000),
                    ),
                },
            );
            raw.add_cost(cyc, stmt, rng.gen_range(1..1000) as f64);
        }
    }
    Experiment::build(cct, raw, StorageKind::Dense)
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_profiler::{execute, lower, ExecConfig};

    #[test]
    fn random_program_is_valid_and_runs() {
        let p = random_program(GenConfig {
            n_procs: 30,
            ..Default::default()
        });
        assert!(p.validate().is_ok());
        let bin = lower(&p);
        let res = execute(&bin, &ExecConfig::default()).unwrap();
        assert!(res.totals[callpath_profiler::Counter::Cycles] > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_program(GenConfig::default());
        let b = random_program(GenConfig::default());
        assert_eq!(a, b);
        let e1 = random_experiment(7, 500, 20);
        let e2 = random_experiment(7, 500, 20);
        assert_eq!(e1.cct.len(), e2.cct.len());
    }

    #[test]
    fn random_experiment_hits_target_size() {
        let e = random_experiment(1, 2000, 50);
        assert!(e.cct.len() >= 2000);
        assert!(e.cct.len() < 2100, "overshoot is bounded");
        assert!(e.cct.validate().is_ok());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_experiment(1, 300, 20);
        let b = random_experiment(2, 300, 20);
        // Extremely unlikely to coincide: compare total cost.
        let ca = a.aggregate(ColumnId(0));
        let cb = b.aggregate(ColumnId(0));
        assert_ne!(ca, cb);
    }
}
