#![warn(missing_docs)]
//! # callpath-workloads
//!
//! Synthetic program models shaped like the paper's case studies, plus
//! random workload generators for the scalability benches.
//!
//! | Module | Paper artifact | Shape |
//! |---|---|---|
//! | [`fig1`] | Fig. 1/2 toy program | two files, recursive `g`, loop nest in `h`; also a hand-built CCT with the figure's exact costs |
//! | [`s3d`] | Fig. 3 & 6 (turbulent combustion) | deep Fortran-style chain, `chemkin` reaction rates ≈ 41% inclusive, memory-bound flux loop at ~6% FP efficiency, exp-routine loop at ~39% |
//! | [`moab`] | Fig. 4 & 5 (mesh benchmark) | inlined red-black-tree search under `get_coords`, `_intel_fast_memset.A` called from two contexts |
//! | [`pflotran`] | Fig. 7 (subsurface flow) | SPMD time-stepper with barriers and an uneven domain partition |
//! | [`generator`] | Section VII scalability | random programs and random ready-made experiments of arbitrary size |
//! | [`synth`] | zero-copy scaling bench | million-node database models emitted directly as [`callpath_expdb::model::DbModel`] |
//!
//! [`pipeline::build_experiment`] runs the full toolchain (lower → execute
//! → recover structure → correlate) on any of these programs.

pub mod fig1;
pub mod generator;
pub mod moab;
pub mod pflotran;
pub mod pipeline;
pub mod s3d;
pub mod synth;
