//! An S3D-shaped turbulent-combustion workload (Figs. 3 and 6).
//!
//! The real S3D is a Sandia direct-numerical-simulation code; what the
//! paper's figures show about it is *structural*:
//!
//! * a deep Fortran call chain from a binary-only `main` wrapper down to
//!   `chemkin_m_reaction_rate_`, which accounts for ≈41.4% of inclusive
//!   cycles (Fig. 3, found by hot path analysis);
//! * the main integration loop at `integrate_erk.f90:82` with ≈97.9%
//!   inclusive but ≈0.0% exclusive cycles;
//! * a memory-bound flux-diffusion loop running at ≈6% floating-point
//!   efficiency that tops the derived *waste* metric ranking, and a math-
//!   library exponential loop at ≈39% efficiency ranked next (Fig. 6);
//! * a `tuned` variant whose flux loop runs 2.9× faster (the paper's
//!   loop-transformation result).
//!
//! This module reproduces those proportions with a synthetic program. All
//! percentages are engineered through per-scope cycle budgets and FP
//! efficiencies on a 4-FLOP/cycle machine.

use callpath_profiler::{Costs, Counter, Op, Program, ProgramBuilder};

/// Peak FLOPs per cycle of the simulated machine (used by the waste and
/// relative-efficiency derived metrics).
pub const PEAK_FLOPS_PER_CYCLE: f64 = 4.0;

/// Scale knob: cycles per 1% of total runtime. The default gives ~10^8
/// total cycles — enough for tight sampling statistics at period ~1000.
pub const CYCLES_PER_PERCENT: u64 = 1_000_000;

/// Runge-Kutta time steps taken by the integration loop at line 82. Work
/// inside the loop is budgeted per whole-run percent and divided across
/// the steps.
pub const TIME_STEPS: u32 = 6;

/// Configuration for the S3D-shaped program.
#[derive(Debug, Clone, Copy)]
pub struct S3dConfig {
    /// Cycle budget per percent of runtime.
    pub unit: u64,
    /// Speedup applied to the flux-diffusion loop (1.0 = untuned paper
    /// code; 2.9 = after the paper's loop transformations).
    pub flux_speedup: f64,
}

impl Default for S3dConfig {
    fn default() -> Self {
        S3dConfig {
            unit: CYCLES_PER_PERCENT,
            flux_speedup: 1.0,
        }
    }
}

impl S3dConfig {
    /// The configuration after the paper's 2.9x loop transformation.
    pub fn tuned() -> Self {
        S3dConfig {
            flux_speedup: 2.9,
            ..Default::default()
        }
    }
}

/// Compute-loop helper: a loop of `trips` iterations whose body performs
/// floating-point work totalling `percent` of runtime at `efficiency`.
fn fp_loop(
    header_line: u32,
    body_line: u32,
    trips: u32,
    percent: f64,
    efficiency: f64,
    unit: u64,
) -> Op {
    let total_cycles = (percent * unit as f64) as u64;
    let cycles_per_trip = (total_cycles / trips as u64).max(1);
    let flops_per_trip =
        (cycles_per_trip as f64 * PEAK_FLOPS_PER_CYCLE * efficiency).round() as u64;
    Op::looped(
        header_line,
        trips,
        vec![Op::work(
            body_line,
            Costs::compute(flops_per_trip.max(1), PEAK_FLOPS_PER_CYCLE, efficiency),
        )],
    )
}

/// Build the S3D-shaped program.
///
/// Cycle budget (percent of total):
///
/// ```text
/// s3d_main
///   init work ............................ 2.1%
///   loop @ integrate_erk.f90:82 .......... 97.9% inclusive, ~0 exclusive
///     rhsf_ .............................. ~75% inclusive
///       own statements ................... 8.7%  (70% FP efficiency)
///       chemkin_m_reaction_rate_ ......... 41.4% inclusive
///         4 rate loops (75% efficiency) .. 33.4%
///         exp_ (libm, 39% efficiency) .... 6.0%  <- 2nd waste target
///         getrates_ (80% efficiency) ..... 2.0%
///       diffusive_flux_ (6% efficiency) .. 4.0%  <- top waste target
///       transport_ (2 loops, 85% eff) .... 21.0%
///     integrate_update_ (90% eff) ........ 23.0%
/// ```
///
/// The chemkin/transport work is split across several loops so that no
/// single well-tuned loop out-wastes the memory-bound flux loop: the
/// derived waste ranking (Fig. 6) must put the 6%-efficiency loop first
/// even though it consumes far fewer cycles than the compute loops.
pub fn program(cfg: S3dConfig) -> Program {
    let unit = cfg.unit;
    // Everything called from inside the time-step loop executes TIME_STEPS
    // times; budget those scopes per iteration so whole-run percentages
    // come out as documented.
    let per_step = |pct: f64| pct / TIME_STEPS as f64;
    let mut b = ProgramBuilder::new("s3d.x");
    let f_int = b.file("integrate_erk.f90");
    let f_rhsf = b.file("rhsf.f90");
    let f_chem = b.file("chemkin_m.f90");
    let f_flux = b.file("diffflux.f90");
    let f_trans = b.file("transport_m.f90");
    let f_libm = b.file("libm_exp.c");

    // The exponential lives in the math library: its own load module.
    let exp_ = b.declare_in_module("__ieee754_exp", "libm.so.6", f_libm, 40);
    let getrates = b.declare("getrates_", f_chem, 900);
    let chemkin = b.declare("chemkin_m_reaction_rate_", f_chem, 120);
    let flux = b.declare("diffusive_flux_", f_flux, 55);
    let transport = b.declare("transport_m_computecoefficients_", f_trans, 210);
    let rhsf = b.declare("rhsf_", f_rhsf, 30);
    let update = b.declare("integrate_update_", f_int, 140);
    // The integration driver lives in integrate_erk.f90 — the paper's
    // famous loop is at line 82 of that file.
    let s3d_main = b.declare("s3d_main", f_int, 10);
    let runtime_main = b.declare_binary_only("main");

    // libm exponential: tightly-tuned pipeline loop, 39% efficiency.
    b.body(exp_, vec![fp_loop(44, 45, 512, per_step(6.0), 0.39, unit)]);

    // getrates: straightforward compute.
    b.body(
        getrates,
        vec![fp_loop(905, 906, 256, per_step(2.0), 0.80, unit)],
    );

    // chemkin reaction rates: four species-group loops at 75% efficiency
    // plus calls to exp and getrates. Inclusive ≈ 4×8.35 + 6 + 2 = 41.4%.
    b.body(
        chemkin,
        vec![
            fp_loop(130, 131, 1024, per_step(8.35), 0.75, unit),
            fp_loop(134, 135, 1024, per_step(8.35), 0.75, unit),
            fp_loop(138, 139, 1024, per_step(8.35), 0.75, unit),
            fp_loop(142, 143, 1024, per_step(8.35), 0.75, unit),
            Op::call(160, exp_),
            Op::call(161, getrates),
        ],
    );

    // Flux-diffusion loop: streams data through the memory hierarchy —
    // 6% FP efficiency, heavy L1 traffic. The tuned variant divides the
    // cycle cost by `flux_speedup` while performing the same FLOPs (i.e.
    // its efficiency rises), exactly what the paper's transformation did.
    {
        let percent = per_step(4.0) / cfg.flux_speedup;
        let eff = (0.06 * cfg.flux_speedup).min(1.0);
        let total_cycles = (percent * unit as f64) as u64;
        let trips = 2048u32;
        let cycles_per_trip = (total_cycles / trips as u64).max(1);
        let flops_per_trip = (cycles_per_trip as f64 * PEAK_FLOPS_PER_CYCLE * eff)
            .round()
            .max(1.0) as u64;
        let misses_per_trip = (cycles_per_trip / 8).max(1);
        b.body(
            flux,
            vec![Op::looped(
                60,
                trips,
                vec![Op::work(
                    61,
                    Costs::compute(flops_per_trip, PEAK_FLOPS_PER_CYCLE, eff)
                        .with(Counter::L1DcMisses, misses_per_trip),
                )],
            )],
        );
    }

    // Transport coefficients: well-tuned compute, two loops.
    b.body(
        transport,
        vec![
            fp_loop(215, 216, 1024, per_step(10.5), 0.85, unit),
            fp_loop(220, 221, 1024, per_step(10.5), 0.85, unit),
        ],
    );

    // rhsf: its own statements (8.7%) plus the physics calls.
    b.body(
        rhsf,
        vec![
            Op::work(
                35,
                Costs::compute(
                    (per_step(8.7) * unit as f64 * PEAK_FLOPS_PER_CYCLE * 0.7) as u64,
                    PEAK_FLOPS_PER_CYCLE,
                    0.7,
                ),
            ),
            Op::call(40, chemkin),
            Op::call(41, flux),
            Op::call(42, transport),
        ],
    );

    // The Runge-Kutta integration driver: the famous loop at line 82.
    b.body(
        s3d_main,
        vec![
            // init: 2.1%
            Op::work(
                12,
                Costs::compute(
                    (2.1 * unit as f64 * PEAK_FLOPS_PER_CYCLE * 0.7) as u64,
                    PEAK_FLOPS_PER_CYCLE,
                    0.7,
                ),
            ),
            Op::looped(
                82,
                TIME_STEPS,
                vec![Op::call(83, rhsf), Op::call(84, update)],
            ),
        ],
    );

    b.body(
        update,
        vec![fp_loop(145, 146, 512, per_step(23.0), 0.90, unit)],
    );

    // Binary-only runtime wrapper at the top of every call chain (Fig. 3
    // renders it in plain black).
    b.body(runtime_main, vec![Op::call(0, s3d_main)]);
    b.entry(runtime_main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_profiler::{execute, lower, ExecConfig};

    #[test]
    fn program_validates() {
        assert!(program(S3dConfig::default()).validate().is_ok());
        assert!(program(S3dConfig::tuned()).validate().is_ok());
    }

    #[test]
    fn cycle_budget_is_roughly_100_units() {
        let p = program(S3dConfig::default());
        let bin = lower(&p);
        let res = execute(&bin, &ExecConfig::default()).unwrap();
        let total = res.totals[Counter::Cycles] as f64;
        let unit = CYCLES_PER_PERCENT as f64;
        assert!(
            (total / unit - 100.0).abs() < 5.0,
            "total {} units",
            total / unit
        );
    }

    #[test]
    fn tuned_variant_is_faster() {
        let base = execute(
            &lower(&program(S3dConfig::default())),
            &ExecConfig::default(),
        )
        .unwrap()
        .totals[Counter::Cycles];
        let tuned = execute(&lower(&program(S3dConfig::tuned())), &ExecConfig::default())
            .unwrap()
            .totals[Counter::Cycles];
        assert!(tuned < base);
        // Whole-program speedup is modest (only the flux loop changed).
        let saved = (base - tuned) as f64 / CYCLES_PER_PERCENT as f64;
        assert!(
            (saved - (4.0 - 4.0 / 2.9)).abs() < 0.5,
            "saved {saved} units"
        );
    }

    #[test]
    fn update_loop_runs_once_per_timestep() {
        // 6 timesteps × (23/6)% each ≈ 23% total in integrate_update_.
        let p = program(S3dConfig::default());
        let bin = lower(&p);
        let res = execute(&bin, &ExecConfig::default()).unwrap();
        // Ground truth only; attribution checks live in the integration
        // tests.
        assert!(res.totals[Counter::FpOps] > 0);
    }
}
