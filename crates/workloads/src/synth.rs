//! Million-node synthetic databases for the zero-copy scaling bench.
//!
//! The other generators in this crate produce [`Experiment`]s — fine at
//! view-bench sizes, but building (and attributing) a 10⁶-node,
//! 10³-column experiment in memory just to serialize it again is
//! exactly the cost the lazy reader exists to avoid. This generator
//! therefore emits a [`DbModel`] directly: node records and sparse cost
//! lists, ready for `callpath_expdb::bin2::write` / `write_v21`, with
//! nothing attributed and nothing interned twice.
//!
//! Shapes are deterministic in the seed (a splitmix64 stream, so the
//! generator needs no RNG state beyond one `u64`) and loosely modeled
//! on large HPC profiles: a few load modules, thousands of procedures,
//! call chains tens of frames deep with loops and statements at the
//! fringe, and metric columns that each touch a sparse, ascending
//! subset of the tree.
//!
//! [`Experiment`]: callpath_core::prelude::Experiment

use callpath_expdb::model::{DbMetric, DbModel, DbNode, DbScope};

/// Parameters for [`synth_model`]. All sizes are exact, not targets.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Seed for the deterministic stream (same seed, same model).
    pub seed: u64,
    /// Non-root CCT nodes.
    pub n_nodes: usize,
    /// Metric columns.
    pub n_metrics: usize,
    /// Non-zero entries per metric column (capped at `n_nodes`).
    pub nnz_per_metric: usize,
    /// Procedure-name table size.
    pub n_procs: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 0x5eed,
            n_nodes: 100_000,
            n_metrics: 64,
            nnz_per_metric: 256,
            n_procs: 500,
        }
    }
}

impl SynthConfig {
    /// The scale the zero-copy bench runs at: a ~10⁶-node CCT with
    /// 1024 sparse columns — far past what an eager open can absorb.
    pub fn million() -> Self {
        SynthConfig {
            seed: 0x5eed,
            n_nodes: 1_000_000,
            n_metrics: 1024,
            nnz_per_metric: 1024,
            n_procs: 2000,
        }
    }
}

/// splitmix64: tiny, statistically fine for shaping test data, and
/// stateless per call — the stream is a pure function of (seed, i).
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Build a synthetic database model of the exact configured size.
pub fn synth_model(cfg: &SynthConfig) -> DbModel {
    let n_procs = cfg.n_procs.max(1);
    let n_files = (n_procs / 8).max(1);
    let procs: Vec<String> = (0..n_procs).map(|i| format!("proc_{i:05}")).collect();
    let files: Vec<String> = (0..n_files).map(|i| format!("synth_{i:03}.f90")).collect();
    let modules = vec![
        "app".to_string(),
        "libmath.so".to_string(),
        "libmpi.so".to_string(),
        "libc.so".to_string(),
    ];

    // Nodes, parents strictly preceding children. Each node attaches to
    // a recent ancestor (geometric-ish window keeps chains tens deep)
    // and is a frame, loop, or statement by a fixed mix.
    let mut nodes = Vec::with_capacity(cfg.n_nodes);
    // framed[id]: does node `id` have a frame (or inlined frame) on its
    // path to the root? Loops and statements are only legal under one.
    let mut framed = vec![false; cfg.n_nodes + 1];
    for i in 0..cfg.n_nodes {
        let id = i as u32 + 1;
        let r = mix(cfg.seed, i as u64);
        // Window back over up to 64 predecessors; skewing the window
        // toward small distances yields deep call chains.
        let window = (id).min(1 + (r % 64) as u32 * ((r >> 8) & 0x3) as u32 / 3);
        let parent = id - 1 - (r >> 32) as u32 % window.max(1);
        let p = (r >> 16) as usize % n_procs;
        let f = p % n_files;
        let line = 2 + (r >> 48) as u32 % 997;
        let pick = if framed[parent as usize] { r % 10 } else { 0 };
        let scope = match pick {
            0..=3 => DbScope::Frame {
                proc: p as u32,
                module: (r >> 24) as u32 % modules.len() as u32,
                def_file: f as u32,
                def_line: 1 + p as u32 % 100,
                call_site: if r & 0x400 == 0 {
                    Some((f as u32, line))
                } else {
                    None
                },
            },
            4 => DbScope::Inlined {
                proc: p as u32,
                def_file: f as u32,
                def_line: 1 + p as u32 % 100,
                cs_file: f as u32,
                cs_line: line,
            },
            5 => DbScope::Loop {
                file: f as u32,
                line,
            },
            _ => DbScope::Stmt {
                file: f as u32,
                line,
            },
        };
        framed[id as usize] = framed[parent as usize] || pick <= 4;
        nodes.push(DbNode { parent, scope });
    }

    let n_total = cfg.n_nodes as u64 + 1;
    let nnz = cfg.nnz_per_metric.min(cfg.n_nodes).max(1) as u64;
    let metrics = (0..cfg.n_metrics)
        .map(|m| {
            // Ascending distinct node ids: walk the id space in nnz
            // strides with per-metric jitter inside each stride.
            let stride = (n_total - 1) / nnz;
            let costs: Vec<(u32, f64)> = (0..nnz)
                .map(|k| {
                    let r = mix(cfg.seed ^ (m as u64).rotate_left(17), k);
                    let lo = 1 + k * stride;
                    let node = if stride > 1 { lo + r % stride } else { lo };
                    let v = 1.0 + (r >> 11) as f64 / (1u64 << 53) as f64 * 999.0;
                    (node as u32, (v * 64.0).round() / 64.0)
                })
                .collect();
            DbMetric {
                name: format!("PAPI_SYNTH_{m:04}"),
                unit: "events".into(),
                period: 1.0,
                costs,
            }
        })
        .collect();

    DbModel {
        procs,
        files,
        modules,
        nodes,
        metrics,
        derived: vec![("waste".into(), "$0 * 2 - $1".into())],
        sparse: true,
    }
}

/// Parameters for [`ensemble_run`]: a family of related synthetic runs
/// sharing one base topology, for the ensemble-supergraph bench.
#[derive(Debug, Clone, Copy)]
pub struct EnsembleConfig {
    /// Seed shared by the whole family.
    pub seed: u64,
    /// Runs in the family (bounds the valid `r` of [`ensemble_run`]).
    pub n_runs: usize,
    /// Non-root nodes of the shared base topology (identical in every
    /// run — this is what the union deduplicates).
    pub base_nodes: usize,
    /// Run-specific tail nodes appended after the base (what makes the
    /// union strictly larger than any single run).
    pub tail_nodes: usize,
    /// Metric columns per run.
    pub n_metrics: usize,
    /// Non-zero entries per metric column.
    pub nnz_per_metric: usize,
    /// Every `outlier_every`-th run has metric 0 inflated 8× so
    /// outlier scoring has designated ground truth; 0 disables.
    pub outlier_every: usize,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig {
            seed: 0xe45e,
            n_runs: 1000,
            base_nodes: 5000,
            tail_nodes: 40,
            n_metrics: 2,
            nnz_per_metric: 800,
            outlier_every: 97,
        }
    }
}

/// Whether run `r` is a designated outlier under `cfg`.
pub fn is_outlier_run(cfg: &EnsembleConfig, r: usize) -> bool {
    cfg.outlier_every > 0 && r % cfg.outlier_every == cfg.outlier_every - 1
}

/// Build run `r` of a synthetic ensemble family: the shared base
/// topology (a pure function of `cfg.seed`), a run-specific tail of
/// frame chains, and per-run jittered costs. Deterministic in
/// `(cfg, r)`.
pub fn ensemble_run(cfg: &EnsembleConfig, r: usize) -> DbModel {
    let mut model = synth_model(&SynthConfig {
        seed: cfg.seed,
        n_nodes: cfg.base_nodes,
        n_metrics: 0,
        nnz_per_metric: 0,
        n_procs: 200,
    });
    model.derived.clear();

    // Run-specific tail: short chains of frames hung off random base
    // nodes. Frames are legal anywhere, so no framed-path bookkeeping.
    let run_seed = cfg.seed ^ (r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let n_procs = model.procs.len() as u32;
    let n_files = model.files.len() as u32;
    for i in 0..cfg.tail_nodes {
        let id = (cfg.base_nodes + i) as u32 + 1;
        let t = mix(run_seed, i as u64);
        let parent = if i > 0 && !t.is_multiple_of(4) {
            id - 1
        } else {
            (t >> 32) as u32 % (cfg.base_nodes as u32 + 1)
        };
        let p = (t >> 8) as u32 % n_procs;
        model.nodes.push(DbNode {
            parent,
            scope: DbScope::Frame {
                proc: p,
                module: (t >> 24) as u32 % model.modules.len() as u32,
                def_file: p % n_files,
                def_line: 1 + p % 100,
                call_site: Some((p % n_files, 2 + (t >> 48) as u32 % 997)),
            },
        });
    }

    let n_total = model.nodes.len() as u64 + 1;
    let nnz = cfg.nnz_per_metric.min(model.nodes.len()).max(1) as u64;
    let inflate = if is_outlier_run(cfg, r) { 8.0 } else { 1.0 };
    model.metrics = (0..cfg.n_metrics)
        .map(|m| {
            let stride = (n_total - 1) / nnz;
            let costs: Vec<(u32, f64)> = (0..nnz)
                .map(|k| {
                    let t = mix(run_seed ^ (m as u64).rotate_left(17), k);
                    let lo = 1 + k * stride;
                    let node = if stride > 1 { lo + t % stride } else { lo };
                    let v = 1.0 + (t >> 11) as f64 / (1u64 << 53) as f64 * 999.0;
                    let v = if m == 0 { v * inflate } else { v };
                    (node as u32, (v * 64.0).round() / 64.0)
                })
                .collect();
            DbMetric {
                name: format!("PAPI_ENS_{m:02}"),
                unit: "events".into(),
                period: 1.0,
                costs,
            }
        })
        .collect();
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_is_deterministic_and_well_formed() {
        let cfg = SynthConfig {
            n_nodes: 5000,
            n_metrics: 8,
            nnz_per_metric: 64,
            ..Default::default()
        };
        let a = synth_model(&cfg);
        let b = synth_model(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.nodes.len(), 5000);
        assert_eq!(a.metrics.len(), 8);
        for (i, n) in a.nodes.iter().enumerate() {
            assert!(
                n.parent < i as u32 + 1,
                "node {}: parent after child",
                i + 1
            );
        }
        for m in &a.metrics {
            assert_eq!(m.costs.len(), 64);
            assert!(m.costs.windows(2).all(|w| w[0].0 < w[1].0), "{}", m.name);
            assert!(m.costs.last().unwrap().0 <= a.nodes.len() as u32);
        }
    }

    #[test]
    fn ensemble_runs_share_the_base_and_differ_in_the_tail() {
        let cfg = EnsembleConfig {
            n_runs: 4,
            base_nodes: 300,
            tail_nodes: 10,
            nnz_per_metric: 50,
            outlier_every: 3,
            ..Default::default()
        };
        let a = ensemble_run(&cfg, 0);
        let b = ensemble_run(&cfg, 1);
        assert_eq!(ensemble_run(&cfg, 0), a, "deterministic");
        assert_eq!(a.nodes[..300], b.nodes[..300], "shared base");
        assert_ne!(a.nodes[300..], b.nodes[300..], "distinct tails");
        assert_eq!(a.nodes.len(), 310);
        for (i, n) in a.nodes.iter().enumerate() {
            assert!(n.parent < i as u32 + 1);
        }
        for m in &a.metrics {
            assert!(m.costs.windows(2).all(|w| w[0].0 < w[1].0));
        }
        // Run 2 is the designated outlier (every 3rd): metric 0 is
        // inflated relative to run 0, metric 1 is not.
        assert!(is_outlier_run(&cfg, 2) && !is_outlier_run(&cfg, 0));
        let total = |m: &DbMetric| m.costs.iter().map(|&(_, v)| v).sum::<f64>();
        let c = ensemble_run(&cfg, 2);
        assert!(total(&c.metrics[0]) > 4.0 * total(&a.metrics[0]));
        assert!(total(&c.metrics[1]) < 2.0 * total(&a.metrics[1]));
        // Every run must open as a valid experiment.
        a.into_experiment().unwrap();
        c.into_experiment().unwrap();
    }

    #[test]
    fn synth_model_opens_as_an_experiment() {
        let cfg = SynthConfig {
            n_nodes: 2000,
            n_metrics: 4,
            nnz_per_metric: 128,
            ..Default::default()
        };
        let model = synth_model(&cfg);
        let exp = model.clone().into_experiment().unwrap();
        assert_eq!(exp.cct.len(), 2001);
        // And round-trips through both v2 revisions.
        let v2 = callpath_expdb::bin2::write(&model);
        let v21 = callpath_expdb::bin2::write_v21(&model);
        assert_eq!(callpath_expdb::bin2::read(&v2).unwrap(), model);
        assert_eq!(callpath_expdb::bin2::read(&v21).unwrap(), model);
        assert!(v21.len() > v2.len(), "fixed-width trades size for speed");
    }
}
