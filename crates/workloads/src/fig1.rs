//! The paper's Fig. 1 toy program, in two forms:
//!
//! * [`experiment`] — a hand-built canonical CCT carrying the *exact*
//!   costs of Fig. 2a, so the golden tests can check every number in the
//!   figure's three trees;
//! * [`program`] — a runnable [`Program`] with the same static shape
//!   (recursive `g` bounded at depth 2, loop nest `l1{l2}` in `h`), for
//!   exercising the measurement pipeline end to end.

use callpath_core::prelude::*;
use callpath_profiler::{Costs, Op, Program, ProgramBuilder};

/// Node handles of the hand-built Fig. 2a CCT, named as in the figure.
pub struct Fig2Nodes {
    /// The main routine.
    pub m: NodeId,
    /// `f`, called from `m`.
    pub f: NodeId,
    /// Outer activation of `g` (under `f`).
    pub g1: NodeId,
    /// Recursive activation of `g` (under `g1`).
    pub g2: NodeId,
    /// `g` called directly from `m`.
    pub g3: NodeId,
    /// `h`, called from `g2`.
    pub h: NodeId,
    /// Outer loop in `h`.
    pub l1: NodeId,
    /// Inner loop in `h`.
    pub l2: NodeId,
}

/// Build the canonical CCT of Fig. 2a with the figure's exact costs:
///
/// ```text
/// m (10,0) ── f (7,1) ── g1 (6,1) ── g2 (5,1) ── h (4,4) ── l1 (4,0) ── l2 (4,4)
///         └── g3 (3,3)
/// ```
///
/// The single metric is named `cost` with period 1, so attributed values
/// equal the figure's integers exactly.
pub fn experiment() -> (Experiment, Fig2Nodes) {
    let mut names = NameTable::new();
    let file1 = names.file("file1.c");
    let file2 = names.file("file2.c");
    let module = names.module("a.out");
    let p_m = names.proc("m");
    let p_f = names.proc("f");
    let p_g = names.proc("g");
    let p_h = names.proc("h");
    let mut cct = Cct::new(names);
    let root = cct.root();
    let frame = |proc, def: (FileId, u32), cs: Option<(FileId, u32)>| ScopeKind::Frame {
        proc,
        module,
        def: SourceLoc::new(def.0, def.1),
        call_site: cs.map(|(f, l)| SourceLoc::new(f, l)),
    };
    // Static shape from Fig. 1: m is defined at file1.c:6, f at file1.c:1,
    // g at file2.c:2, h at file2.c:7. m calls f at line 7 and g at line 8;
    // f calls g at line 2; g calls g at line 3 and h at line 4.
    let m = cct.add_child(root, frame(p_m, (file1, 6), None));
    let f = cct.add_child(m, frame(p_f, (file1, 1), Some((file1, 7))));
    let g1 = cct.add_child(f, frame(p_g, (file2, 2), Some((file1, 2))));
    let g2 = cct.add_child(g1, frame(p_g, (file2, 2), Some((file2, 3))));
    let h = cct.add_child(g2, frame(p_h, (file2, 7), Some((file2, 4))));
    let l1 = cct.add_child(
        h,
        ScopeKind::Loop {
            header: SourceLoc::new(file2, 8),
        },
    );
    let l2 = cct.add_child(
        l1,
        ScopeKind::Loop {
            header: SourceLoc::new(file2, 9),
        },
    );
    let g3 = cct.add_child(m, frame(p_g, (file2, 2), Some((file1, 8))));

    let stmt = |cct: &mut Cct, parent, file, line| {
        cct.add_child(
            parent,
            ScopeKind::Stmt {
                loc: SourceLoc::new(file, line),
            },
        )
    };
    let s_f = stmt(&mut cct, f, file1, 2);
    let s_g1 = stmt(&mut cct, g1, file2, 3);
    let s_g2 = stmt(&mut cct, g2, file2, 4);
    let s_g3 = stmt(&mut cct, g3, file2, 3);
    let s_l2 = stmt(&mut cct, l2, file2, 9);

    let mut raw = RawMetrics::new(StorageKind::Dense);
    let cost = raw.add_metric(MetricDesc::new("cost", "samples", 1.0));
    raw.add_cost(cost, s_f, 1.0);
    raw.add_cost(cost, s_g1, 1.0);
    raw.add_cost(cost, s_g2, 1.0);
    raw.add_cost(cost, s_g3, 3.0);
    raw.add_cost(cost, s_l2, 4.0);

    let exp = Experiment::build(cct, raw, StorageKind::Dense);
    (
        exp,
        Fig2Nodes {
            m,
            f,
            g1,
            g2,
            g3,
            h,
            l1,
            l2,
        },
    )
}

/// A runnable program with Fig. 1's static shape: two files, a recursive
/// `g` (bounded at two active frames) that conditionally calls `h`, and a
/// doubly nested loop in `h`. The dynamic shape is close to — not
/// identical with — Fig. 2a (the simulator's recursion guard re-enables
/// calls after return, so `h` appears under more than one `g` instance);
/// the *exact* figure is covered by [`experiment`]. Costs are chunky
/// enough that period-1 cycle sampling reproduces them exactly.
pub fn program(unit_cycles: u64) -> Program {
    let mut b = ProgramBuilder::new("a.out");
    let file1 = b.file("file1.c");
    let file2 = b.file("file2.c");
    let p_f = b.declare("f", file1, 1);
    let p_m = b.declare("m", file1, 6);
    let p_g = b.declare("g", file2, 2);
    let p_h = b.declare("h", file2, 7);

    // f() { g(); } with one unit of its own work at line 2.
    b.body(
        p_f,
        vec![Op::work(2, Costs::cycles(unit_cycles)), Op::call(2, p_g)],
    );
    // m() { f(); g(); }
    b.body(p_m, vec![Op::call(7, p_f), Op::call(8, p_g)]);
    // g() { work; if (..) g(); if (..) h(); } — recursion bounded at two
    // active frames, matching the g1→g2 chain of Fig. 2a.
    b.body(
        p_g,
        vec![
            Op::work(3, Costs::cycles(unit_cycles)),
            Op::call_recursive(3, p_g, 2),
            Op::call_recursive(4, p_h, 1),
        ],
    );
    // h() { for l1 { for l2 { work } } }
    b.body(
        p_h,
        vec![Op::looped(
            8,
            2,
            vec![Op::looped(
                9,
                2,
                vec![Op::work(9, Costs::cycles(unit_cycles))],
            )],
        )],
    );
    b.entry(p_m);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_built_cct_matches_fig2a() {
        let (exp, n) = experiment();
        let incl = exp.inclusive_col(MetricId(0));
        let excl = exp.exclusive_col(MetricId(0));
        let check = |node: NodeId, i: f64, e: f64, label: &str| {
            assert_eq!(exp.columns.get(incl, node.0), i, "{label} inclusive");
            assert_eq!(exp.columns.get(excl, node.0), e, "{label} exclusive");
        };
        check(n.m, 10.0, 0.0, "m");
        check(n.f, 7.0, 1.0, "f");
        check(n.g1, 6.0, 1.0, "g1");
        check(n.g2, 5.0, 1.0, "g2");
        check(n.g3, 3.0, 3.0, "g3");
        check(n.h, 4.0, 4.0, "h");
        check(n.l1, 4.0, 0.0, "l1");
        check(n.l2, 4.0, 4.0, "l2");
    }

    #[test]
    fn runnable_program_validates() {
        let p = program(10);
        assert!(p.validate().is_ok());
        assert_eq!(p.procs.len(), 4);
    }
}
