//! A MOAB/mbperf-shaped mesh benchmark workload (Figs. 4 and 5).
//!
//! The paper's two MOAB observations are:
//!
//! * **Fig. 4 (Callers View)**: the Intel compiler replaced `memset` calls
//!   with `_intel_fast_memset.A`; it accounts for ≈9.7% of total L1 data
//!   cache misses, of which ≈9.6% come from the call in
//!   `Sequence_data::create` (the other caller is negligible);
//! * **Fig. 5 (Flat View)**: all of `MBCore::get_coords`'s cycles (≈18.9%
//!   of the program) are in one loop, inside which an inlined red-black
//!   tree search (`find` on the `sequence_manager`, STL `stl_tree.h`)
//!   contains an inlined `SequenceCompare` operator accounting for ≈19.8%
//!   of total L1 misses.
//!
//! The synthetic program reproduces those shares with explicit inline
//! splices (so structure recovery must rebuild the inline hierarchy) and
//! two distinct dynamic callers for the memset routine.

use callpath_profiler::{Costs, Counter, Op, Program, ProgramBuilder};

/// Scale knob: total cycles ≈ 100 × this.
pub const CYCLES_PER_PERCENT: u64 = 1_000_000;

/// L1 miss budget: total misses ≈ 100 × this.
pub const MISSES_PER_PERCENT: u64 = 100_000;

/// Build the mbperf_IMesh-shaped benchmark program.
///
/// Budget (percent of cycles / percent of L1 misses):
///
/// ```text
/// main -> mbperf_main
///   Sequence_data::create ................ 5.0c / 10.0m
///     _intel_fast_memset.A  (real call) ..   4.0c /  9.6m
///   init_buffers ......................... 1.0c /  0.2m
///     _intel_fast_memset.A  (real call) ..   0.1c /  0.1m
///   query loop (calls get_coords) ........ 18.9c / 30.0m   <- Fig. 5
///     MBCore::get_coords: loop @ 685
///       inlined rb-tree find (stl_tree.h)
///         inlined search loop @ 201
///           inlined SequenceCompare ......   10.0c / 19.8m
///           other search body ............    4.0c /  8.0m
///       coordinate extraction ............    4.9c /  2.2m
///   element iteration / eval ............. 75.1c / 59.8m (several procs)
/// ```
pub fn program() -> Program {
    let cyc = |pct: f64| (pct * CYCLES_PER_PERCENT as f64) as u64;
    let msk = |pct: f64| (pct * MISSES_PER_PERCENT as f64) as u64;
    // Per-trip cost with rounding (plain integer division truncates badly
    // for high trip counts and would silently shrink the miss budget).
    let per = |total: u64, trips: u64| ((total as f64 / trips as f64).round() as u64).max(1);

    let mut b = ProgramBuilder::new("mbperf_IMesh");
    let f_core = b.file("MBCore.cpp");
    let f_seq = b.file("SequenceManager.cpp");
    let f_tree = b.file("stl_tree.h");
    let f_main = b.file("mbperf.cpp");
    let f_libirc = b.file("<libirc>");

    // The compiler's memset replacement ships in Intel's libirc.
    let memset = b.declare_in_module("_intel_fast_memset.A", "libirc.so", f_libirc, 0);
    let compare = b.declare("SequenceCompare", f_seq, 310);
    let rb_find = b.declare("_Rb_tree::find", f_tree, 195);
    let get_coords = b.declare("MBCore::get_coords", f_core, 680);
    let create = b.declare("Sequence_data::create", f_seq, 40);
    let init_buffers = b.declare("init_buffers", f_main, 20);
    let query = b.declare("query_coords_loop", f_main, 60);
    let eval_elems = b.declare("eval_elements", f_main, 100);
    let mb_main = b.declare("mbperf_main", f_main, 10);
    let runtime = b.declare_binary_only("main");

    // The compiler-provided memset: pure streaming stores. Per-call work
    // is set by the *callers* via loop trip counts, so give it one unit.
    b.body(
        memset,
        vec![Op::work(0, Costs::memory(cyc(0.004), msk(0.0096)))],
    );

    // SequenceCompare: pointer-chasing comparison, miss-heavy. One call's
    // worth of work; always inlined into the search loop.
    b.body(
        compare,
        vec![Op::work(
            312,
            Costs::memory(per(cyc(10.0), 131_072), per(msk(19.8), 131_072)),
        )],
    );

    // The red-black-tree find: a search loop whose body is the inlined
    // compare plus link traversal. Inlined into get_coords.
    b.body(
        rb_find,
        vec![Op::looped(
            201,
            16,
            vec![
                Op::call_inline(202, compare),
                Op::work(
                    203,
                    Costs::memory(per(cyc(4.0), 131_072), per(msk(8.0), 131_072)),
                ),
            ],
        )],
    );

    // get_coords: one big query loop; per iteration an inlined tree find
    // plus coordinate extraction. 8192 iterations × 16 searches = 131072
    // compare executions.
    b.body(
        get_coords,
        vec![Op::looped(
            685,
            8192,
            vec![
                Op::call_inline(686, rb_find),
                Op::work(690, Costs::memory(per(cyc(4.9), 8192), per(msk(2.2), 8192))),
            ],
        )],
    );

    // Sequence_data::create: allocates then memsets (a real call — the
    // paper's Fig. 4 shows it as the dominant caller).
    b.body(
        create,
        vec![
            Op::work(42, Costs::memory(cyc(1.0), msk(0.4))),
            Op::looped(44, 1000, vec![Op::call(45, memset)]),
        ],
    );

    // A second, minor memset caller.
    b.body(
        init_buffers,
        vec![
            Op::work(21, Costs::memory(cyc(0.9), msk(0.1))),
            Op::looped(23, 25, vec![Op::call(24, memset)]),
        ],
    );

    // The query driver calls get_coords once (all iteration is inside).
    b.body(query, vec![Op::call(62, get_coords)]);

    // Bulk element evaluation: cycle-heavy, moderate misses.
    b.body(
        eval_elems,
        vec![
            Op::looped(
                102,
                4096,
                vec![Op::work(
                    103,
                    Costs::memory(per(cyc(40.0), 4096), per(msk(30.0), 4096)),
                )],
            ),
            Op::looped(
                110,
                4096,
                vec![Op::work(
                    111,
                    Costs::compute(per(cyc(35.1) * 2, 4096), 4.0, 0.5)
                        .with(Counter::L1DcMisses, per(msk(29.8), 4096)),
                )],
            ),
        ],
    );

    b.body(
        mb_main,
        vec![
            Op::call(12, create),
            Op::call(13, init_buffers),
            Op::call(14, query),
            Op::call(15, eval_elems),
        ],
    );
    b.body(runtime, vec![Op::call(0, mb_main)]);
    b.entry(runtime);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_profiler::{execute, lower, ExecConfig};

    #[test]
    fn program_validates() {
        assert!(program().validate().is_ok());
    }

    #[test]
    fn miss_budget_roughly_matches() {
        let bin = lower(&program());
        let res = execute(&bin, &ExecConfig::default()).unwrap();
        let total_m = res.totals[Counter::L1DcMisses] as f64 / MISSES_PER_PERCENT as f64;
        assert!(
            (total_m - 100.0).abs() < 10.0,
            "L1 miss budget {total_m} units"
        );
    }

    #[test]
    fn memset_runs_from_two_contexts() {
        let bin = lower(&program());
        let res = execute(&bin, &ExecConfig::default()).unwrap();
        // The raw profile must contain two distinct frames for memset
        // (different call sites).
        let mut memset_frames = 0;
        let mut stack = vec![res.profile.root()];
        while let Some(n) = stack.pop() {
            for c in res.profile.children(n) {
                if bin.procs[res.profile.callee(c)].name == "_intel_fast_memset.A" {
                    memset_frames += 1;
                }
                stack.push(c);
            }
        }
        assert_eq!(memset_frames, 2);
    }
}
