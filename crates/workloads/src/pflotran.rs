//! A PFLOTRAN-shaped SPMD workload for load-imbalance analysis (Fig. 7,
//! Section VI-C).
//!
//! The paper's case study ran PFLOTRAN (multi-phase subsurface flow) on a
//! Cray XT5 and identified load imbalance by summing inclusive idleness
//! over all MPI processes, then hot-pathing into the main iteration loop
//! at `timestepper.F90:384`. Its Fig. 7 shows three per-process charts:
//! scattered inclusive cycles, the same values sorted, and a histogram —
//! all visibly bimodal.
//!
//! The synthetic rank program runs a time-step loop (at line 384!) whose
//! flow-solve and reactive-transport work is scaled per rank by an uneven
//! domain partition: a fraction of ranks own heavier cells. Every step
//! ends at a barrier, where the SPMD harness (in `callpath-parallel`)
//! turns waiting time into IDLENESS samples attributed to the barrier's
//! calling context.

use callpath_profiler::{Costs, Op, Program, ProgramBuilder};

/// Per-step cycle budget for a baseline (light) rank.
pub const STEP_CYCLES: u64 = 2_000_000;

/// Number of simulated time steps.
pub const TIME_STEPS: u32 = 8;

/// The uneven domain partition: `heavy_fraction` of ranks carry
/// `heavy_scale`× the work of the others.
#[derive(Debug, Clone, Copy)]
pub struct Partition {
    /// Fraction of ranks that are heavy.
    pub heavy_fraction: f64,
    /// Work multiplier of a heavy rank.
    pub heavy_scale: f64,
}

impl Default for Partition {
    fn default() -> Self {
        Partition {
            heavy_fraction: 0.5,
            heavy_scale: 1.6,
        }
    }
}

impl Partition {
    /// Work multiplier for `rank` of `n_ranks`. Heavy ranks are the low
    /// block — in a real domain decomposition they would be a spatial
    /// region of the subsurface model with more active chemistry.
    pub fn scale(&self, rank: usize, n_ranks: usize) -> f64 {
        let heavy = (self.heavy_fraction * n_ranks as f64).round() as usize;
        if rank < heavy {
            self.heavy_scale
        } else {
            1.0
        }
    }
}

/// Build the per-rank program. The same program runs on every rank; the
/// imbalance comes from the per-rank `work_scale` in
/// [`ExecConfig`](callpath_profiler::ExecConfig), set from
/// [`Partition::scale`].
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("pflotran");
    let f_step = b.file("timestepper.F90");
    let f_flow = b.file("flow.F90");
    let f_tran = b.file("rtransport.F90");
    let f_main = b.file("pflotran.F90");

    let flow_solve = b.declare("flow_solve", f_flow, 100);
    let transport = b.declare("rt_step", f_tran, 200);
    let stepper = b.declare("timestepper_run", f_step, 380);
    let pf_main = b.declare("pflotran_main", f_main, 10);
    let runtime = b.declare_binary_only("main");

    // Flow solve: linear solver iterations, memory-bound.
    b.body(
        flow_solve,
        vec![Op::looped(
            105,
            64,
            vec![Op::work(
                106,
                Costs::memory(STEP_CYCLES * 6 / 10 / 64, STEP_CYCLES / 100 / 64),
            )],
        )],
    );

    // Reactive transport: compute-bound chemistry per cell.
    b.body(
        transport,
        vec![Op::looped(
            205,
            64,
            vec![Op::work(
                206,
                Costs::compute(STEP_CYCLES * 4 / 10 * 2 / 64, 4.0, 0.5),
            )],
        )],
    );

    // The main iteration loop at timestepper.F90:384 — each step solves
    // flow + transport and then synchronizes at a barrier.
    b.body(
        stepper,
        vec![Op::looped(
            384,
            TIME_STEPS,
            vec![
                Op::call(386, flow_solve),
                Op::call(387, transport),
                Op::Barrier { line: 390, id: 0 },
            ],
        )],
    );

    b.body(pf_main, vec![Op::call(12, stepper)]);
    b.body(runtime, vec![Op::call(0, pf_main)]);
    b.entry(runtime);
    b.build()
}

/// A strong-scaling variant: the same *total* problem divided across
/// ranks, plus a serial section that does not shrink — the classic
/// Amdahl bottleneck the paper's §VI-A methodology (expectations /
/// scaling loss) is designed to expose.
///
/// Run at `n` ranks with `work_scale = strong_scale(n)`: the domain-
/// decomposed solve shrinks as 1/n, while `checkpoint_io` (declared with
/// fixed work) costs the same at every rank count.
pub fn strong_scaling_program() -> Program {
    let mut b = ProgramBuilder::new("pflotran-strong");
    let f_step = b.file("timestepper.F90");
    let f_flow = b.file("flow.F90");
    let f_io = b.file("checkpoint.F90");
    let f_main = b.file("pflotran.F90");

    let flow_solve = b.declare("flow_solve", f_flow, 100);
    let checkpoint = b.declare("checkpoint_io", f_io, 50);
    let stepper = b.declare("timestepper_run", f_step, 380);
    let pf_main = b.declare("pflotran_main", f_main, 10);
    let runtime = b.declare_binary_only("main");

    // Domain-decomposed solve: scales with 1/ranks.
    b.body(
        flow_solve,
        vec![Op::looped(
            105,
            64,
            vec![Op::work(
                106,
                Costs::memory(STEP_CYCLES / 64, STEP_CYCLES / 100 / 64),
            )],
        )],
    );
    // Serial checkpoint: every rank writes the same metadata — fixed cost.
    b.body(
        checkpoint,
        vec![Op::work_fixed(
            55,
            Costs::memory(STEP_CYCLES / 5, STEP_CYCLES / 500),
        )],
    );
    b.body(
        stepper,
        vec![Op::looped(
            384,
            TIME_STEPS,
            vec![
                Op::call(386, flow_solve),
                Op::call(388, checkpoint),
                Op::Barrier { line: 390, id: 0 },
            ],
        )],
    );
    b.body(pf_main, vec![Op::call(12, stepper)]);
    b.body(runtime, vec![Op::call(0, pf_main)]);
    b.entry(runtime);
    b.build()
}

/// Per-rank work multiplier for a strong-scaling run on `n` ranks.
pub fn strong_scale(n_ranks: usize) -> f64 {
    1.0 / n_ranks as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_profiler::{execute, lower, Counter, ExecConfig};

    #[test]
    fn program_validates() {
        assert!(program().validate().is_ok());
    }

    #[test]
    fn partition_is_bimodal() {
        let p = Partition::default();
        let scales: Vec<f64> = (0..64).map(|r| p.scale(r, 64)).collect();
        let heavy = scales.iter().filter(|&&s| s > 1.0).count();
        assert_eq!(heavy, 32);
        assert_eq!(scales[0], 1.6);
        assert_eq!(scales[63], 1.0);
    }

    #[test]
    fn ranks_arrive_at_barriers_at_different_times() {
        let bin = lower(&program());
        let light = execute(&bin, &ExecConfig::default()).unwrap();
        let heavy = execute(
            &bin,
            &ExecConfig {
                work_scale: 1.6,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert_eq!(light.barrier_arrivals.len(), TIME_STEPS as usize);
        assert_eq!(heavy.barrier_arrivals.len(), TIME_STEPS as usize);
        assert!(heavy.barrier_arrivals[0].time_cycles > light.barrier_arrivals[0].time_cycles);
        // Barrier context runs through the time-step loop's procedure.
        let path = &light.barrier_arrivals[0].path;
        let names: Vec<&str> = path
            .iter()
            .map(|&(_, callee)| bin.procs[callee].name.as_str())
            .collect();
        assert_eq!(names, vec!["main", "pflotran_main", "timestepper_run"]);
    }

    #[test]
    fn per_step_cost_is_near_budget() {
        let bin = lower(&program());
        let res = execute(&bin, &ExecConfig::default()).unwrap();
        let per_step = res.totals[Counter::Cycles] / TIME_STEPS as u64;
        let budget = STEP_CYCLES;
        assert!(
            (per_step as f64 - budget as f64).abs() / (budget as f64) < 0.05,
            "per-step {per_step} vs budget {budget}"
        );
    }
}
