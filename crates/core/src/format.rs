//! Metric-value formatting for the metric pane (Section V-A).
//!
//! Two of the paper's presentation rules live here:
//!
//! * zero cells render as *blank* — "explicitly representing zeros invites
//!   the user to gaze upon cells only to find that they contain no useful
//!   information";
//! * values render "with scientific notation with simple and intuitively
//!   readable format" instead of "naively long and painful numbers", and
//!   each value is accompanied by its percentage of the column aggregate.

use std::fmt::Write as _;

/// Format a raw metric value the way hpcviewer's metric pane does:
/// `1.23e+07` style mantissa/exponent, or blank for zero.
pub fn metric_value(v: f64) -> String {
    let mut s = String::new();
    write_metric_value(v, &mut s);
    s
}

/// [`metric_value`] writing into an existing buffer — the renderer's
/// per-row hot path reuses one buffer instead of allocating per cell.
pub fn write_metric_value(v: f64, out: &mut String) {
    if v != 0.0 {
        let _ = write!(out, "{v:.2e}");
    }
}

/// Format a value together with its percentage of `total`:
/// `1.23e+07 41.4%`. Zero values are blank; a zero total suppresses the
/// percentage.
pub fn metric_with_percent(v: f64, total: f64) -> String {
    let mut s = String::new();
    write_metric_with_percent(v, total, &mut s);
    s
}

/// [`metric_with_percent`] writing into an existing buffer.
pub fn write_metric_with_percent(v: f64, total: f64, out: &mut String) {
    if v == 0.0 {
        return;
    }
    if total == 0.0 {
        return write_metric_value(v, out);
    }
    let _ = write!(out, "{v:.2e} {:>5.1}%", 100.0 * v / total);
}

/// Format a percentage alone (used by derived ratio columns such as
/// relative efficiency).
pub fn percent(fraction: f64) -> String {
    if fraction == 0.0 {
        return String::new();
    }
    format!("{:.1}%", 100.0 * fraction)
}

/// Right-pad or truncate a label to a fixed display width, appending an
/// ellipsis when truncated. Keeps the tabular layout aligned without
/// pulling in a full terminal-width library.
pub fn fit(label: &str, width: usize) -> String {
    let mut s = String::with_capacity(width);
    write_fit(label, width, &mut s);
    s
}

/// [`fit`] writing into an existing buffer.
pub fn write_fit(label: &str, width: usize, out: &mut String) {
    let n = label.chars().count();
    if n <= width {
        out.push_str(label);
        for _ in n..width {
            out.push(' ');
        }
    } else if width >= 1 {
        out.extend(label.chars().take(width - 1));
        out.push('…');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_blank() {
        assert_eq!(metric_value(0.0), "");
        assert_eq!(metric_with_percent(0.0, 100.0), "");
        assert_eq!(percent(0.0), "");
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(metric_value(12_345_678.0), "1.23e7");
        assert_eq!(metric_value(0.00321), "3.21e-3");
        assert_eq!(metric_value(-42.0), "-4.20e1");
    }

    #[test]
    fn value_with_percent() {
        let s = metric_with_percent(414.0, 1000.0);
        assert!(s.starts_with("4.14e2"));
        assert!(s.ends_with("41.4%"), "{s}");
    }

    #[test]
    fn percent_of_zero_total_omitted() {
        assert_eq!(metric_with_percent(5.0, 0.0), "5.00e0");
    }

    #[test]
    fn fit_pads_and_truncates() {
        assert_eq!(fit("abc", 5), "abc  ");
        assert_eq!(fit("abcdef", 4), "abc…");
        assert_eq!(fit("abcd", 4), "abcd");
        assert_eq!(fit("x", 0), "");
    }

    #[test]
    fn fit_handles_multibyte() {
        assert_eq!(fit("héllo", 5), "héllo");
        assert_eq!(fit("héllowørld", 6), "héllo…");
    }
}
