//! Hot path analysis (Section V-C, Equation 3).
//!
//! Starting from a selected scope `x` and metric column, the hot path
//! extends to the child with the maximum inclusive value whenever that
//! child accounts for at least a threshold fraction `t` of `x`'s value:
//!
//! ```text
//! H(x) = H(Cmax(x))   if m(Cmax(x)) >= t * m(x)
//!      = x            otherwise
//! ```
//!
//! The paper found `t = 50%` most useful in practice and lets the user
//! adjust it in a preferences dialog; `HotPathConfig::default` mirrors
//! that. The implementation is generic over any tree (CCT, Callers View,
//! Flat View — "it is not just something that one applies to the root of
//! the calling context tree"), expressed as closures so lazily constructed
//! views can materialize children during the descent.

/// Hot-path parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotPathConfig {
    /// Threshold fraction `t` in (0, 1].
    pub threshold: f64,
    /// Safety bound on path length (recursion in views could otherwise
    /// descend indefinitely when lazily expanding).
    pub max_depth: usize,
}

impl Default for HotPathConfig {
    fn default() -> Self {
        HotPathConfig {
            threshold: 0.5,
            max_depth: 512,
        }
    }
}

impl HotPathConfig {
    /// A config with the given threshold and default depth bound.
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "hot path threshold must be in (0, 1]"
        );
        HotPathConfig {
            threshold,
            ..Default::default()
        }
    }
}

/// Compute the hot path from `start` (inclusive) down the tree.
///
/// * `children(n)` returns the children of `n`, materializing them if the
///   view is lazy.
/// * `value(n)` returns the selected column's (inclusive) value at `n`.
///
/// Returns the nodes along the hot path, starting with `start` and ending
/// at the scope where the path goes cold. Ties between equal-valued
/// children resolve to the first child in tree order, keeping results
/// deterministic.
pub fn hot_path<N: Copy>(
    start: N,
    config: HotPathConfig,
    mut children: impl FnMut(N) -> Vec<N>,
    mut value: impl FnMut(N) -> f64,
) -> Vec<N> {
    let mut path = vec![start];
    let mut cur = start;
    let mut cur_value = value(start);
    for _ in 0..config.max_depth {
        let kids = children(cur);
        let mut best: Option<(N, f64)> = None;
        for k in kids {
            let v = value(k);
            match best {
                Some((_, bv)) if v <= bv => {}
                _ => best = Some((k, v)),
            }
        }
        match best {
            Some((k, v)) if cur_value > 0.0 && v >= config.threshold * cur_value => {
                path.push(k);
                cur = k;
                cur_value = v;
            }
            _ => break,
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny adjacency-list tree for testing: `kids[n]` are children of n,
    /// `vals[n]` the metric values.
    fn run(kids: &[Vec<usize>], vals: &[f64], start: usize, t: f64) -> Vec<usize> {
        hot_path(
            start,
            HotPathConfig::with_threshold(t),
            |n| kids[n].clone(),
            |n| vals[n],
        )
    }

    #[test]
    fn follows_dominant_child() {
        // 0 -> {1: 90, 2: 10}; 1 -> {3: 80}; 3 -> {4: 10}
        let kids = vec![vec![1, 2], vec![3], vec![], vec![4], vec![]];
        let vals = vec![100.0, 90.0, 10.0, 80.0, 10.0];
        assert_eq!(run(&kids, &vals, 0, 0.5), vec![0, 1, 3]);
    }

    #[test]
    fn stops_when_cost_disperses() {
        // Root 100 with three children of ~33 each: no child reaches 50%.
        let kids = vec![vec![1, 2, 3], vec![], vec![], vec![]];
        let vals = vec![100.0, 34.0, 33.0, 33.0];
        assert_eq!(run(&kids, &vals, 0, 0.5), vec![0]);
    }

    #[test]
    fn threshold_changes_the_answer() {
        let kids = vec![vec![1], vec![2], vec![]];
        let vals = vec![100.0, 40.0, 39.0];
        assert_eq!(run(&kids, &vals, 0, 0.5), vec![0], "40 < 50% of 100");
        assert_eq!(
            run(&kids, &vals, 0, 0.3),
            vec![0, 1, 2],
            "40 >= 30% of 100, 39 >= 30% of 40"
        );
    }

    #[test]
    fn applies_from_any_subtree() {
        let kids = vec![vec![1, 2], vec![3], vec![], vec![]];
        let vals = vec![100.0, 20.0, 80.0, 19.0];
        // From the root the hot path goes to node 2.
        assert_eq!(run(&kids, &vals, 0, 0.5), vec![0, 2]);
        // But the analyst can apply it inside the cold subtree too.
        assert_eq!(run(&kids, &vals, 1, 0.5), vec![1, 3]);
    }

    #[test]
    fn tie_breaks_to_first_child() {
        let kids = vec![vec![1, 2], vec![], vec![]];
        let vals = vec![100.0, 60.0, 60.0];
        assert_eq!(run(&kids, &vals, 0, 0.5), vec![0, 1]);
    }

    #[test]
    fn zero_valued_start_is_a_fixed_point() {
        let kids = vec![vec![1], vec![]];
        let vals = vec![0.0, 0.0];
        assert_eq!(run(&kids, &vals, 0, 0.5), vec![0]);
    }

    #[test]
    fn leaf_start() {
        let kids = vec![vec![]];
        let vals = vec![42.0];
        assert_eq!(run(&kids, &vals, 0, 0.5), vec![0]);
    }

    #[test]
    fn max_depth_bounds_descent() {
        // A unary chain where every child retains 100% of the cost.
        let n = 1000;
        let kids: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let vals = vec![1.0; n];
        let cfg = HotPathConfig {
            threshold: 0.5,
            max_depth: 10,
        };
        let path = hot_path(0usize, cfg, |x| kids[x].clone(), |x| vals[x]);
        assert_eq!(path.len(), 11, "start plus max_depth steps");
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_invalid_threshold() {
        let _ = HotPathConfig::with_threshold(0.0);
    }
}
