//! The in-memory experiment database: a canonical CCT plus attributed
//! metric columns — what `hpcprof` hands to `hpcviewer`.
//!
//! Attribution results (the Eq. 2 inclusive and Eq. 1 exclusive columns)
//! are **cached per metrics generation**: they are computed once, shared
//! by every view that asks, and transparently recomputed after the raw
//! metrics mutate (e.g. a late-arriving rank folded in with
//! [`RawMetrics::add_cost`]). Callers never observe stale sums.

use crate::attribution::{attribute_all, Attribution};
use crate::cct::Cct;
use crate::derived::{Expr, FormulaError, SliceContext};
use crate::ids::{ColumnId, MetricId, NodeId};
use crate::metrics::{ColumnDesc, ColumnFlavor, ColumnSet, RawMetrics, StorageKind};
use parking_lot::RwLock;
use std::sync::Arc;

/// Generation-stamped attribution results shared behind the cache lock.
#[derive(Debug)]
struct AttrCache {
    /// [`RawMetrics::generation`] at compute time.
    generation: u64,
    /// One [`Attribution`] per raw metric, in metric-id order.
    attributions: Arc<Vec<Attribution>>,
}

/// Shared handle to one metric's cached attribution; derefs to
/// [`Attribution`] so call sites read `handle.inclusive` directly.
#[derive(Debug, Clone)]
pub struct AttributionHandle {
    attrs: Arc<Vec<Attribution>>,
    index: usize,
}

impl std::ops::Deref for AttributionHandle {
    type Target = Attribution;

    fn deref(&self) -> &Attribution {
        &self.attrs[self.index]
    }
}

/// A fully attributed experiment: the input to every presentation view.
#[derive(Debug)]
pub struct Experiment {
    /// The canonical calling context tree.
    pub cct: Cct,
    /// Direct (sample-point) costs per raw metric.
    pub raw: RawMetrics,
    /// Cached per-metric attribution results, keyed by the raw metrics
    /// generation they were computed at.
    attr_cache: RwLock<AttrCache>,
    /// Presentation columns over CCT nodes: two per raw metric (inclusive,
    /// exclusive) followed by any derived columns.
    pub columns: ColumnSet,
    /// Parsed formulas for derived columns, in column order.
    derived: Vec<(ColumnId, Expr)>,
    /// Root (whole-program) value per column; the `@n` aggregate.
    aggregates: Vec<f64>,
    /// Storage flavor for freshly computed attribution columns.
    storage: StorageKind,
}

impl Clone for Experiment {
    fn clone(&self) -> Self {
        let cache = self.attr_cache.read();
        Experiment {
            cct: self.cct.clone(),
            raw: self.raw.clone(),
            attr_cache: RwLock::new(AttrCache {
                generation: cache.generation,
                attributions: cache.attributions.clone(),
            }),
            columns: self.columns.clone(),
            derived: self.derived.clone(),
            aggregates: self.aggregates.clone(),
            storage: self.storage,
        }
    }
}

impl Experiment {
    /// Attribute all metrics of `raw` over `cct` and set up the standard
    /// inclusive/exclusive column pair per metric.
    pub fn build(cct: Cct, raw: RawMetrics, storage: StorageKind) -> Self {
        let generation = raw.generation();
        let attributions = attribute_all(&cct, &raw, storage);
        let mut columns = ColumnSet::new(storage);
        let mut aggregates = Vec::new();
        let root = cct.root();
        for (mi, attr) in attributions.iter().enumerate() {
            let m = MetricId::from_usize(mi);
            let desc = raw.desc(m);
            let ci = columns.add_column(ColumnDesc {
                name: format!("{} (I)", desc.name),
                flavor: ColumnFlavor::Inclusive(m),
                visible: true,
            });
            let ce = columns.add_column(ColumnDesc {
                name: format!("{} (E)", desc.name),
                flavor: ColumnFlavor::Exclusive(m),
                visible: true,
            });
            for n in cct.all_nodes() {
                let iv = attr.inclusive.get(n.0);
                if iv != 0.0 {
                    columns.set(ci, n.0, iv);
                }
                let ev = attr.exclusive.get(n.0);
                if ev != 0.0 {
                    columns.set(ce, n.0, ev);
                }
            }
            aggregates.push(attr.inclusive.get(root.0));
            // The aggregate of an exclusive column is the program total as
            // well: summed over all scopes, exclusive costs cover each
            // sample exactly once at statement level; using the root
            // inclusive keeps `$e/@e` percentages meaningful.
            aggregates.push(attr.inclusive.get(root.0));
        }
        Experiment {
            cct,
            raw,
            attr_cache: RwLock::new(AttrCache {
                generation,
                attributions: Arc::new(attributions),
            }),
            columns,
            derived: Vec::new(),
            aggregates,
            storage,
        }
    }

    /// Assemble an experiment from a lazily backed store (format-v2
    /// databases): `raw` and `columns` should have a
    /// [`crate::metrics::ColumnSource`] attached, `aggregates` come from
    /// the stored per-column totals, and `derived` carries the parsed
    /// formulas of any derived columns already present in `columns`.
    ///
    /// Nothing is attributed here — that is the point. The attribution
    /// cache starts *stale* (generation deliberately mismatched), so the
    /// first caller of [`Experiment::attributions`] — the callers/flat
    /// view path — computes it then, faulting the raw columns in. The
    /// calling-context view reads `columns` directly and faults only the
    /// columns it renders.
    pub fn open_lazy(
        cct: Cct,
        raw: RawMetrics,
        columns: ColumnSet,
        derived: Vec<(ColumnId, Expr)>,
        aggregates: Vec<f64>,
        storage: StorageKind,
    ) -> Self {
        let stale = raw.generation().wrapping_sub(1);
        Experiment {
            cct,
            raw,
            attr_cache: RwLock::new(AttrCache {
                generation: stale,
                attributions: Arc::new(Vec::new()),
            }),
            columns,
            derived,
            aggregates,
            storage,
        }
    }

    /// Column id of the inclusive projection of metric `m`.
    pub fn inclusive_col(&self, m: MetricId) -> ColumnId {
        ColumnId(m.0 * 2)
    }

    /// Column id of the exclusive projection of metric `m`.
    pub fn exclusive_col(&self, m: MetricId) -> ColumnId {
        ColumnId(m.0 * 2 + 1)
    }

    /// All cached attribution results, revalidated against the raw
    /// metrics generation: if `raw` has mutated since the cache was
    /// filled, every metric is re-attributed once (under the write lock)
    /// and the fresh results are shared from then on.
    pub fn attributions(&self) -> Arc<Vec<Attribution>> {
        let generation = self.raw.generation();
        {
            let cache = self.attr_cache.read();
            if cache.generation == generation {
                return cache.attributions.clone();
            }
        }
        let mut cache = self.attr_cache.write();
        // Another thread may have refreshed while we waited for the lock.
        if cache.generation != generation {
            cache.attributions = Arc::new(attribute_all(&self.cct, &self.raw, self.storage));
            cache.generation = generation;
        }
        cache.attributions.clone()
    }

    /// Attribution results of metric `m` (from the generation-validated
    /// cache; cheap to call repeatedly).
    pub fn attribution(&self, m: MetricId) -> AttributionHandle {
        AttributionHandle {
            attrs: self.attributions(),
            index: m.index(),
        }
    }

    /// Cached Eq. 2 inclusive cost of metric `m` at node `n`.
    pub fn inclusive(&self, m: MetricId, n: NodeId) -> f64 {
        self.attribution(m).inclusive.get(n.0)
    }

    /// Cached Eq. 1 exclusive cost of metric `m` at node `n`.
    pub fn exclusive(&self, m: MetricId, n: NodeId) -> f64 {
        self.attribution(m).exclusive.get(n.0)
    }

    /// The storage flavor this experiment's columns use.
    pub fn storage(&self) -> StorageKind {
        self.storage
    }

    /// Whole-program (`@n`) value of a column.
    pub fn aggregate(&self, c: ColumnId) -> f64 {
        self.aggregates.get(c.index()).copied().unwrap_or(0.0)
    }

    /// Whole-program (`@n`) value per column.
    pub fn aggregates(&self) -> &[f64] {
        &self.aggregates
    }

    /// Parsed derived-column formulas, in column order.
    pub fn derived_formulas(&self) -> &[(ColumnId, Expr)] {
        &self.derived
    }

    /// Define a derived metric column. The formula may reference any column
    /// that already exists (including earlier derived columns). Values are
    /// computed immediately for every CCT node; views compute their own
    /// values from their aggregated inputs when they are built.
    pub fn add_derived(&mut self, name: &str, formula: &str) -> Result<ColumnId, FormulaError> {
        let expr = Expr::parse(formula)?;
        let existing = self.columns.column_count() as u32;
        if let Some(&bad) = expr.references().iter().find(|&&r| r >= existing) {
            return Err(FormulaError {
                pos: 0,
                message: format!("formula references non-existent column ${bad}"),
            });
        }
        let c = self.columns.add_column(ColumnDesc {
            name: name.to_owned(),
            flavor: ColumnFlavor::Derived {
                formula: formula.to_owned(),
            },
            visible: true,
        });
        // Aggregate of a derived column = formula applied to the aggregates.
        let agg = expr.eval(&SliceContext {
            columns: &self.aggregates,
            aggregates: &self.aggregates,
        });
        self.aggregates.push(agg);
        // Per-node values.
        let ncols = self.columns.column_count();
        for n in self.cct.all_nodes() {
            let inputs: Vec<f64> = (0..ncols as u32 - 1)
                .map(|i| self.columns.get(ColumnId(i), n.0))
                .collect();
            let v = expr.eval(&SliceContext {
                columns: &inputs,
                aggregates: &self.aggregates,
            });
            if v != 0.0 {
                self.columns.set(c, n.0, v);
            }
        }
        self.derived.push((c, expr));
        Ok(c)
    }

    /// Evaluate all derived columns of this experiment into `target`, a
    /// column set over some view tree whose inclusive/exclusive (and
    /// summary) columns are already filled for nodes `0..n_nodes`.
    pub fn eval_derived_into(&self, target: &mut ColumnSet, n_nodes: usize) {
        self.eval_derived_range(target, 0, n_nodes);
    }

    /// [`Experiment::eval_derived_into`] restricted to view nodes
    /// `start..end` — lazy views call this for just-materialized children
    /// instead of re-deriving the whole tree.
    pub fn eval_derived_range(&self, target: &mut ColumnSet, start: usize, end: usize) {
        if self.derived.is_empty() {
            return;
        }
        let ncols = target.column_count() as u32;
        for node in start as u32..end as u32 {
            for (c, expr) in &self.derived {
                let inputs: Vec<f64> = (0..ncols).map(|i| target.get(ColumnId(i), node)).collect();
                let v = expr.eval(&SliceContext {
                    columns: &inputs,
                    aggregates: &self.aggregates,
                });
                if v != 0.0 {
                    target.set(*c, node, v);
                }
            }
        }
    }

    /// Direct (sample-point) cost column for metric `m` — needed when views
    /// re-aggregate.
    pub fn direct(&self, m: MetricId, n: NodeId) -> f64 {
        self.raw.direct(m, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::metrics::MetricDesc;
    use crate::names::{NameTable, SourceLoc};
    use crate::scope::ScopeKind;

    fn tiny_experiment() -> Experiment {
        let mut names = NameTable::new();
        let file = names.file("a.c");
        let module = names.module("a.out");
        let p_main = names.proc("main");
        let p_work = names.proc("work");
        let mut cct = Cct::new(names);
        let root = cct.root();
        let main = cct.add_child(
            root,
            ScopeKind::Frame {
                proc: p_main,
                module,
                def: SourceLoc::new(file, 1),
                call_site: None,
            },
        );
        let work = cct.add_child(
            main,
            ScopeKind::Frame {
                proc: p_work,
                module,
                def: SourceLoc::new(file, 10),
                call_site: Some(SourceLoc::new(file, 3)),
            },
        );
        let s = cct.add_child(
            work,
            ScopeKind::Stmt {
                loc: SourceLoc::new(file, 12),
            },
        );
        let mut raw = RawMetrics::new(StorageKind::Dense);
        let cyc = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
        let fp = raw.add_metric(MetricDesc::new("fp_ops", "ops", 1.0));
        raw.add_cost(cyc, s, 1000.0);
        raw.add_cost(fp, s, 800.0);
        let _ = (main, work);
        Experiment::build(cct, raw, StorageKind::Dense)
    }

    #[test]
    fn columns_are_paired_per_metric() {
        let exp = tiny_experiment();
        assert_eq!(exp.columns.column_count(), 4);
        assert_eq!(exp.columns.desc(ColumnId(0)).name, "cycles (I)");
        assert_eq!(exp.columns.desc(ColumnId(1)).name, "cycles (E)");
        assert_eq!(exp.columns.desc(ColumnId(2)).name, "fp_ops (I)");
        assert_eq!(exp.inclusive_col(MetricId(1)), ColumnId(2));
        assert_eq!(exp.exclusive_col(MetricId(1)), ColumnId(3));
    }

    #[test]
    fn aggregates_are_program_totals() {
        let exp = tiny_experiment();
        assert_eq!(exp.aggregate(ColumnId(0)), 1000.0);
        assert_eq!(exp.aggregate(ColumnId(2)), 800.0);
    }

    #[test]
    fn derived_waste_and_efficiency() {
        let mut exp = tiny_experiment();
        // peak = 4 flops/cycle: waste = $cyc_I * 4 - $fp_I
        let waste = exp.add_derived("fp waste", "$0 * 4 - $2").unwrap();
        let eff = exp.add_derived("rel efficiency", "$2 / ($0 * 4)").unwrap();
        let root = exp.cct.root();
        assert_eq!(exp.columns.get(waste, root.0), 3200.0);
        assert!((exp.columns.get(eff, root.0) - 0.2).abs() < 1e-12);
        assert_eq!(exp.aggregate(waste), 3200.0);
    }

    #[test]
    fn derived_can_reference_derived() {
        let mut exp = tiny_experiment();
        let a = exp.add_derived("x2", "$0 * 2").unwrap();
        let b = exp.add_derived("x4", &format!("${} * 2", a.0)).unwrap();
        let root = exp.cct.root();
        assert_eq!(exp.columns.get(b, root.0), 4000.0);
    }

    #[test]
    fn derived_rejects_forward_references() {
        let mut exp = tiny_experiment();
        assert!(exp.add_derived("bad", "$99").is_err());
    }

    #[test]
    fn attribution_cache_is_shared_until_mutation() {
        let exp = tiny_experiment();
        let a = exp.attributions();
        let b = exp.attributions();
        assert!(Arc::ptr_eq(&a, &b), "unchanged raw must share the cache");
    }

    #[test]
    fn inclusive_cache_invalidates_after_add_cost() {
        let mut exp = tiny_experiment();
        let cyc = MetricId(0);
        let root = exp.cct.root();
        let stale = exp.attributions();
        assert_eq!(exp.inclusive(cyc, root), 1000.0);
        // A late-arriving cost at the statement node (id 3 in the tiny
        // tree) must show up in freshly queried inclusive sums.
        let stmt = NodeId(3);
        exp.raw.add_cost(cyc, stmt, 500.0);
        let fresh = exp.attributions();
        assert!(
            !Arc::ptr_eq(&stale, &fresh),
            "mutation must invalidate the attribution cache"
        );
        assert_eq!(exp.inclusive(cyc, root), 1500.0);
        assert_eq!(exp.inclusive(cyc, stmt), 1500.0);
        assert_eq!(exp.exclusive(cyc, stmt), 1500.0);
        // And the refreshed cache is stable until the next mutation.
        assert!(Arc::ptr_eq(&fresh, &exp.attributions()));
    }

    #[test]
    fn csr_storage_builds_identical_columns() {
        // Same tiny experiment content in Dense and Csr storage: every
        // presentation column must agree.
        let build = |kind: StorageKind| {
            let mut names = NameTable::new();
            let file = names.file("a.c");
            let module = names.module("a.out");
            let p_main = names.proc("main");
            let mut cct = Cct::new(names);
            let root = cct.root();
            let main = cct.add_child(
                root,
                ScopeKind::Frame {
                    proc: p_main,
                    module,
                    def: SourceLoc::new(file, 1),
                    call_site: None,
                },
            );
            let s = cct.add_child(
                main,
                ScopeKind::Stmt {
                    loc: SourceLoc::new(file, 2),
                },
            );
            let mut raw = RawMetrics::new(kind);
            let cyc = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
            raw.add_cost(cyc, s, 750.0);
            Experiment::build(cct, raw, kind)
        };
        let dense = build(StorageKind::Dense);
        let csr = build(StorageKind::Csr);
        assert_eq!(dense.columns.column_count(), csr.columns.column_count());
        for c in dense.columns.columns() {
            for n in 0..dense.cct.len() as u32 {
                assert_eq!(
                    dense.columns.get(c, n),
                    csr.columns.get(c, n),
                    "column {c:?} node {n}"
                );
            }
        }
        assert_eq!(dense.aggregates(), csr.aggregates());
    }

    #[test]
    fn derived_percent_of_total() {
        let mut exp = tiny_experiment();
        let pct = exp.add_derived("% cycles", "$0 / @0").unwrap();
        let root = exp.cct.root();
        assert_eq!(exp.columns.get(pct, root.0), 1.0);
    }
}
