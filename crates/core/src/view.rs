//! A uniform presentation interface over the three views
//! (Section III): Calling Context View, Callers View, Flat View.
//!
//! The renderer (`callpath-viewer`) and the hot-path driver work against
//! this one type, so every presentation feature — sorting, hot paths,
//! flattening, metric formatting — behaves identically across views, which
//! is the paper's "coherent synthesis" argument.

use crate::callers::CallersView;
use crate::cct::Cct;
use crate::experiment::Experiment;
use crate::flat::FlatView;
use crate::hotpath::HotPathConfig;
use crate::ids::{ColumnId, NodeId, ViewNodeId};
use crate::metrics::ColumnSet;
use crate::names::SourceLoc;
use crate::scope::ScopeKind;
use crate::viewtree::{LabelCache, SortDir, SortKey, ViewScope};

/// Which of the three complementary perspectives a `View` presents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViewKind {
    /// Top-down Calling Context View.
    CallingContext,
    /// Bottom-up Callers View.
    Callers,
    /// Static Flat View.
    Flat,
}

impl ViewKind {
    /// All three views, in the paper's order.
    pub const ALL: [ViewKind; 3] = [ViewKind::CallingContext, ViewKind::Callers, ViewKind::Flat];

    /// The pane title the paper uses.
    pub fn title(self) -> &'static str {
        match self {
            ViewKind::CallingContext => "Calling Context View",
            ViewKind::Callers => "Callers View",
            ViewKind::Flat => "Flat View",
        }
    }
}

/// A presentable view bound to an experiment.
///
/// Node handles are plain `u32` indices into the underlying tree (CCT node
/// ids for the Calling Context View, view-tree ids otherwise).
pub enum View<'a> {
    /// The canonical CCT presented directly.
    CallingContext(&'a Experiment),
    /// The bottom-up view, owned so lazy expansion can mutate it.
    Callers {
        /// The underlying experiment.
        exp: &'a Experiment,
        /// The (lazily expanded) callers tree.
        view: CallersView,
    },
    /// The static view.
    Flat {
        /// The underlying experiment.
        exp: &'a Experiment,
        /// The flat tree.
        view: FlatView,
    },
}

impl<'a> View<'a> {
    /// The top-down Calling Context View: presents the canonical CCT
    /// directly.
    pub fn calling_context(exp: &'a Experiment) -> Self {
        View::CallingContext(exp)
    }

    /// The bottom-up Callers View (lazily constructed).
    pub fn callers(exp: &'a Experiment) -> Self {
        let storage = exp.raw.storage();
        View::Callers {
            exp,
            view: CallersView::build(exp, storage),
        }
    }

    /// The static Flat View.
    pub fn flat(exp: &'a Experiment) -> Self {
        let storage = exp.raw.storage();
        View::Flat {
            exp,
            view: FlatView::build(exp, storage),
        }
    }

    /// Which perspective this view presents.
    pub fn kind(&self) -> ViewKind {
        match self {
            View::CallingContext(_) => ViewKind::CallingContext,
            View::Callers { .. } => ViewKind::Callers,
            View::Flat { .. } => ViewKind::Flat,
        }
    }

    /// The experiment the view is bound to.
    pub fn experiment(&self) -> &Experiment {
        match self {
            View::CallingContext(exp) => exp,
            View::Callers { exp, .. } | View::Flat { exp, .. } => exp,
        }
    }

    /// Top-level nodes of the view. The Calling Context View starts at the
    /// children of the synthetic root; the Callers View at its per-procedure
    /// entries; the Flat View at load modules.
    pub fn roots(&self) -> Vec<u32> {
        match self {
            View::CallingContext(exp) => exp.cct.children(exp.cct.root()).map(|n| n.0).collect(),
            View::Callers { view, .. } => view.tree.roots().iter().map(|r| r.0).collect(),
            View::Flat { view, .. } => view.tree.roots().iter().map(|r| r.0).collect(),
        }
    }

    /// Children of `n`, materializing lazy views as needed. Only scopes
    /// with a non-zero metric somewhere below them exist at all (sparse
    /// representation), so no extra filtering is required here.
    pub fn children(&mut self, n: u32) -> Vec<u32> {
        match self {
            View::CallingContext(exp) => exp.cct.children(NodeId(n)).map(|c| c.0).collect(),
            View::Callers { exp, view } => view
                .children_of(exp, ViewNodeId(n))
                .iter()
                .map(|c| c.0)
                .collect(),
            View::Flat { exp, view } => view
                .children_of(exp, ViewNodeId(n))
                .iter()
                .map(|c| c.0)
                .collect(),
        }
    }

    /// Children without materializing anything (may be incomplete for the
    /// lazy Callers and Flat Views; used by renderers that only show
    /// expanded state).
    pub fn children_if_built(&self, n: u32) -> Vec<u32> {
        match self {
            View::CallingContext(exp) => exp.cct.children(NodeId(n)).map(|c| c.0).collect(),
            View::Callers { view, .. } => view
                .tree
                .children(ViewNodeId(n))
                .iter()
                .map(|c| c.0)
                .collect(),
            View::Flat { view, .. } => view
                .tree
                .children(ViewNodeId(n))
                .iter()
                .map(|c| c.0)
                .collect(),
        }
    }

    /// Navigation-pane label of scope `n`.
    pub fn label(&self, n: u32) -> String {
        let mut s = String::new();
        self.write_label(n, &mut s);
        s
    }

    /// [`View::label`] writing into an existing buffer: renderers reuse
    /// one buffer per row and borrow interned names directly from the
    /// experiment's name table.
    pub fn write_label(&self, n: u32, out: &mut String) {
        match self {
            View::CallingContext(exp) => exp.cct.kind(NodeId(n)).write_label(&exp.cct.names, out),
            View::Callers { exp, view } => {
                view.tree.write_label(ViewNodeId(n), &exp.cct.names, out)
            }
            View::Flat { exp, view } => view.tree.write_label(ViewNodeId(n), &exp.cct.names, out),
        }
    }

    /// Whether the navigation pane should draw the call-site arrow icon on
    /// this line (fused call-site/callee presentation, Section V-B).
    pub fn is_call(&self, n: u32) -> bool {
        match self {
            View::CallingContext(exp) => matches!(
                exp.cct.kind(NodeId(n)),
                ScopeKind::Frame {
                    call_site: Some(_),
                    ..
                }
            ),
            View::Callers { view, .. } => view.tree.scope(ViewNodeId(n)).is_call(),
            View::Flat { view, .. } => view.tree.scope(ViewNodeId(n)).is_call(),
        }
    }

    /// Whether the scope has source code the viewer can navigate to. The
    /// paper renders binary-only routines (no line map) in plain black
    /// instead of as hyperlinks.
    pub fn has_source(&self, n: u32) -> bool {
        match self {
            View::CallingContext(exp) => match exp.cct.kind(NodeId(n)) {
                ScopeKind::Frame { def, .. } | ScopeKind::InlinedFrame { def, .. } => {
                    def.is_known()
                }
                ScopeKind::Loop { header } => header.is_known(),
                ScopeKind::Stmt { loc } => loc.is_known(),
                ScopeKind::Root => false,
            },
            View::Callers { .. } => true,
            View::Flat { view, .. } => {
                !matches!(view.tree.scope(ViewNodeId(n)), ViewScope::Module { .. })
            }
        }
    }

    /// The call site (in the caller) associated with this line, if any —
    /// what clicking the call-site icon navigates to.
    pub fn call_site(&self, n: u32) -> Option<SourceLoc> {
        match self {
            View::CallingContext(exp) => match exp.cct.kind(NodeId(n)) {
                ScopeKind::Frame { call_site, .. } => call_site,
                ScopeKind::InlinedFrame { call_site, .. } => Some(call_site),
                _ => None,
            },
            View::Callers { view, .. } => match *view.tree.scope(ViewNodeId(n)) {
                ViewScope::Caller { call_site, .. } => call_site,
                _ => None,
            },
            View::Flat { view, .. } => match *view.tree.scope(ViewNodeId(n)) {
                ViewScope::CallSite { loc, .. } => loc,
                ViewScope::Inlined { call_site, .. } => Some(call_site),
                _ => None,
            },
        }
    }

    /// The source location the scope itself navigates to (procedure
    /// definition, loop header, statement line), if known.
    pub fn source_of(&self, n: u32) -> Option<SourceLoc> {
        let loc = match self {
            View::CallingContext(exp) => match exp.cct.kind(NodeId(n)) {
                ScopeKind::Frame { def, .. } | ScopeKind::InlinedFrame { def, .. } => Some(def),
                ScopeKind::Loop { header } => Some(header),
                ScopeKind::Stmt { loc } => Some(loc),
                ScopeKind::Root => None,
            },
            View::Callers { .. } => None,
            View::Flat { view, .. } => match *view.tree.scope(ViewNodeId(n)) {
                ViewScope::Loop { header } => Some(header),
                ViewScope::Stmt { loc } => Some(loc),
                _ => None,
            },
        };
        loc.filter(|l| l.is_known())
    }

    /// The metric columns of this view's tree.
    pub fn columns(&self) -> &ColumnSet {
        match self {
            View::CallingContext(exp) => &exp.columns,
            View::Callers { view, .. } => &view.tree.columns,
            View::Flat { view, .. } => &view.tree.columns,
        }
    }

    /// Value of column `c` at scope `n`.
    pub fn value(&self, c: ColumnId, n: u32) -> f64 {
        self.columns().get(c, n)
    }

    /// Hot path analysis (Eq. 3) starting at `start` for column `c`,
    /// materializing lazy children along the way.
    ///
    /// This re-runs the generic [`crate::hotpath::hot_path`] descent inline because lazy
    /// expansion needs `&mut self` while value lookups need `&self`; the
    /// semantics (including deterministic tie-breaking to the first child)
    /// are covered by shared tests against the generic implementation.
    pub fn hot_path(&mut self, start: u32, c: ColumnId, config: HotPathConfig) -> Vec<u32> {
        let mut path = vec![start];
        let mut cur = start;
        let mut cur_value = self.value(c, cur);
        for _ in 0..config.max_depth {
            let kids = self.children(cur);
            let mut best: Option<(u32, f64)> = None;
            for k in kids {
                let v = self.value(c, k);
                match best {
                    Some((_, bv)) if v <= bv => {}
                    _ => best = Some((k, v)),
                }
            }
            match best {
                Some((k, v)) if cur_value > 0.0 && v >= config.threshold * cur_value => {
                    path.push(k);
                    cur = k;
                    cur_value = v;
                }
                _ => break,
            }
        }
        path
    }

    /// Number of nodes currently materialized (CCT size for the Calling
    /// Context View).
    pub fn node_count(&self) -> usize {
        match self {
            View::CallingContext(exp) => exp.cct.len(),
            View::Callers { view, .. } => view.tree.len(),
            View::Flat { view, .. } => view.tree.len(),
        }
    }

    /// Generation stamp for sort-order caches over this view: any
    /// mutation that could change child sets or column values makes a
    /// previously observed stamp stale. The Calling Context View is
    /// backed directly by the experiment (raw metrics + CCT columns);
    /// the derived views by their view tree (structure + columns).
    pub fn generation(&self) -> u64 {
        match self {
            View::CallingContext(exp) => exp.raw.generation() + exp.columns.generation(),
            View::Callers { view, .. } => view.tree.generation(),
            View::Flat { view, .. } => view.tree.generation(),
        }
    }

    /// Could `n` have children, **without** materializing them? Used for
    /// the expansion marker on collapsed rows: lazy views must not be
    /// forced just to decide whether to draw `▶`. The Callers View
    /// conservatively reports `true` for every node (its chains are only
    /// discoverable by expanding).
    pub fn may_expand(&self, n: u32) -> bool {
        match self {
            View::CallingContext(exp) => exp.cct.children(NodeId(n)).next().is_some(),
            View::Callers { .. } => true,
            View::Flat { exp, view } => view.can_expand(exp, ViewNodeId(n)),
        }
    }
}

/// Rank `nodes` by a column in descending order (the navigation pane's
/// sort, Section V-A). Ties break by label so results are deterministic.
pub fn sort_by_column(view: &View<'_>, nodes: &mut [u32], c: ColumnId) {
    nodes.sort_by(|&a, &b| {
        let va = view.value(c, a);
        let vb = view.value(c, b);
        vb.partial_cmp(&va)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| view.label(a).cmp(&view.label(b)))
    });
}

/// Compare two nodes under a metric-column sort key: by value in the
/// key's direction, ties broken ascending by (cached) label — the exact
/// ordering [`sort_by_column`] produces for [`SortDir::Descending`].
fn cmp_by_column(
    view: &View<'_>,
    labels: &LabelCache,
    c: ColumnId,
    dir: SortDir,
    a: u32,
    b: u32,
) -> std::cmp::Ordering {
    let va = view.value(c, a);
    let vb = view.value(c, b);
    let by_value = match dir {
        SortDir::Descending => vb.partial_cmp(&va),
        SortDir::Ascending => va.partial_cmp(&vb),
    };
    by_value
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| labels.peek(a).cmp(labels.peek(b)))
}

/// Sort `nodes` under `key`, routing label lookups through the interned
/// [`LabelCache`] (each label is rendered at most once per view instead
/// of once per comparison). Stable, and ordering-identical to the
/// historical `sort_by`/`sort_by_key` calls it replaces.
pub fn sort_nodes_with(view: &View<'_>, labels: &mut LabelCache, nodes: &mut [u32], key: SortKey) {
    for &n in nodes.iter() {
        labels.ensure(n, |buf| view.write_label(n, buf));
    }
    match key {
        SortKey::Name => nodes.sort_by(|&a, &b| labels.peek(a).cmp(labels.peek(b))),
        SortKey::Column { column, dir } => {
            nodes.sort_by(|&a, &b| cmp_by_column(view, labels, column, dir, a, b))
        }
    }
}

/// Keep only the top `k` of `nodes` under a metric-column key, in sorted
/// order, using `select_nth_unstable_by` partial selection instead of a
/// full sort (Section V panes show tens of rows out of potentially
/// thousands of children).
///
/// The comparator extends [`sort_nodes_with`]'s column ordering with the
/// node's original position as a final tie-break, which makes the
/// unstable selection reproduce a *stable* full sort's prefix exactly —
/// so truncated renders stay byte-identical to the full-sort path.
pub fn top_k_by_column(
    view: &View<'_>,
    labels: &mut LabelCache,
    nodes: &mut Vec<u32>,
    c: ColumnId,
    dir: SortDir,
    k: usize,
) {
    for &n in nodes.iter() {
        labels.ensure(n, |buf| view.write_label(n, buf));
    }
    if k >= nodes.len() {
        nodes.sort_by(|&a, &b| cmp_by_column(view, labels, c, dir, a, b));
        return;
    }
    let mut indexed: Vec<(u32, u32)> = nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i as u32))
        .collect();
    let cmp = |a: &(u32, u32), b: &(u32, u32)| {
        cmp_by_column(view, labels, c, dir, a.0, b.0).then(a.1.cmp(&b.1))
    };
    if k > 0 {
        indexed.select_nth_unstable_by(k - 1, cmp);
    }
    indexed.truncate(k);
    indexed.sort_by(cmp);
    nodes.clear();
    nodes.extend(indexed.into_iter().map(|(n, _)| n));
}

/// Helper used by tests and the CCT presenter: borrow the underlying CCT.
pub fn cct_of<'e>(view: &'e View<'_>) -> &'e Cct {
    &view.experiment().cct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LoadModuleId, ProcId};
    use crate::metrics::{MetricDesc, RawMetrics, StorageKind};
    use crate::names::{NameTable, SourceLoc};

    fn exp_with_chain() -> Experiment {
        let mut names = NameTable::new();
        let file = names.file("x.c");
        let module = names.module("x");
        let pa = names.proc("a");
        let pb = names.proc("b");
        let pc = names.proc("c");
        let mut cct = Cct::new(names);
        let root = cct.root();
        let fr = |proc: ProcId, line: u32, cs: Option<u32>| ScopeKind::Frame {
            proc,
            module,
            def: SourceLoc::new(file, line),
            call_site: cs.map(|l| SourceLoc::new(file, l)),
        };
        let a = cct.add_child(root, fr(pa, 1, None));
        let b = cct.add_child(a, fr(pb, 10, Some(2)));
        let c = cct.add_child(b, fr(pc, 20, Some(11)));
        let s = cct.add_child(
            c,
            ScopeKind::Stmt {
                loc: SourceLoc::new(file, 21),
            },
        );
        let s2 = cct.add_child(
            a,
            ScopeKind::Stmt {
                loc: SourceLoc::new(file, 3),
            },
        );
        let mut raw = RawMetrics::new(StorageKind::Dense);
        let m = raw.add_metric(MetricDesc::new("cyc", "cycles", 1.0));
        raw.add_cost(m, s, 90.0);
        raw.add_cost(m, s2, 10.0);
        let _ = LoadModuleId(0);
        Experiment::build(cct, raw, StorageKind::Dense)
    }

    #[test]
    fn three_views_share_one_interface() {
        let exp = exp_with_chain();
        for kind in ViewKind::ALL {
            let mut view = match kind {
                ViewKind::CallingContext => View::calling_context(&exp),
                ViewKind::Callers => View::callers(&exp),
                ViewKind::Flat => View::flat(&exp),
            };
            assert_eq!(view.kind(), kind);
            let roots = view.roots();
            assert!(!roots.is_empty(), "{}", kind.title());
            // Children of the first root must be reachable.
            let _ = view.children(roots[0]);
        }
    }

    #[test]
    fn cct_hot_path_descends_to_the_statement() {
        let exp = exp_with_chain();
        let mut view = View::calling_context(&exp);
        let roots = view.roots();
        let path = view.hot_path(roots[0], ColumnId(0), HotPathConfig::default());
        let labels: Vec<String> = path.iter().map(|&n| view.label(n)).collect();
        assert_eq!(labels, vec!["a", "b", "c", "x.c:21"]);
    }

    #[test]
    fn callers_hot_path_expands_lazily() {
        let exp = exp_with_chain();
        let mut view = View::callers(&exp);
        let roots = view.roots();
        // Find the "c" entry; its hot caller chain is b then a.
        let c_entry = roots.into_iter().find(|&r| view.label(r) == "c").unwrap();
        let before = view.node_count();
        let path = view.hot_path(c_entry, ColumnId(0), HotPathConfig::default());
        let labels: Vec<String> = path.iter().map(|&n| view.label(n)).collect();
        assert_eq!(labels, vec!["c", "b", "a"]);
        assert!(view.node_count() > before, "expansion materialized nodes");
    }

    #[test]
    fn sorting_is_descending_with_label_ties() {
        let exp = exp_with_chain();
        let mut view = View::calling_context(&exp);
        let roots = view.roots();
        let mut kids = view.children(roots[0]);
        sort_by_column(&view, &mut kids, ColumnId(0));
        let labels: Vec<String> = kids.iter().map(|&n| view.label(n)).collect();
        assert_eq!(labels, vec!["b", "x.c:3"]);
    }

    #[test]
    fn call_markers_only_on_called_frames() {
        let exp = exp_with_chain();
        let mut view = View::calling_context(&exp);
        let roots = view.roots();
        assert!(!view.is_call(roots[0]), "a is a top-level frame");
        let kids = view.children(roots[0]);
        assert!(view.is_call(kids[0]), "b was called from a");
    }

    #[test]
    fn flat_view_has_module_roots() {
        let exp = exp_with_chain();
        let view = View::flat(&exp);
        let roots = view.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(view.label(roots[0]), "x");
        assert!(!view.has_source(roots[0]), "modules have no source link");
    }
}
