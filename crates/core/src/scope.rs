//! Program scopes: the vocabulary shared by the canonical CCT and the three
//! presentation views.
//!
//! The paper distinguishes *dynamic* scopes (procedure activations reached
//! through a `<call site, callee>` pair) from *static* scopes (load module,
//! file, procedure, loop, statement, inlined code). The canonical CCT that
//! `hpcprof` synthesizes interleaves both: procedure frames are dynamic,
//! while the loops and statements nested inside a frame are static program
//! structure fused into the dynamic call chain.

use crate::ids::{FileId, LoadModuleId, ProcId};
use crate::names::{NameTable, SourceLoc};
use serde::{Deserialize, Serialize};

/// The kind of a node in a canonical calling context tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScopeKind {
    /// The synthetic root of the experiment (aggregates whole-program cost).
    Root,
    /// A procedure activation: dynamic scope. `call_site` is `None` for
    /// top-level frames (e.g. `main`), and the paper's fused presentation
    /// shows call site and callee on a single line.
    Frame {
        /// The procedure being activated.
        proc: ProcId,
        /// Load module housing the procedure.
        module: LoadModuleId,
        /// Where the procedure is defined (file + first line); used to place
        /// the procedure in the Flat View and to navigate the source pane.
        def: SourceLoc,
        /// The call site in the *caller* that created this activation.
        call_site: Option<SourceLoc>,
    },
    /// A procedure body inlined into the enclosing frame: static scope, but
    /// frame-like for attribution (Fig. 5's inlined red-black-tree search).
    InlinedFrame {
        /// The procedure whose body was inlined.
        proc: ProcId,
        /// Where the inlined procedure is defined.
        def: SourceLoc,
        /// Where it was inlined into the host.
        call_site: SourceLoc,
    },
    /// A loop, identified by its header location. Static scope.
    Loop {
        /// Loop header location.
        header: SourceLoc,
    },
    /// A source statement. Static scope; samples land here.
    Stmt {
        /// Statement location.
        loc: SourceLoc,
    },
}

impl ScopeKind {
    /// Dynamic scopes represent caller--callee relationships; everything
    /// else is static program structure (Section IV-A of the paper).
    pub fn is_dynamic(&self) -> bool {
        matches!(self, ScopeKind::Root | ScopeKind::Frame { .. })
    }

    /// Procedure frames get the "dynamic" exclusive-metric rule (rule 1 of
    /// Eq. 1): they absorb every descendant statement reachable without
    /// crossing a call site. Inlined frames behave the same way for
    /// attribution purposes.
    pub fn is_frame(&self) -> bool {
        matches!(
            self,
            ScopeKind::Frame { .. } | ScopeKind::InlinedFrame { .. }
        )
    }

    /// True for statement scopes.
    pub fn is_stmt(&self) -> bool {
        matches!(self, ScopeKind::Stmt { .. })
    }

    /// True for loop scopes.
    pub fn is_loop(&self) -> bool {
        matches!(self, ScopeKind::Loop { .. })
    }

    /// The procedure this scope belongs to directly, if it is a frame.
    pub fn frame_proc(&self) -> Option<ProcId> {
        match self {
            ScopeKind::Frame { proc, .. } | ScopeKind::InlinedFrame { proc, .. } => Some(*proc),
            _ => None,
        }
    }

    /// Render a human-readable label, e.g. `loop at file1.c:8` or `g`.
    pub fn label(&self, names: &NameTable) -> String {
        let mut s = String::new();
        self.write_label(names, &mut s);
        s
    }

    /// [`ScopeKind::label`] writing into an existing buffer: the renderer's
    /// per-row hot path borrows the interned names straight out of the
    /// name table instead of allocating a fresh `String` per row.
    pub fn write_label(&self, names: &NameTable, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            ScopeKind::Root => out.push_str("<program root>"),
            ScopeKind::Frame { proc, .. } => out.push_str(names.proc_name(*proc)),
            ScopeKind::InlinedFrame { proc, .. } => {
                out.push_str("inlined from ");
                out.push_str(names.proc_name(*proc));
            }
            ScopeKind::Loop { header } => {
                let _ = write!(
                    out,
                    "loop at {}:{}",
                    names.file_name(header.file),
                    header.line
                );
            }
            ScopeKind::Stmt { loc } => {
                let _ = write!(out, "{}:{}", names.file_name(loc.file), loc.line);
            }
        }
    }
}

/// The static object a CCT node is an *instance* of.
///
/// Exposure analysis (Section IV-B) and Flat-View aggregation both need to
/// ask "are these two CCT nodes instances of the same static thing?". The
/// answer is this key: procedures by id, loops and statements by their
/// source location qualified with the owning procedure (two procedures may
/// share a file and overlapping line ranges after inlining).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StaticKey {
    /// A procedure (all dynamic activations of it).
    Proc(ProcId),
    /// An inlined procedure body at one call site within a host.
    InlinedProc {
        /// The procedure whose frame hosts the splice.
        host: ProcId,
        /// The inlined procedure.
        callee: ProcId,
        /// Where it was inlined.
        call_site: SourceLoc,
    },
    /// A loop, qualified by its owning procedure.
    Loop {
        /// Procedure whose body contains the loop.
        proc: ProcId,
        /// Loop header location.
        header: SourceLoc,
    },
    /// A statement, qualified by its owning procedure.
    Stmt {
        /// Procedure whose body contains the statement.
        proc: ProcId,
        /// Statement location.
        loc: SourceLoc,
    },
    /// A source file (all frames of procedures defined in it).
    File(FileId),
    /// A load module.
    Module(LoadModuleId),
    /// The synthetic experiment root.
    Root,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FileId, LoadModuleId, ProcId};

    fn loc(line: u32) -> SourceLoc {
        SourceLoc::new(FileId(0), line)
    }

    #[test]
    fn dynamic_classification() {
        assert!(ScopeKind::Root.is_dynamic());
        let frame = ScopeKind::Frame {
            proc: ProcId(0),
            module: LoadModuleId(0),
            def: loc(1),
            call_site: None,
        };
        assert!(frame.is_dynamic());
        assert!(frame.is_frame());
        assert!(!ScopeKind::Loop { header: loc(2) }.is_dynamic());
        assert!(!ScopeKind::Stmt { loc: loc(3) }.is_dynamic());
    }

    #[test]
    fn inlined_frames_are_static_but_frame_like() {
        let inl = ScopeKind::InlinedFrame {
            proc: ProcId(1),
            def: loc(10),
            call_site: loc(5),
        };
        assert!(!inl.is_dynamic());
        assert!(inl.is_frame());
        assert_eq!(inl.frame_proc(), Some(ProcId(1)));
    }

    #[test]
    fn labels() {
        let mut names = NameTable::new();
        let f = names.file("file1.c");
        let p = names.proc("g");
        let frame = ScopeKind::Frame {
            proc: p,
            module: names.module("a.out"),
            def: SourceLoc::new(f, 1),
            call_site: None,
        };
        assert_eq!(frame.label(&names), "g");
        let lp = ScopeKind::Loop {
            header: SourceLoc::new(f, 8),
        };
        assert_eq!(lp.label(&names), "loop at file1.c:8");
        let st = ScopeKind::Stmt {
            loc: SourceLoc::new(f, 9),
        };
        assert_eq!(st.label(&names), "file1.c:9");
    }

    #[test]
    fn static_keys_discriminate_procs() {
        assert_ne!(StaticKey::Proc(ProcId(0)), StaticKey::Proc(ProcId(1)));
        assert_ne!(
            StaticKey::Loop {
                proc: ProcId(0),
                header: loc(8)
            },
            StaticKey::Loop {
                proc: ProcId(1),
                header: loc(8)
            },
        );
    }
}
