//! Metric attribution: computing inclusive and exclusive costs over the
//! canonical CCT (Section IV-A, Equations 1 and 2).
//!
//! Three per-node quantities are computed for every raw metric:
//!
//! * **inclusive** — Eq. 2: `i(x) = d(x) + Σ_children i(c)` where `d` is the
//!   direct (sample-point) cost. Computed over direct costs rather than the
//!   displayed exclusive, because the hybrid exclusive of a procedure frame
//!   already contains its loops' statements and would double-count (see
//!   `h`/`l1`/`l2` in Fig. 2a, where `h = (4,4)` *includes* `l2`'s 4).
//! * **exclusive** — Eq. 1 hybrid: procedure frames (and inlined frames)
//!   absorb every descendant statement reachable without crossing another
//!   frame boundary (rule 1, "Dynamic"); loops sum only their direct child
//!   statements (rule 2, "Static"); statements keep their direct cost; the
//!   root and other purely dynamic scopes display zero.
//! * **frame-direct** — the part of a frame's cost attributed to statements
//!   that are immediate children of the frame (outside any loop or inlined
//!   frame). The Flat View's call-site nodes display this as their
//!   exclusive cost: in Fig. 2c, `hy = (4,0)` because all of `h`'s
//!   statements live inside loops, while `gy/gz/gv` carry `g`'s body cost.

use crate::cct::Cct;
use crate::ids::{MetricId, NodeId};
use crate::metrics::{MetricVec, RawMetrics, StorageKind};
use crate::scope::ScopeKind;

/// Attribution results for a single raw metric over a CCT.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Eq. 2 inclusive costs per node.
    pub inclusive: MetricVec,
    /// Eq. 1 hybrid exclusive costs per node.
    pub exclusive: MetricVec,
    /// Frame-direct statement costs per frame node.
    pub frame_direct: MetricVec,
}

impl Attribution {
    /// Inclusive cost at `n`.
    pub fn inclusive_at(&self, n: NodeId) -> f64 {
        self.inclusive.get(n.0)
    }

    /// Displayed (hybrid) exclusive cost at `n`.
    pub fn exclusive_at(&self, n: NodeId) -> f64 {
        self.exclusive.get(n.0)
    }

    /// Frame-direct cost at `n`.
    pub fn frame_direct_at(&self, n: NodeId) -> f64 {
        self.frame_direct.get(n.0)
    }
}

/// Compute inclusive, exclusive and frame-direct costs for metric `m`.
///
/// Runs in O(nodes × frame-nesting-depth-of-statics) time and never walks
/// above the enclosing frame, so deep call chains cost nothing extra.
pub fn attribute(cct: &Cct, raw: &RawMetrics, m: MetricId, storage: StorageKind) -> Attribution {
    let n = cct.len();
    let mk = |()| match storage {
        StorageKind::Dense => MetricVec::dense(n),
        StorageKind::Sparse => MetricVec::sparse(),
        // Attribution writes non-zeros in ascending node order, which is
        // exactly the columnar store's O(1) append fast path.
        StorageKind::Csr => MetricVec::csr(),
    };
    let mut inclusive = mk(());
    let mut exclusive = mk(());
    let mut frame_direct = mk(());

    // Pass 1: inclusive. Arena order is topological (parents precede
    // children), so a single reverse sweep accumulates child sums.
    // Direct costs are scattered from the sorted non-zero entries in
    // O(nnz) instead of probing the column once per node — for
    // compacted columnar storage each probe is a binary search, which
    // dominated lazy column faults on wide CCTs.
    let mut incl: Vec<f64> = vec![0.0; n];
    for (node, v) in raw.column(m).nonzero_sorted() {
        if (node as usize) < n {
            incl[node as usize] = v;
        }
    }
    for i in (1..n).rev() {
        let node = NodeId(i as u32);
        if let Some(p) = cct.parent(node) {
            let v = incl[i];
            if v != 0.0 {
                incl[p.index()] += v;
            }
        }
    }
    for (i, &v) in incl.iter().enumerate() {
        if v != 0.0 {
            inclusive.set(i as u32, v);
        }
    }

    // Pass 2: exclusive (Eq. 1 hybrid) and frame-direct. A single forward
    // sweep over nodes with non-zero direct cost attributes each cost to:
    //   - the node itself, when static (statements keep their own cost);
    //   - its parent, when the parent is a loop and the node a statement
    //     (rule 2: loops sum direct child statements);
    //   - its innermost enclosing frame-like scope (rule 1);
    //   - the frame-direct bucket of that frame, when nothing but the frame
    //     itself separates the cost from the frame.
    for (i, d) in raw.column(m).nonzero_sorted() {
        if i as usize >= n {
            continue;
        }
        let node = NodeId(i);
        let kind = cct.kind(node);
        match kind {
            ScopeKind::Stmt { .. } | ScopeKind::Loop { .. } => {
                exclusive.add(node.0, d);
                if let Some(p) = cct.parent(node) {
                    if cct.kind(p).is_loop() && kind.is_stmt() {
                        exclusive.add(p.0, d);
                    }
                    // Rule 1: attribute to the innermost frame-like scope.
                    if let Some(f) = cct.enclosing_frame_like(p) {
                        exclusive.add(f.0, d);
                        if f == p {
                            frame_direct.add(f.0, d);
                        }
                    }
                }
            }
            ScopeKind::Frame { .. } | ScopeKind::InlinedFrame { .. } => {
                // Cost sampled directly at a frame (no statement info):
                // belongs to the frame's exclusive and frame-direct buckets.
                exclusive.add(node.0, d);
                frame_direct.add(node.0, d);
            }
            ScopeKind::Root => {
                // Unattributable cost; keep it out of every exclusive
                // column (it still shows up in the root's inclusive value).
            }
        }
    }

    Attribution {
        inclusive,
        exclusive,
        frame_direct,
    }
}

/// Attribute every metric of `raw`, in metric-id order.
pub fn attribute_all(cct: &Cct, raw: &RawMetrics, storage: StorageKind) -> Vec<Attribution> {
    (0..raw.metric_count())
        .map(|i| attribute(cct, raw, MetricId::from_usize(i), storage))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FileId, LoadModuleId, ProcId};
    use crate::metrics::MetricDesc;
    use crate::names::{NameTable, SourceLoc};

    fn frame(proc: u32, call_line: u32) -> ScopeKind {
        ScopeKind::Frame {
            proc: ProcId(proc),
            module: LoadModuleId(0),
            def: SourceLoc::new(FileId(0), 1),
            call_site: (call_line != 0).then(|| SourceLoc::new(FileId(0), call_line)),
        }
    }

    fn lp(line: u32) -> ScopeKind {
        ScopeKind::Loop {
            header: SourceLoc::new(FileId(0), line),
        }
    }

    fn stmt(line: u32) -> ScopeKind {
        ScopeKind::Stmt {
            loc: SourceLoc::new(FileId(0), line),
        }
    }

    /// Build `h` from Fig. 1/2: a frame containing `l1 { l2 { stmts } }`.
    #[test]
    fn frame_with_nested_loops_matches_fig2() {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        let h = cct.add_child(root, frame(0, 0));
        let l1 = cct.add_child(h, lp(8));
        let l2 = cct.add_child(l1, lp(9));
        let s = cct.add_child(l2, stmt(9));

        let mut raw = RawMetrics::new(StorageKind::Dense);
        let m = raw.add_metric(MetricDesc::new("cyc", "cycles", 1.0));
        raw.add_cost(m, s, 4.0);

        let a = attribute(&cct, &raw, m, StorageKind::Dense);
        // Fig 2a: h = (4,4), l1 = (4,0), l2 = (4,4).
        assert_eq!(a.inclusive_at(h), 4.0);
        assert_eq!(a.exclusive_at(h), 4.0);
        assert_eq!(a.inclusive_at(l1), 4.0);
        assert_eq!(a.exclusive_at(l1), 0.0);
        assert_eq!(a.inclusive_at(l2), 4.0);
        assert_eq!(a.exclusive_at(l2), 4.0);
        // No statement is an immediate child of h.
        assert_eq!(a.frame_direct_at(h), 0.0);
    }

    #[test]
    fn frame_direct_counts_only_body_statements() {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        let f = cct.add_child(root, frame(0, 0));
        let body = cct.add_child(f, stmt(3));
        let l = cct.add_child(f, lp(4));
        let in_loop = cct.add_child(l, stmt(5));

        let mut raw = RawMetrics::new(StorageKind::Dense);
        let m = raw.add_metric(MetricDesc::new("cyc", "cycles", 1.0));
        raw.add_cost(m, body, 2.0);
        raw.add_cost(m, in_loop, 3.0);

        let a = attribute(&cct, &raw, m, StorageKind::Dense);
        assert_eq!(a.exclusive_at(f), 5.0, "rule 1: frame absorbs all stmts");
        assert_eq!(a.frame_direct_at(f), 2.0, "only the body statement");
        assert_eq!(a.exclusive_at(l), 3.0, "rule 2: direct child statement");
    }

    #[test]
    fn rule1_stops_at_inlined_frame_boundary() {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        let f = cct.add_child(root, frame(0, 0));
        let inl = cct.add_child(
            f,
            ScopeKind::InlinedFrame {
                proc: ProcId(1),
                def: SourceLoc::new(FileId(0), 20),
                call_site: SourceLoc::new(FileId(0), 3),
            },
        );
        let s = cct.add_child(inl, stmt(21));

        let mut raw = RawMetrics::new(StorageKind::Dense);
        let m = raw.add_metric(MetricDesc::new("cyc", "cycles", 1.0));
        raw.add_cost(m, s, 7.0);

        let a = attribute(&cct, &raw, m, StorageKind::Dense);
        assert_eq!(
            a.exclusive_at(inl),
            7.0,
            "inlined frame absorbs its statements"
        );
        assert_eq!(
            a.exclusive_at(f),
            0.0,
            "host frame's exclusive must not cross the inline boundary"
        );
        assert_eq!(a.inclusive_at(f), 7.0, "inclusive still flows to the host");
    }

    #[test]
    fn inclusive_sums_across_call_sites() {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        let main = cct.add_child(root, frame(0, 0));
        let callee = cct.add_child(main, frame(1, 7));
        let s_main = cct.add_child(main, stmt(2));
        let s_callee = cct.add_child(callee, stmt(30));

        let mut raw = RawMetrics::new(StorageKind::Dense);
        let m = raw.add_metric(MetricDesc::new("cyc", "cycles", 1.0));
        raw.add_cost(m, s_main, 1.0);
        raw.add_cost(m, s_callee, 9.0);

        let a = attribute(&cct, &raw, m, StorageKind::Dense);
        assert_eq!(a.inclusive_at(main), 10.0);
        assert_eq!(a.exclusive_at(main), 1.0, "rule 1 does not cross the call");
        assert_eq!(a.inclusive_at(callee), 9.0);
        assert_eq!(a.exclusive_at(callee), 9.0);
        assert_eq!(a.inclusive_at(root), 10.0, "root inclusive = program total");
        assert_eq!(
            a.exclusive_at(root),
            0.0,
            "root is dynamic: blank exclusive"
        );
    }

    #[test]
    fn sparse_and_dense_attribution_agree() {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        let f = cct.add_child(root, frame(0, 0));
        let l = cct.add_child(f, lp(4));
        let s = cct.add_child(l, stmt(5));
        let mut raw = RawMetrics::new(StorageKind::Dense);
        let m = raw.add_metric(MetricDesc::new("cyc", "cycles", 1.0));
        raw.add_cost(m, s, 11.0);
        raw.add_cost(m, f, 0.5);

        let dense = attribute(&cct, &raw, m, StorageKind::Dense);
        let sparse = attribute(&cct, &raw, m, StorageKind::Sparse);
        for n in cct.all_nodes() {
            assert_eq!(dense.inclusive_at(n), sparse.inclusive_at(n));
            assert_eq!(dense.exclusive_at(n), sparse.exclusive_at(n));
            assert_eq!(dense.frame_direct_at(n), sparse.frame_direct_at(n));
        }
    }

    #[test]
    fn cost_sampled_at_frame_is_frame_direct() {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        let f = cct.add_child(root, frame(0, 0));
        let mut raw = RawMetrics::new(StorageKind::Dense);
        let m = raw.add_metric(MetricDesc::new("cyc", "cycles", 1.0));
        raw.add_cost(m, f, 3.0);
        let a = attribute(&cct, &raw, m, StorageKind::Dense);
        assert_eq!(a.exclusive_at(f), 3.0);
        assert_eq!(a.frame_direct_at(f), 3.0);
    }
}
