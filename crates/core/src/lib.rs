#![warn(missing_docs)]
//! # callpath-core
//!
//! Core data structures and algorithms for *effectively presenting call
//! path profiles*, reproducing Adhianto, Mellor-Crummey and Tallent,
//! "Effectively Presenting Call Path Profiles of Application Performance"
//! (ICPP 2010) — the paper behind HPCToolkit's `hpcviewer`.
//!
//! The crate provides:
//!
//! * a **canonical calling context tree** ([`cct::Cct`]) fusing dynamic
//!   call chains with static structure (loops, statements, inlined code);
//! * **metric attribution** ([`attribution`]) implementing the paper's
//!   hybrid exclusive rules (Eq. 1) and inductive inclusive costs (Eq. 2);
//! * the three complementary **views** — Calling Context
//!   ([`view::View::calling_context`]), Callers ([`callers::CallersView`],
//!   lazily constructed) and Flat ([`flat::FlatView`], with flattening);
//! * recursion-correct aggregation via **exposed instances**
//!   ([`exposure`], Section IV-B);
//! * **hot path analysis** ([`hotpath`], Eq. 3);
//! * a **derived metric** formula engine ([`derived`], `$n`/`@n`
//!   spreadsheet-style columns, Section V-D);
//! * streaming **summary statistics** for large parallel executions
//!   ([`summary`], Section VII).
//!
//! ## Quick example
//!
//! ```
//! use callpath_core::prelude::*;
//!
//! // Build a two-frame CCT by hand (profilers normally do this).
//! let mut names = NameTable::new();
//! let file = names.file("app.c");
//! let module = names.module("app");
//! let p_main = names.proc("main");
//! let p_work = names.proc("work");
//! let mut cct = Cct::new(names);
//! let root = cct.root();
//! let main = cct.add_child(root, ScopeKind::Frame {
//!     proc: p_main, module,
//!     def: SourceLoc::new(file, 1), call_site: None,
//! });
//! let work = cct.add_child(main, ScopeKind::Frame {
//!     proc: p_work, module,
//!     def: SourceLoc::new(file, 10),
//!     call_site: Some(SourceLoc::new(file, 3)),
//! });
//! let stmt = cct.add_child(work, ScopeKind::Stmt {
//!     loc: SourceLoc::new(file, 11),
//! });
//!
//! // Record samples and attribute them.
//! let mut raw = RawMetrics::new(StorageKind::Dense);
//! let cyc = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
//! raw.record_samples(cyc, stmt, 100);
//! let exp = Experiment::build(cct, raw, StorageKind::Dense);
//!
//! // All cost flows up the calling context.
//! let incl = exp.inclusive_col(cyc);
//! assert_eq!(exp.columns.get(incl, main.0), 100.0);
//!
//! // The hot path from main lands on the statement.
//! let mut ccv = View::calling_context(&exp);
//! let path = ccv.hot_path(main.0, incl, HotPathConfig::default());
//! assert_eq!(ccv.label(*path.last().unwrap()), "app.c:11");
//! ```

pub mod attribution;
pub mod callers;
pub mod cct;
pub mod chunked;
pub mod derived;
pub mod diff;
pub mod experiment;
pub mod exposure;
pub mod flat;
pub mod format;
pub mod hotpath;
pub mod ids;
pub mod jsonval;
pub mod mapped;
pub mod metrics;
pub mod names;
pub mod pool;
pub mod scope;
pub mod source;
pub mod summary;
pub mod supergraph;
pub mod view;
pub mod viewtree;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::attribution::{attribute, attribute_all, Attribution};
    pub use crate::callers::CallersView;
    pub use crate::cct::Cct;
    pub use crate::chunked::{chunked_map, chunked_reduce, resolve_threads};
    pub use crate::derived::{EvalContext, Expr, FormulaError, SliceContext};
    pub use crate::diff::{merge_experiments, scaling_loss, ScalingAnalysis};
    pub use crate::experiment::Experiment;
    pub use crate::exposure::{exposed, exposed_sum};
    pub use crate::flat::{flatten, flatten_once, FlatView};
    pub use crate::format;
    pub use crate::hotpath::{hot_path, HotPathConfig};
    pub use crate::ids::{ColumnId, FileId, LoadModuleId, MetricId, NodeId, ProcId, ViewNodeId};
    pub use crate::mapped::{ByteImage, ColumnData, MappedCol, MappedTopology};
    pub use crate::metrics::{
        ColumnBuilder, ColumnDesc, ColumnFlavor, ColumnSet, ColumnSource, CsrColumn, MetricDesc,
        MetricVec, NonzeroSorted, RawMetrics, StorageKind,
    };
    pub use crate::names::{NameTable, SourceLoc};
    pub use crate::pool::{reduce_pairwise, run_tasks, PoolStats};
    pub use crate::scope::{ScopeKind, StaticKey};
    pub use crate::source::SourceStore;
    pub use crate::summary::{Stat, Welford};
    pub use crate::supergraph::{
        arena_journal, merge_shards, replay_into, translate_kind, CctShard, RemapNodes,
    };
    pub use crate::view::{sort_by_column, sort_nodes_with, top_k_by_column, View, ViewKind};
    pub use crate::viewtree::{
        LabelCache, SortCache, SortDir, SortKey, ViewScope, ViewTree, TOP_SLOT_BASE,
    };
}
