//! Exposed-instance analysis for recursion-correct aggregation
//! (Section IV-B).
//!
//! When the Callers View or Flat View aggregates the inclusive costs of a
//! set of CCT instances of the same static object, naively summing them
//! counts a chain of recursive activations multiple times (the inclusive
//! cost of an outer activation already contains the inner ones). The paper
//! defines an instance as **exposed** if it has no ancestor instance of the
//! same object, and sums only exposed instances.
//!
//! Fig. 2b refines this to *set-relative* exposure: the Callers-View node
//! `g←g` aggregates only `g2`, whose ancestor `g1` is not part of that
//! node's instance set, so `g2` counts there even though it is not globally
//! exposed. The primitive here therefore takes an arbitrary instance set
//! and filters out any instance with a proper ancestor **in the set**.

use crate::cct::Cct;
use crate::ids::NodeId;
use crate::metrics::MetricVec;
use std::collections::HashSet;

/// Return the subset of `instances` that have no proper ancestor also in
/// `instances`. Order of the result follows the input order.
pub fn exposed(cct: &Cct, instances: &[NodeId]) -> Vec<NodeId> {
    if instances.len() <= 1 {
        return instances.to_vec();
    }
    let set: HashSet<NodeId> = instances.iter().copied().collect();
    instances
        .iter()
        .copied()
        .filter(|&n| !cct.ancestors(n).any(|a| set.contains(&a)))
        .collect()
}

/// Sum `values` over the set-exposed subset of `instances`.
pub fn exposed_sum(cct: &Cct, instances: &[NodeId], values: &MetricVec) -> f64 {
    exposed(cct, instances)
        .into_iter()
        .map(|n| values.get(n.0))
        .sum()
}

/// Sum `values` over *all* instances (used for columns where every instance
/// contributes, e.g. sample counts).
pub fn plain_sum(instances: &[NodeId], values: &MetricVec) -> f64 {
    instances.iter().map(|n| values.get(n.0)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FileId, LoadModuleId, ProcId};
    use crate::names::{NameTable, SourceLoc};
    use crate::scope::ScopeKind;

    fn frame(proc: u32) -> ScopeKind {
        ScopeKind::Frame {
            proc: ProcId(proc),
            module: LoadModuleId(0),
            def: SourceLoc::new(FileId(0), 1),
            call_site: Some(SourceLoc::new(FileId(0), 2)),
        }
    }

    /// m → g1 → g2 → g3 (recursive chain) and m → g4 (separate branch).
    fn recursive_cct() -> (Cct, Vec<NodeId>) {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        let m = cct.add_child(root, frame(0));
        let g1 = cct.add_child(m, frame(1));
        let g2 = cct.add_child(g1, frame(1));
        let g3 = cct.add_child(g2, frame(1));
        let g4 = cct.add_child(m, frame(1));
        (cct, vec![g1, g2, g3, g4])
    }

    #[test]
    fn exposed_filters_nested_instances() {
        let (cct, gs) = recursive_cct();
        let e = exposed(&cct, &gs);
        assert_eq!(e, vec![gs[0], gs[3]], "g1 and g4 are exposed");
    }

    #[test]
    fn set_relative_exposure() {
        let (cct, gs) = recursive_cct();
        // Only {g2, g3}: g2's ancestor g1 is NOT in the set, so g2 counts;
        // g3's ancestor g2 IS in the set, so g3 does not.
        let e = exposed(&cct, &[gs[1], gs[2]]);
        assert_eq!(e, vec![gs[1]]);
    }

    #[test]
    fn singleton_always_exposed() {
        let (cct, gs) = recursive_cct();
        assert_eq!(exposed(&cct, &[gs[2]]), vec![gs[2]]);
        assert_eq!(exposed(&cct, &[]), Vec::<NodeId>::new());
    }

    #[test]
    fn exposed_sum_avoids_double_count() {
        let (cct, gs) = recursive_cct();
        let mut v = MetricVec::dense(cct.len());
        // Inclusive-like values: outer contains inner.
        v.set(gs[0].0, 6.0);
        v.set(gs[1].0, 5.0);
        v.set(gs[2].0, 4.0);
        v.set(gs[3].0, 3.0);
        assert_eq!(exposed_sum(&cct, &gs, &v), 9.0, "6 (g1) + 3 (g4)");
        assert_eq!(plain_sum(&gs, &v), 18.0);
    }

    #[test]
    fn unrelated_instances_all_exposed() {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        let a = cct.add_child(root, frame(0));
        let b = cct.add_child(root, frame(0));
        let c = cct.add_child(root, frame(0));
        let e = exposed(&cct, &[a, b, c]);
        assert_eq!(e.len(), 3);
    }
}
