//! A persistent, lazily-initialized worker pool behind every fan-out
//! site in the pipeline.
//!
//! Before this module existed, [`crate::chunked`] spawned (and joined) a
//! fresh set of OS threads on **every** call — shard correlation, column
//! decode, rank simulation and streaming summarization each paid thread
//! creation per invocation, which is why the parallel ingestion path
//! lost to sequential on small-to-medium inputs. The pool amortizes that
//! cost to zero: workers are spawned on first use, block on a condvar
//! between fan-outs, and are reused for the life of the process.
//!
//! ## Shape
//!
//! * One global FIFO job queue (`Mutex<VecDeque>` + `Condvar`); workers
//!   loop on pop-run. Jobs are type-erased `FnOnce` boxes that send
//!   their result back over a per-call channel.
//! * [`run_tasks`] submits a batch of closures and blocks until every
//!   result (or panic) has come back. While waiting it **helps**: it
//!   pops queued jobs and runs them on the calling thread instead of
//!   idling, so a busy pool can never stall a submitter that has
//!   runnable work.
//! * Worker panics are caught per job and re-raised **once** on the
//!   submitting thread with the original payload — a panicking closure
//!   behaves exactly as it would have under `std::thread::scope`, minus
//!   the process abort `join().unwrap()` used to cause.
//! * A closure submitted *from* a pool worker runs inline (workers never
//!   re-enter the queue), so nested fan-outs degrade to sequential
//!   instead of deadlocking a fully busy pool.
//!
//! ## Why the borrows are sound
//!
//! Jobs capture references into the submitting call's stack frame
//! (chunk slices, the shared `map` closure). [`run_tasks`] erases those
//! lifetimes to put jobs in the global queue, which is sound because it
//! does not return until it has received one result per submitted job,
//! and a job sends its result strictly after the user closure — and
//! every borrow inside it — has been consumed.
//!
//! ## Observability
//!
//! The pool cannot call `callpath-obs` directly (obs depends on this
//! crate for its exporter), so it keeps its own always-on relaxed
//! atomics and exposes them via [`stats`]; the obs registry folds them
//! into every snapshot as `pool.*` counters, which is how `--stats` and
//! `--self-profile` show where reduction time goes.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Hard ceiling on spawned workers, far above any sane `CALLPATH_THREADS`
/// value — a guard against a runaway env override, not a tuning knob.
const MAX_WORKERS: usize = 256;

/// A type-erased unit of work. The `'static` here is a lie told by
/// [`run_tasks`]; see the module docs for why it is a safe one.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Always-on pool counters (relaxed atomics; ~one add per *chunk*, not
/// per item, so they cost nothing measurable even with obs disabled).
#[derive(Default)]
struct Counters {
    tasks_queued: AtomicU64,
    tasks_run: AtomicU64,
    tasks_stolen: AtomicU64,
    workers_spawned: AtomicU64,
    idle_ns: AtomicU64,
}

/// A point-in-time copy of the pool's counters, in the order and with
/// the names the obs bridge publishes them under.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs ever submitted to the queue.
    pub tasks_queued: u64,
    /// Jobs executed by pool workers.
    pub tasks_run: u64,
    /// Jobs executed by a *submitting* thread that helped while waiting.
    pub tasks_stolen: u64,
    /// Workers spawned over the life of the process.
    pub workers_spawned: u64,
    /// Total nanoseconds workers spent blocked waiting for work.
    pub idle_ns: u64,
}

impl PoolStats {
    /// The stats as `(name, value)` pairs, for the obs counter bridge.
    pub fn named(&self) -> [(&'static str, u64); 5] {
        [
            ("pool.tasks_queued", self.tasks_queued),
            ("pool.tasks_run", self.tasks_run),
            ("pool.tasks_stolen", self.tasks_stolen),
            ("pool.workers_spawned", self.workers_spawned),
            ("pool.idle_ns", self.idle_ns),
        ]
    }
}

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

struct Pool {
    queue: Queue,
    /// Number of workers spawned so far, behind its own lock so growth
    /// never contends with job submission.
    spawned: Mutex<usize>,
    counters: Counters,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Queue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        },
        spawned: Mutex::new(0),
        counters: Counters::default(),
    })
}

thread_local! {
    /// Set inside pool workers so a nested [`run_tasks`] runs inline
    /// instead of submitting to the queue it is itself draining.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Current values of the pool's counters. Zero everywhere until the
/// first fan-out actually reaches the pool.
pub fn stats() -> PoolStats {
    let c = &pool().counters;
    PoolStats {
        tasks_queued: c.tasks_queued.load(Relaxed),
        tasks_run: c.tasks_run.load(Relaxed),
        tasks_stolen: c.tasks_stolen.load(Relaxed),
        workers_spawned: c.workers_spawned.load(Relaxed),
        idle_ns: c.idle_ns.load(Relaxed),
    }
}

fn worker_loop(p: &'static Pool) {
    IS_POOL_WORKER.with(|w| w.set(true));
    loop {
        let wait_start = Instant::now();
        let job = {
            let mut q = p.queue.jobs.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = p.queue.ready.wait(q).expect("pool queue poisoned");
            }
        };
        p.counters
            .idle_ns
            .fetch_add(wait_start.elapsed().as_nanos() as u64, Relaxed);
        p.counters.tasks_run.fetch_add(1, Relaxed);
        // Jobs wrap the user closure in catch_unwind, so this call never
        // unwinds and the worker never dies (the queue mutex is not held
        // here, so it cannot be poisoned by a job either).
        job();
    }
}

/// Make sure at least `want` workers exist (capped at [`MAX_WORKERS`]).
fn ensure_workers(p: &'static Pool, want: usize) {
    let want = want.min(MAX_WORKERS);
    let mut spawned = p.spawned.lock().expect("pool spawn lock poisoned");
    while *spawned < want {
        std::thread::Builder::new()
            .name(format!("callpath-pool-{}", *spawned))
            .spawn(move || worker_loop(p))
            .expect("spawn pool worker");
        *spawned += 1;
        p.counters.workers_spawned.fetch_add(1, Relaxed);
    }
}

/// Run every closure in `tasks` to completion — on pool workers when
/// possible, inline otherwise — and return their results **in task
/// order**. If any closure panicked, exactly one panic is re-raised on
/// the calling thread with the first (lowest task index) payload, after
/// all the other tasks have finished.
///
/// Single-task batches and calls made from inside a pool worker run
/// inline without touching the queue.
pub fn run_tasks<'env, A, F>(tasks: Vec<F>) -> Vec<A>
where
    A: Send + 'env,
    F: FnOnce() -> A + Send + 'env,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 || IS_POOL_WORKER.with(|w| w.get()) {
        // Inline: nothing to fan out, or we *are* a pool worker and
        // queueing could deadlock a fully busy pool. Panics propagate
        // directly, which matches the pooled contract (first payload).
        return tasks.into_iter().map(|f| f()).collect();
    }

    let p = pool();
    ensure_workers(p, n);
    let (tx, rx) = channel::<(usize, std::thread::Result<A>)>();
    {
        let mut q = p.queue.jobs.lock().expect("pool queue poisoned");
        for (i, f) in tasks.into_iter().enumerate() {
            let tx: Sender<(usize, std::thread::Result<A>)> = tx.clone();
            let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(f));
                // The receiver may already have left after a panic
                // elsewhere; a dead channel just drops the result.
                let _ = tx.send((i, result));
            });
            // SAFETY: `run_tasks` blocks below until it has received one
            // message per job, and a job sends its message only after
            // the user closure — the sole holder of `'env` borrows —
            // has been consumed. No job can therefore outlive the
            // borrows it captured. The transmute only erases the
            // lifetime; the vtable and layout are unchanged.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            q.push_back(job);
        }
        p.counters.tasks_queued.fetch_add(n as u64, Relaxed);
        p.queue.ready.notify_all();
    }
    drop(tx);

    let mut results: Vec<Option<std::thread::Result<A>>> = (0..n).map(|_| None).collect();
    let mut received = 0;
    while received < n {
        // Drain finished results first, then help with queued work
        // (ours or another submitter's) instead of blocking while
        // runnable jobs exist.
        match rx.try_recv() {
            Ok((i, r)) => {
                results[i] = Some(r);
                received += 1;
                continue;
            }
            Err(std::sync::mpsc::TryRecvError::Empty)
            | Err(std::sync::mpsc::TryRecvError::Disconnected) => {}
        }
        let job = p
            .queue
            .jobs
            .lock()
            .expect("pool queue poisoned")
            .pop_front();
        if let Some(job) = job {
            p.counters.tasks_stolen.fetch_add(1, Relaxed);
            job();
            continue;
        }
        // Queue empty: every outstanding job of ours is running on a
        // worker; block until the next one reports in.
        let (i, r) = rx
            .recv()
            .expect("pool worker vanished with results outstanding");
        results[i] = Some(r);
        received += 1;
    }

    let mut out = Vec::with_capacity(n);
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for slot in results {
        match slot.expect("every task reported") {
            Ok(v) => out.push(v),
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    out
}

/// Reduce `items` to one value by merging adjacent pairs level by level,
/// every level's pairs running concurrently via [`run_tasks`]. `merge`
/// is always called as `merge(left, right)` with `left` the lower-index
/// operand, and an odd item out passes through to the next level
/// unchanged in its position — so for any merge with the property
/// "`merge(a, b)` extends `a` in `b`'s order" the result is identical
/// to the sequential left-to-right fold, whatever the worker count.
/// Returns `None` only for an empty input.
pub fn reduce_pairwise<T, F>(mut items: Vec<T>, merge: F) -> Option<T>
where
    T: Send,
    F: Fn(T, T) -> T + Sync,
{
    while items.len() > 1 {
        let mut inputs: Vec<(T, Option<T>)> = Vec::with_capacity(items.len() / 2 + 1);
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            inputs.push((a, it.next()));
        }
        let merge = &merge;
        items = run_tasks(
            inputs
                .into_iter()
                .map(|(a, b)| {
                    move || match b {
                        Some(b) => merge(a, b),
                        None => a,
                    }
                })
                .collect(),
        );
    }
    items.pop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<_> = (0..32)
            .map(|i| {
                move || {
                    // Uneven task durations scramble completion order.
                    if i % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    i * 2
                }
            })
            .collect();
        let out = run_tasks(tasks);
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_can_borrow_from_the_caller() {
        let data: Vec<u64> = (0..1000).collect();
        let chunks: Vec<&[u64]> = data.chunks(97).collect();
        let sums = run_tasks(
            chunks
                .iter()
                .map(|c| move || c.iter().sum::<u64>())
                .collect(),
        );
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn workers_are_reused_across_calls() {
        // Warm the pool, then check repeated fan-outs do not grow it.
        let fan = || {
            run_tasks((0..4).map(|i| move || i).collect::<Vec<_>>());
        };
        fan();
        let spawned_after_first = stats().workers_spawned;
        for _ in 0..16 {
            fan();
        }
        assert_eq!(
            stats().workers_spawned,
            spawned_after_first,
            "same-width fan-outs must reuse the existing workers"
        );
        assert!(stats().tasks_queued >= 17 * 4);
    }

    #[test]
    fn a_panicking_task_surfaces_its_original_message() {
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_tasks(
                (0..8)
                    .map(|i| {
                        move || {
                            if i == 5 {
                                panic!("injected failure in task {i}");
                            }
                            i
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }))
        .expect_err("the panic must propagate to the submitter");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert_eq!(msg, "injected failure in task 5");
    }

    #[test]
    fn all_tasks_finish_even_when_one_panics() {
        let ran = AtomicUsize::new(0);
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_tasks(
                (0..8)
                    .map(|i| {
                        let ran = &ran;
                        move || {
                            ran.fetch_add(1, Relaxed);
                            if i == 0 {
                                panic!("first task dies");
                            }
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        assert_eq!(ran.load(Relaxed), 8, "panic must not cancel other tasks");
    }

    #[test]
    fn nested_submission_from_a_worker_runs_inline() {
        // Each outer task fans out again; the inner fan-out must run
        // inline on the worker (no queue round trip, no deadlock).
        let out = run_tasks(
            (0..4)
                .map(|i| {
                    move || {
                        let inner =
                            run_tasks((0..4).map(|j| move || i * 10 + j).collect::<Vec<_>>());
                        inner.into_iter().sum::<usize>()
                    }
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(out, vec![6, 46, 86, 126]);
    }

    #[test]
    fn many_more_tasks_than_workers_complete() {
        let out = run_tasks((0..300).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(out.len(), 300);
        assert!(out.into_iter().eq(0..300));
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        let out: Vec<u32> = run_tasks(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn reduce_pairwise_preserves_left_to_right_order() {
        // String concatenation is order-sensitive: the pairwise tree
        // must still produce the sequential fold's result.
        for n in [0usize, 1, 2, 3, 7, 8, 13, 64] {
            let items: Vec<String> = (0..n).map(|i| format!("{i},")).collect();
            let expect = items.concat();
            let got = reduce_pairwise(items, |a, b| a + &b);
            match got {
                None => assert_eq!(n, 0),
                Some(s) => assert_eq!(s, expect, "n={n}"),
            }
        }
    }

    #[test]
    fn reduce_pairwise_single_item_passes_through() {
        assert_eq!(reduce_pairwise(vec![41u64], |a, b| a + b), Some(41));
        assert_eq!(reduce_pairwise(Vec::<u64>::new(), |a, b| a + b), None);
    }
}
