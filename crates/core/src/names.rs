//! String interning for procedure, file and load-module names, plus source
//! locations.
//!
//! A profile of a large application references the same handful of names
//! from millions of CCT nodes; interning keeps nodes small (`u32` per name)
//! and makes name equality an integer compare, which the view-construction
//! passes rely on heavily.

use crate::ids::{FileId, LoadModuleId, ProcId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A single interning table mapping strings to dense `u32` ids.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
struct Interner {
    strings: Vec<String>,
    #[serde(skip)]
    lookup: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if self.lookup.is_empty() && !self.strings.is_empty() {
            self.rebuild_lookup();
        }
        if let Some(&id) = self.lookup.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        self.strings.push(s.to_owned());
        self.lookup.insert(s.to_owned(), id);
        id
    }

    fn rebuild_lookup(&mut self) {
        self.lookup = self
            .strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
    }

    fn get(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    fn len(&self) -> usize {
        self.strings.len()
    }
}

/// Name tables shared by a CCT and all views derived from it.
///
/// Procedures, files and load modules intern into separate namespaces, so a
/// file and a procedure that happen to share a spelling still get distinct
/// typed ids.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct NameTable {
    procs: Interner,
    files: Interner,
    modules: Interner,
}

impl NameTable {
    /// Empty name tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a procedure name.
    pub fn proc(&mut self, name: &str) -> ProcId {
        ProcId(self.procs.intern(name))
    }

    /// Intern a source file name.
    pub fn file(&mut self, name: &str) -> FileId {
        FileId(self.files.intern(name))
    }

    /// Intern a load-module name.
    pub fn module(&mut self, name: &str) -> LoadModuleId {
        LoadModuleId(self.modules.intern(name))
    }

    /// Name of procedure `id`.
    pub fn proc_name(&self, id: ProcId) -> &str {
        self.procs.get(id.0)
    }

    /// Name of file `id`.
    pub fn file_name(&self, id: FileId) -> &str {
        self.files.get(id.0)
    }

    /// Name of load module `id`.
    pub fn module_name(&self, id: LoadModuleId) -> &str {
        self.modules.get(id.0)
    }

    /// Number of interned procedures.
    pub fn proc_count(&self) -> usize {
        self.procs.len()
    }

    /// Number of interned files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Number of interned load modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }
}

/// A source location: file plus 1-based line number.
///
/// Line 0 means "unknown line" (e.g. a binary-only routine with no line
/// map, like the `main` wrapper the paper shows in plain black).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceLoc {
    /// The file.
    pub file: FileId,
    /// 1-based line; 0 = unknown.
    pub line: u32,
}

impl SourceLoc {
    /// A location at `file:line`.
    pub fn new(file: FileId, line: u32) -> Self {
        SourceLoc { file, line }
    }

    /// True when the location carries a usable line number.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}:{}", self.file.0, self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = NameTable::new();
        let a = t.proc("rhsf_");
        let b = t.proc("rhsf_");
        assert_eq!(a, b);
        assert_eq!(t.proc_name(a), "rhsf_");
        assert_eq!(t.proc_count(), 1);
    }

    #[test]
    fn namespaces_are_separate() {
        let mut t = NameTable::new();
        let p = t.proc("x");
        let f = t.file("x");
        let m = t.module("x");
        assert_eq!(p.0, 0);
        assert_eq!(f.0, 0);
        assert_eq!(m.0, 0);
        assert_eq!(t.proc_name(p), "x");
        assert_eq!(t.file_name(f), "x");
        assert_eq!(t.module_name(m), "x");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut t = NameTable::new();
        let a = t.file("file1.c");
        let b = t.file("file2.c");
        assert_ne!(a, b);
        assert_eq!(t.file_count(), 2);
    }

    #[test]
    fn lookup_survives_serde_roundtrip() {
        let mut t = NameTable::new();
        t.proc("f");
        t.proc("g");
        // Simulate the post-deserialization state where the lookup map is
        // empty but strings are present.
        let mut t2 = t.clone();
        t2.procs.lookup.clear();
        let g = t2.proc("g");
        assert_eq!(t2.proc_name(g), "g");
        assert_eq!(t2.proc_count(), 2, "re-interning must not duplicate");
    }

    #[test]
    fn source_loc_known() {
        assert!(!SourceLoc::new(FileId(0), 0).is_known());
        assert!(SourceLoc::new(FileId(0), 17).is_known());
    }
}
