//! The canonical calling context tree (CCT).
//!
//! This is the central data structure of the paper: a fusion of dynamic
//! calling contexts (`<call site, callee>` chains collected by the sampler)
//! with static program structure (loops, inlined frames, statements)
//! recovered from the binary. The Calling Context View presents this tree
//! directly; the Callers View and Flat View are derived from it
//! (`crate::callers`, `crate::flat`).
//!
//! Storage is a flat arena with two backings behind one API:
//!
//! * **Owned** — one contiguous `Vec` of nodes, each storing `parent`,
//!   `first_child`, `last_child` and `next_sibling` indices plus its
//!   [`ScopeKind`]. This is what profile correlation builds.
//! * **Mapped** — a zero-copy [`MappedTopology`] view borrowing the
//!   same arrays straight out of a format-v2.1 database image
//!   (structure-of-arrays: three `u32` link arrays, a tag byte and six
//!   `u32` payload fields per node). Opening a million-node database
//!   costs no per-node decoding; the first *mutation* materializes the
//!   owned arena (copy-on-write).
//!
//! Child order is insertion order and is preserved by every traversal,
//! which keeps golden tests deterministic. Traversals over mapped
//! topologies carry step budgets so a corrupt image can produce a wrong
//! tree but never an unbounded walk.

use crate::ids::NodeId;
use crate::mapped::MappedTopology;
use crate::names::NameTable;
use crate::scope::{ScopeKind, StaticKey};
use serde::{Deserialize, Serialize};

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    kind: ScopeKind,
    parent: u32,
    first_child: u32,
    last_child: u32,
    next_sibling: u32,
}

/// The arena backing: owned nodes or a borrowed database image.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum NodeStore {
    Owned(Vec<Node>),
    Mapped(MappedTopology),
}

/// A canonical calling context tree plus the name tables its scopes
/// reference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cct {
    store: NodeStore,
    /// Name tables the scopes reference.
    pub names: NameTable,
}

impl Cct {
    /// Create a CCT containing only the synthetic root scope.
    pub fn new(names: NameTable) -> Self {
        Cct {
            store: NodeStore::Owned(vec![Node {
                kind: ScopeKind::Root,
                parent: NONE,
                first_child: NONE,
                last_child: NONE,
                next_sibling: NONE,
            }]),
            names,
        }
    }

    /// Wrap a validated zero-copy topology view (format v2.1): no
    /// per-node decoding happens here, so this is O(1) regardless of
    /// tree size. The tree is read-only until the first mutation, which
    /// silently materializes an owned arena.
    pub fn from_mapped(names: NameTable, topo: MappedTopology) -> Self {
        Cct {
            store: NodeStore::Mapped(topo),
            names,
        }
    }

    /// True while the tree is still backed by a borrowed database image.
    pub fn is_mapped(&self) -> bool {
        matches!(self.store, NodeStore::Mapped(_))
    }

    /// The synthetic root node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        match &self.store {
            NodeStore::Owned(nodes) => nodes.len(),
            NodeStore::Mapped(topo) => topo.len(),
        }
    }

    /// Always false: a CCT contains at least its root.
    pub fn is_empty(&self) -> bool {
        // A CCT always contains its root.
        false
    }

    #[inline]
    fn parent_raw(&self, i: u32) -> u32 {
        match &self.store {
            NodeStore::Owned(nodes) => nodes[i as usize].parent,
            NodeStore::Mapped(topo) => topo.parent(i as usize),
        }
    }

    #[inline]
    fn first_child_raw(&self, i: u32) -> u32 {
        match &self.store {
            NodeStore::Owned(nodes) => nodes[i as usize].first_child,
            NodeStore::Mapped(topo) => topo.first_child(i as usize),
        }
    }

    #[inline]
    fn next_sibling_raw(&self, i: u32) -> u32 {
        match &self.store {
            NodeStore::Owned(nodes) => nodes[i as usize].next_sibling,
            NodeStore::Mapped(topo) => topo.next_sibling(i as usize),
        }
    }

    /// Copy a mapped topology into the owned arena so it can be
    /// mutated; no-op when already owned. `last_child` is recomputed by
    /// walking each sibling chain (the mapped form does not store it).
    fn make_owned(&mut self) {
        if let NodeStore::Mapped(topo) = &self.store {
            let n = topo.len();
            let mut nodes: Vec<Node> = (0..n)
                .map(|i| Node {
                    kind: topo.kind(i),
                    parent: topo.parent(i),
                    first_child: topo.first_child(i),
                    last_child: NONE,
                    next_sibling: topo.next_sibling(i),
                })
                .collect();
            for i in 0..n {
                let mut cur = nodes[i].first_child;
                let mut last = NONE;
                let mut budget = n;
                while cur != NONE && budget > 0 {
                    last = cur;
                    cur = nodes[cur as usize].next_sibling;
                    budget -= 1;
                }
                nodes[i].last_child = last;
            }
            self.store = NodeStore::Owned(nodes);
        }
    }

    /// Append a child scope under `parent`, returning its id. Children keep
    /// insertion order.
    pub fn add_child(&mut self, parent: NodeId, kind: ScopeKind) -> NodeId {
        self.make_owned();
        let NodeStore::Owned(nodes) = &mut self.store else {
            unreachable!("make_owned() materialized above");
        };
        let id = u32::try_from(nodes.len()).expect("CCT node overflow");
        nodes.push(Node {
            kind,
            parent: parent.0,
            first_child: NONE,
            last_child: NONE,
            next_sibling: NONE,
        });
        let p = &mut nodes[parent.index()];
        if p.first_child == NONE {
            p.first_child = id;
        } else {
            let last = p.last_child;
            nodes[last as usize].next_sibling = id;
        }
        nodes[parent.index()].last_child = id;
        NodeId(id)
    }

    /// Find an existing child of `parent` with exactly this `kind`, or add
    /// one. This is the primitive profile-merging operation: two samples
    /// that share a calling-context prefix share CCT nodes.
    pub fn find_or_add_child(&mut self, parent: NodeId, kind: ScopeKind) -> NodeId {
        self.find_or_add_child_tracked(parent, kind).0
    }

    /// [`Self::find_or_add_child`], also reporting whether the child was
    /// newly created. Journal-pruning merges need the distinction: only
    /// first-appearance edges have to be replayed to reconstruct a CCT,
    /// so repeat visits can be dropped at record time.
    pub fn find_or_add_child_tracked(&mut self, parent: NodeId, kind: ScopeKind) -> (NodeId, bool) {
        let mut cur = self.first_child_raw(parent.0);
        while cur != NONE {
            if self.kind(NodeId(cur)) == kind {
                return (NodeId(cur), false);
            }
            cur = self.next_sibling_raw(cur);
        }
        (self.add_child(parent, kind), true)
    }

    /// Scope kind of node `n`. Returned by value (`ScopeKind` is `Copy`):
    /// the mapped backing decodes it from the image on the fly, so there
    /// is no stored `ScopeKind` to borrow.
    #[inline]
    pub fn kind(&self, n: NodeId) -> ScopeKind {
        match &self.store {
            NodeStore::Owned(nodes) => nodes[n.index()].kind,
            NodeStore::Mapped(topo) => topo.kind(n.index()),
        }
    }

    /// Parent of `n` (`None` for the root).
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        let p = self.parent_raw(n.0);
        (p != NONE).then_some(NodeId(p))
    }

    /// Iterate the children of `n` in insertion order.
    pub fn children(&self, n: NodeId) -> Children<'_> {
        Children {
            cct: self,
            cur: self.first_child_raw(n.0),
            remaining: self.len(),
        }
    }

    /// Number of children of `n`.
    pub fn child_count(&self, n: NodeId) -> usize {
        self.children(n).count()
    }

    /// True when `n` has no children.
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.first_child_raw(n.0) == NONE
    }

    /// Iterate proper ancestors of `n`, innermost first, ending at the root.
    pub fn ancestors(&self, n: NodeId) -> Ancestors<'_> {
        Ancestors {
            cct: self,
            cur: self.parent_raw(n.0),
            remaining: self.len(),
        }
    }

    /// Pre-order traversal of the subtree rooted at `n` (including `n`).
    ///
    /// Allocation-free: instead of keeping an explicit stack it follows
    /// `first_child`, then `next_sibling`, climbing `parent` links back
    /// to the subtree root — O(1) state for any tree size.
    pub fn preorder(&self, n: NodeId) -> Preorder<'_> {
        Preorder {
            cct: self,
            start: n.0,
            cur: n.0,
            remaining: self.len(),
        }
    }

    /// All node ids, in arena order. Arena order is a valid topological
    /// order (parents precede children) because children are always
    /// appended after their parent.
    pub fn all_nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + '_ {
        (0..self.len() as u32).map(NodeId)
    }

    /// Depth of `n`: the root has depth 0.
    pub fn depth(&self, n: NodeId) -> usize {
        self.ancestors(n).count()
    }

    /// The nearest enclosing *dynamic* procedure frame of `n` (or `n`
    /// itself if it is one). Loops and statements always live inside some
    /// frame; the root has no frame.
    pub fn enclosing_frame(&self, n: NodeId) -> Option<NodeId> {
        if matches!(self.kind(n), ScopeKind::Frame { .. }) {
            return Some(n);
        }
        self.ancestors(n)
            .find(|&a| matches!(self.kind(a), ScopeKind::Frame { .. }))
    }

    /// The nearest enclosing frame-like scope (dynamic frame *or* inlined
    /// frame); used for attribution rule 1, which stops at any frame
    /// boundary.
    pub fn enclosing_frame_like(&self, n: NodeId) -> Option<NodeId> {
        if self.kind(n).is_frame() {
            return Some(n);
        }
        self.ancestors(n).find(|&a| self.kind(a).is_frame())
    }

    /// The caller frame of a frame node: the nearest ancestor that is a
    /// dynamic frame.
    pub fn caller_frame(&self, frame: NodeId) -> Option<NodeId> {
        self.ancestors(frame)
            .find(|&a| matches!(self.kind(a), ScopeKind::Frame { .. }))
    }

    /// The static object this node is an instance of, used for exposure
    /// analysis and Flat-View aggregation. Loops and statements are
    /// qualified by the procedure of their enclosing frame-like scope so
    /// that identical line numbers in different procedures stay distinct.
    pub fn static_key(&self, n: NodeId) -> StaticKey {
        match self.kind(n) {
            ScopeKind::Root => StaticKey::Root,
            ScopeKind::Frame { proc, .. } => StaticKey::Proc(proc),
            ScopeKind::InlinedFrame {
                proc, call_site, ..
            } => {
                let host = self
                    .parent(n)
                    .and_then(|p| self.enclosing_frame_host_proc(p))
                    .expect("inlined frame must be nested in a frame");
                StaticKey::InlinedProc {
                    host,
                    callee: proc,
                    call_site,
                }
            }
            ScopeKind::Loop { header } => {
                let proc = self
                    .parent(n)
                    .and_then(|p| self.enclosing_frame_host_proc(p))
                    .expect("loop must be nested in a frame");
                StaticKey::Loop { proc, header }
            }
            ScopeKind::Stmt { loc } => {
                let proc = self
                    .parent(n)
                    .and_then(|p| self.enclosing_frame_host_proc(p))
                    .expect("statement must be nested in a frame");
                StaticKey::Stmt { proc, loc }
            }
        }
    }

    /// The procedure owning the innermost frame-like scope at or above `n`.
    fn enclosing_frame_host_proc(&self, n: NodeId) -> Option<crate::ids::ProcId> {
        self.enclosing_frame_like(n)
            .and_then(|f| self.kind(f).frame_proc())
    }

    /// Structural sanity checks; used by tests and debug assertions.
    ///
    /// Verifies that the root is unique, that every non-root node has a
    /// parent chain ending at the root, and that loops/statements are nested
    /// inside frames.
    pub fn validate(&self) -> Result<(), String> {
        for n in self.all_nodes() {
            match self.kind(n) {
                ScopeKind::Root => {
                    if n != self.root() {
                        return Err(format!("non-root node {n:?} has Root kind"));
                    }
                }
                ScopeKind::Loop { .. }
                | ScopeKind::Stmt { .. }
                | ScopeKind::InlinedFrame { .. } => {
                    if self.enclosing_frame_like(n).is_none()
                        || self
                            .parent(n)
                            .and_then(|p| self.enclosing_frame_host_proc(p))
                            .is_none()
                    {
                        return Err(format!("{:?} not nested inside a frame", self.kind(n)));
                    }
                }
                ScopeKind::Frame { .. } => {}
            }
            // Parent chain must terminate (guaranteed by arena construction:
            // parents always have smaller indices).
            if let Some(p) = self.parent(n) {
                if p.index() >= n.index() {
                    return Err(format!("parent {p:?} does not precede child {n:?}"));
                }
            } else if n != self.root() {
                return Err(format!("orphan node {n:?}"));
            }
        }
        Ok(())
    }

    /// Human-readable dump of the subtree at `n` (for tests and debugging).
    pub fn dump(&self, n: NodeId) -> String {
        let mut out = String::new();
        self.dump_into(n, 0, &mut out);
        out
    }

    fn dump_into(&self, n: NodeId, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.kind(n).label(&self.names));
        out.push('\n');
        for c in self.children(n) {
            self.dump_into(c, depth + 1, out);
        }
    }
}

/// Iterator over the children of a node.
pub struct Children<'a> {
    cct: &'a Cct,
    cur: u32,
    /// Step budget (node count): terminates even on a corrupt mapped
    /// image whose sibling links form a cycle.
    remaining: usize,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.cur == NONE || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let id = NodeId(self.cur);
        self.cur = self.cct.next_sibling_raw(self.cur);
        Some(id)
    }
}

/// Iterator over proper ancestors, innermost first.
pub struct Ancestors<'a> {
    cct: &'a Cct,
    cur: u32,
    /// Step budget (node count): terminates even on a corrupt mapped
    /// image whose parent links form a cycle.
    remaining: usize,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.cur == NONE || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let id = NodeId(self.cur);
        self.cur = self.cct.parent_raw(self.cur);
        Some(id)
    }
}

/// Pre-order subtree traversal (allocation-free; see [`Cct::preorder`]).
pub struct Preorder<'a> {
    cct: &'a Cct,
    start: u32,
    cur: u32,
    /// Step budget (node count): terminates even on a corrupt mapped
    /// image whose links form a cycle.
    remaining: usize,
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.cur == NONE || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let out = self.cur;
        // Advance: descend to the first child if there is one; otherwise
        // take the next sibling, climbing parents (never past the
        // subtree root) until one exists.
        let fc = self.cct.first_child_raw(out);
        if fc != NONE {
            self.cur = fc;
        } else {
            let mut x = out;
            loop {
                if x == self.start {
                    self.cur = NONE;
                    break;
                }
                let ns = self.cct.next_sibling_raw(x);
                if ns != NONE {
                    self.cur = ns;
                    break;
                }
                match self.cct.parent_raw(x) {
                    NONE => {
                        self.cur = NONE;
                        break;
                    }
                    p => x = p,
                }
            }
        }
        Some(NodeId(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FileId, LoadModuleId, ProcId};
    use crate::names::SourceLoc;

    fn frame(proc: u32) -> ScopeKind {
        ScopeKind::Frame {
            proc: ProcId(proc),
            module: LoadModuleId(0),
            def: SourceLoc::new(FileId(0), 1),
            call_site: Some(SourceLoc::new(FileId(0), 2)),
        }
    }

    fn stmt(line: u32) -> ScopeKind {
        ScopeKind::Stmt {
            loc: SourceLoc::new(FileId(0), line),
        }
    }

    fn small_tree() -> (Cct, NodeId, NodeId, NodeId) {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        let a = cct.add_child(root, frame(0));
        let b = cct.add_child(a, frame(1));
        let s = cct.add_child(b, stmt(5));
        (cct, a, b, s)
    }

    #[test]
    fn children_preserve_insertion_order() {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        let ids: Vec<NodeId> = (0..5).map(|i| cct.add_child(root, frame(i))).collect();
        let got: Vec<NodeId> = cct.children(root).collect();
        assert_eq!(got, ids);
        assert_eq!(cct.child_count(root), 5);
    }

    #[test]
    fn find_or_add_deduplicates() {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        let a = cct.find_or_add_child(root, frame(0));
        let b = cct.find_or_add_child(root, frame(0));
        assert_eq!(a, b);
        let c = cct.find_or_add_child(root, frame(1));
        assert_ne!(a, c);
        assert_eq!(cct.len(), 3);
    }

    #[test]
    fn ancestors_innermost_first() {
        let (cct, a, b, s) = small_tree();
        let chain: Vec<NodeId> = cct.ancestors(s).collect();
        assert_eq!(chain, vec![b, a, cct.root()]);
        assert_eq!(cct.depth(s), 3);
        assert_eq!(cct.depth(cct.root()), 0);
    }

    #[test]
    fn enclosing_frame_skips_static_scopes() {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        let f = cct.add_child(root, frame(0));
        let l = cct.add_child(
            f,
            ScopeKind::Loop {
                header: SourceLoc::new(FileId(0), 8),
            },
        );
        let s = cct.add_child(l, stmt(9));
        assert_eq!(cct.enclosing_frame(s), Some(f));
        assert_eq!(cct.enclosing_frame(l), Some(f));
        assert_eq!(cct.enclosing_frame(f), Some(f));
        assert_eq!(cct.enclosing_frame(root), None);
    }

    #[test]
    fn static_keys_qualified_by_proc() {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        let f0 = cct.add_child(root, frame(0));
        let f1 = cct.add_child(f0, frame(1));
        let s0 = cct.add_child(f0, stmt(5));
        let s1 = cct.add_child(f1, stmt(5));
        assert_ne!(cct.static_key(s0), cct.static_key(s1));
        assert_eq!(cct.static_key(f0), StaticKey::Proc(ProcId(0)));
    }

    #[test]
    fn preorder_visits_subtree_in_order() {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        let a = cct.add_child(root, frame(0));
        let b = cct.add_child(a, frame(1));
        let c = cct.add_child(a, frame(2));
        let d = cct.add_child(b, frame(3));
        let order: Vec<NodeId> = cct.preorder(root).collect();
        assert_eq!(order, vec![root, a, b, d, c]);
        let sub: Vec<NodeId> = cct.preorder(b).collect();
        assert_eq!(sub, vec![b, d]);
    }

    #[test]
    fn preorder_of_leaf_is_just_the_leaf() {
        let (cct, _, _, s) = small_tree();
        let only: Vec<NodeId> = cct.preorder(s).collect();
        assert_eq!(only, vec![s]);
    }

    #[test]
    fn validate_accepts_well_formed() {
        let (cct, ..) = small_tree();
        assert!(cct.validate().is_ok());
    }

    #[test]
    fn validate_rejects_orphan_static_scope() {
        let mut cct = Cct::new(NameTable::new());
        let root = cct.root();
        cct.add_child(root, stmt(5)); // statement directly under root
        assert!(cct.validate().is_err());
    }

    #[test]
    fn dump_is_indented() {
        let mut cct = Cct::new(NameTable::new());
        let p = cct.names.proc("main");
        let module = cct.names.module("a.out");
        let file = cct.names.file("m.c");
        let root = cct.root();
        let f = cct.add_child(
            root,
            ScopeKind::Frame {
                proc: p,
                module,
                def: SourceLoc::new(file, 1),
                call_site: None,
            },
        );
        let _ = f;
        let text = cct.dump(root);
        assert!(text.contains("<program root>"));
        assert!(text.contains("  main"));
    }
}
