//! The Callers View: a bottom-up view that lets the analyst look upward
//! along call paths (Section III-B).
//!
//! Each top-level entry aggregates one procedure over *all* of its calling
//! contexts; expanding an entry walks up the call chain, apportioning the
//! procedure's costs among the contexts in which they were incurred.
//! Recursion is handled with set-exposed aggregation (Section IV-B): the
//! top-level entry for a recursive `g` counts only activations with no
//! `g` ancestor, while the `g←g` child counts the activations whose
//! *immediate* caller is `g`.
//!
//! Construction is **lazy** by default — the paper calls this out as a
//! scalability feature ("the Callers View is constructed dynamically...
//! we store and process data only when needed", Section VII). Top-level
//! entries are built eagerly from one pass over the CCT; children
//! materialize on first expansion. `CallersView::fully_expand` provides
//! the eager variant for the ablation bench.

use crate::experiment::Experiment;
use crate::exposure::exposed;
use crate::ids::{ColumnId, MetricId, NodeId, ProcId, ViewNodeId};
use crate::metrics::StorageKind;
use crate::scope::ScopeKind;
use crate::viewtree::{ViewScope, ViewTree};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Memoized per-callee aggregation results: column values for one
/// top-level procedure entry, keyed by `(procedure, metrics generation)`.
/// The generation key makes mutation-safety automatic — after the raw
/// metrics change, lookups miss and the entry is recomputed; until then,
/// repeated view constructions and refreshes share one computation.
type CalleeCache = HashMap<(ProcId, u64), Arc<Vec<f64>>>;

/// Bottom-up (callers) view over an experiment.
#[derive(Debug)]
pub struct CallersView {
    /// The materialized view nodes and their metric columns.
    pub tree: ViewTree,
    /// For each view node, one "cursor" per aggregated instance: the CCT
    /// frame whose caller determines the next grouping level. At the top
    /// level the cursor is the instance itself; each expansion moves every
    /// cursor one caller up.
    cursors: Vec<Vec<NodeId>>,
    /// Memoized top-level aggregation, shared across refreshes.
    agg_cache: RwLock<CalleeCache>,
    /// Cache hit counter (observable via [`CallersView::cache_stats`]).
    hits: AtomicU64,
    /// Cache miss counter.
    misses: AtomicU64,
}

impl Clone for CallersView {
    fn clone(&self) -> Self {
        CallersView {
            tree: self.tree.clone(),
            cursors: self.cursors.clone(),
            agg_cache: RwLock::new(self.agg_cache.read().clone()),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
        }
    }
}

impl CallersView {
    /// Build the top-level entries (one per procedure with at least one
    /// dynamic activation). Children are materialized on demand via
    /// [`CallersView::expand`].
    pub fn build(exp: &Experiment, storage: StorageKind) -> Self {
        let mut view = CallersView {
            tree: ViewTree::new(storage),
            cursors: Vec::new(),
            agg_cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        };
        // Mirror the experiment's column layout.
        for d in exp.columns.descs() {
            view.tree.columns.add_column(d.clone());
        }
        // One pass over the CCT: bucket frames by procedure, preserving
        // first-appearance order for determinism.
        let mut order: Vec<crate::ids::ProcId> = Vec::new();
        let mut buckets: HashMap<crate::ids::ProcId, Vec<NodeId>> = HashMap::new();
        for n in exp.cct.all_nodes() {
            if let ScopeKind::Frame { proc, .. } = exp.cct.kind(n) {
                let b = buckets.entry(proc).or_default();
                if b.is_empty() {
                    order.push(proc);
                }
                b.push(n);
            }
        }
        for proc in order {
            let instances = buckets.remove(&proc).unwrap();
            let node = view.tree.add_root(ViewScope::ProcTop { proc });
            view.cursors.push(instances.clone());
            for &i in &instances {
                view.tree.push_instance(node, i);
            }
            view.fill_values(exp, node);
        }
        view
    }

    /// Build and eagerly expand every node (the non-scalable variant, kept
    /// for the lazy-vs-eager ablation of Section VII).
    pub fn build_eager(exp: &Experiment, storage: StorageKind) -> Self {
        let mut view = Self::build(exp, storage);
        view.fully_expand(exp);
        view
    }

    /// Materialize the children of `n` if not yet done.
    pub fn expand(&mut self, exp: &Experiment, n: ViewNodeId) {
        if self.tree.is_expanded(n) {
            return;
        }
        self.tree.mark_expanded(n);
        // Group (instance, cursor) pairs by the cursor's caller frame:
        // key = (caller procedure, call site of the cursor activation).
        let instances: Vec<NodeId> = self.tree.instances(n).to_vec();
        let cursors = self.cursors[n.index()].clone();
        let mut order: Vec<ViewScope> = Vec::new();
        let mut groups: HashMap<ViewScope, (Vec<NodeId>, Vec<NodeId>)> = HashMap::new();
        for (&inst, &cursor) in instances.iter().zip(cursors.iter()) {
            let Some(caller) = exp.cct.caller_frame(cursor) else {
                continue; // top-level activation (e.g. main): no caller line
            };
            let ScopeKind::Frame {
                proc: caller_proc, ..
            } = exp.cct.kind(caller)
            else {
                unreachable!("caller_frame returns dynamic frames only");
            };
            let call_site = match exp.cct.kind(cursor) {
                ScopeKind::Frame { call_site, .. } => call_site,
                _ => None,
            };
            let key = ViewScope::Caller {
                proc: caller_proc,
                call_site,
            };
            let entry = groups.entry(key);
            if let std::collections::hash_map::Entry::Vacant(_) = entry {
                order.push(key);
            }
            let (gi, gc) = groups.entry(key).or_default();
            gi.push(inst);
            gc.push(caller);
        }
        for key in order {
            let (gi, gc) = groups.remove(&key).unwrap();
            let child = self.tree.add_child(n, key);
            debug_assert_eq!(child.index(), self.cursors.len());
            self.cursors.push(gc);
            for i in gi {
                self.tree.push_instance(child, i);
            }
            self.fill_values(exp, child);
        }
    }

    /// Expand every reachable node (terminates because each level moves
    /// every cursor strictly closer to the root).
    pub fn fully_expand(&mut self, exp: &Experiment) {
        let mut stack: Vec<ViewNodeId> = self.tree.roots();
        while let Some(n) = stack.pop() {
            self.expand(exp, n);
            stack.extend(self.tree.children(n));
        }
    }

    /// Children of `n`, materializing them first if needed.
    pub fn children_of(&mut self, exp: &Experiment, n: ViewNodeId) -> Vec<ViewNodeId> {
        self.expand(exp, n);
        self.tree.children(n)
    }

    /// A node can expand if any aggregated activation still has a caller.
    pub fn can_expand(&self, exp: &Experiment, n: ViewNodeId) -> bool {
        if self.tree.is_expanded(n) {
            return self.tree.has_children(n);
        }
        self.cursors[n.index()]
            .iter()
            .any(|&c| exp.cct.caller_frame(c).is_some())
    }

    /// Compute one node's column values from its instance set:
    /// set-exposed sums of both inclusive and (rule-1 frame) exclusive
    /// values, then derived formulas over those aggregates. Pure in the
    /// experiment — this is the unit the per-callee cache memoizes.
    fn compute_values(exp: &Experiment, instances: &[NodeId], ncols: usize) -> Vec<f64> {
        let keep = exposed(&exp.cct, instances);
        let mut vals = vec![0.0; ncols];
        let attrs = exp.attributions();
        for mi in 0..exp.raw.metric_count() {
            let m = MetricId::from_usize(mi);
            let attr = &attrs[m.index()];
            let (mut incl, mut excl) = (0.0, 0.0);
            for &i in &keep {
                incl += attr.inclusive.get(i.0);
                excl += attr.exclusive.get(i.0);
            }
            vals[exp.inclusive_col(m).index()] = incl;
            vals[exp.exclusive_col(m).index()] = excl;
        }
        for (c, expr) in exp.derived_formulas() {
            vals[c.index()] = expr.eval(&crate::derived::SliceContext {
                columns: &vals,
                aggregates: exp.aggregates(),
            });
        }
        vals
    }

    /// Aggregated column values for top-level callee `proc`, memoized by
    /// `(proc, metrics generation)` so repeated view constructions and
    /// refreshes over unchanged metrics share one aggregation pass.
    fn callee_totals(&self, exp: &Experiment, proc: ProcId, instances: &[NodeId]) -> Arc<Vec<f64>> {
        let key = (proc, exp.raw.generation());
        if let Some(v) = self.agg_cache.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let vals = Arc::new(Self::compute_values(
            exp,
            instances,
            self.tree.columns.column_count(),
        ));
        self.agg_cache.write().insert(key, vals.clone());
        vals
    }

    /// `(hits, misses)` of the per-callee aggregation cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Recompute every materialized node's column values against the
    /// experiment's current metrics. Top-level entries go through the
    /// `(proc, generation)` cache: a refresh over unchanged metrics is
    /// pure cache hits, while one after mutation recomputes (and caches)
    /// fresh aggregates.
    pub fn refresh(&mut self, exp: &Experiment) {
        for i in 0..self.tree.len() as u32 {
            self.fill_values(exp, ViewNodeId(i));
        }
    }

    /// Write a node's column values, routing top-level procedure entries
    /// through the memoized per-callee aggregation.
    fn fill_values(&mut self, exp: &Experiment, n: ViewNodeId) {
        let vals: Arc<Vec<f64>> = match *self.tree.scope(n) {
            ViewScope::ProcTop { proc } => {
                let instances = self.tree.instances(n).to_vec();
                self.callee_totals(exp, proc, &instances)
            }
            _ => Arc::new(Self::compute_values(
                exp,
                self.tree.instances(n),
                self.tree.columns.column_count(),
            )),
        };
        for (i, &v) in vals.iter().enumerate() {
            self.tree.columns.set(ColumnId(i as u32), n.0, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ColumnId, FileId};
    use crate::metrics::{MetricDesc, RawMetrics};
    use crate::names::{NameTable, SourceLoc};

    /// Build the Fig. 1 program's CCT by hand (same shape the golden
    /// integration test uses; duplicated here in miniature so unit tests
    /// stay self-contained).
    fn fig1_experiment() -> (Experiment, Vec<&'static str>) {
        let mut names = NameTable::new();
        let file1 = names.file("file1.c");
        let file2 = names.file("file2.c");
        let module = names.module("a.out");
        let p_m = names.proc("m");
        let p_f = names.proc("f");
        let p_g = names.proc("g");
        let p_h = names.proc("h");
        let mut cct = crate::cct::Cct::new(names);
        let root = cct.root();
        let frame = |proc, def: (FileId, u32), cs: Option<(FileId, u32)>| ScopeKind::Frame {
            proc,
            module,
            def: SourceLoc::new(def.0, def.1),
            call_site: cs.map(|(f, l)| SourceLoc::new(f, l)),
        };
        let m = cct.add_child(root, frame(p_m, (file1, 6), None));
        let f = cct.add_child(m, frame(p_f, (file1, 1), Some((file1, 7))));
        let g1 = cct.add_child(f, frame(p_g, (file2, 2), Some((file1, 2))));
        let g2 = cct.add_child(g1, frame(p_g, (file2, 2), Some((file2, 3))));
        let h = cct.add_child(g2, frame(p_h, (file2, 7), Some((file2, 4))));
        let l1 = cct.add_child(
            h,
            ScopeKind::Loop {
                header: SourceLoc::new(file2, 8),
            },
        );
        let l2 = cct.add_child(
            l1,
            ScopeKind::Loop {
                header: SourceLoc::new(file2, 9),
            },
        );
        let g3 = cct.add_child(m, frame(p_g, (file2, 2), Some((file1, 8))));
        let stmt = |cct: &mut crate::cct::Cct, p, file, line| {
            cct.add_child(
                p,
                ScopeKind::Stmt {
                    loc: SourceLoc::new(file, line),
                },
            )
        };
        let s_f = stmt(&mut cct, f, file1, 2);
        let s_g1 = stmt(&mut cct, g1, file2, 3);
        let s_g2 = stmt(&mut cct, g2, file2, 4);
        let s_g3 = stmt(&mut cct, g3, file2, 3);
        let s_l2 = stmt(&mut cct, l2, file2, 9);

        let mut raw = RawMetrics::new(StorageKind::Dense);
        let cyc = raw.add_metric(MetricDesc::new("cost", "samples", 1.0));
        raw.add_cost(cyc, s_f, 1.0);
        raw.add_cost(cyc, s_g1, 1.0);
        raw.add_cost(cyc, s_g2, 1.0);
        raw.add_cost(cyc, s_g3, 3.0);
        raw.add_cost(cyc, s_l2, 4.0);
        (
            Experiment::build(cct, raw, StorageKind::Dense),
            vec!["m", "f", "g", "h"],
        )
    }

    fn value(view: &CallersView, n: ViewNodeId, col: u32) -> f64 {
        view.tree.columns.get(ColumnId(col), n.0)
    }

    fn find_root(view: &CallersView, exp: &Experiment, name: &str) -> ViewNodeId {
        view.tree
            .roots()
            .into_iter()
            .find(|&r| view.tree.label(r, &exp.cct.names) == name)
            .unwrap_or_else(|| panic!("no root named {name}"))
    }

    #[test]
    fn top_level_matches_fig2b() {
        let (exp, _) = fig1_experiment();
        let view = CallersView::build(&exp, StorageKind::Dense);
        // Roots: m, f, g, h (first-appearance order in the CCT).
        let labels: Vec<String> = view
            .tree
            .roots()
            .iter()
            .map(|&r| view.tree.label(r, &exp.cct.names))
            .collect();
        assert_eq!(labels, vec!["m", "f", "g", "h"]);

        let ga = find_root(&view, &exp, "g");
        assert_eq!(value(&view, ga, 0), 9.0, "ga inclusive: exposed g1+g3");
        assert_eq!(value(&view, ga, 1), 4.0, "ga exclusive: exposed 1+3");
        let fa = find_root(&view, &exp, "f");
        assert_eq!(value(&view, fa, 0), 7.0);
        assert_eq!(value(&view, fa, 1), 1.0);
        let ha = find_root(&view, &exp, "h");
        assert_eq!(value(&view, ha, 0), 4.0);
        assert_eq!(value(&view, ha, 1), 4.0);
        let ma = find_root(&view, &exp, "m");
        assert_eq!(value(&view, ma, 0), 10.0);
        assert_eq!(value(&view, ma, 1), 0.0);
    }

    #[test]
    fn expansion_matches_fig2b_children() {
        let (exp, _) = fig1_experiment();
        let mut view = CallersView::build(&exp, StorageKind::Dense);
        let ga = find_root(&view, &exp, "g");
        let kids = view.children_of(&exp, ga);
        let kid_labels: Vec<String> = kids
            .iter()
            .map(|&k| view.tree.label(k, &exp.cct.names))
            .collect();
        // Callers of g: f (g1), g (g2), m (g3) — first-appearance order.
        assert_eq!(kid_labels, vec!["f", "g", "m"]);
        assert_eq!(value(&view, kids[0], 0), 6.0, "g←f = g1 (6,1)");
        assert_eq!(value(&view, kids[0], 1), 1.0);
        assert_eq!(value(&view, kids[1], 0), 5.0, "g←g = g2 (5,1)");
        assert_eq!(value(&view, kids[1], 1), 1.0);
        assert_eq!(value(&view, kids[2], 0), 3.0, "g←m = g3 (3,3)");
        assert_eq!(value(&view, kids[2], 1), 3.0);

        // Grandchildren: g←g←f = (5,1), then g←g←f←m = (5,1).
        let gg = kids[1];
        let gg_kids = view.children_of(&exp, gg);
        assert_eq!(gg_kids.len(), 1);
        assert_eq!(view.tree.label(gg_kids[0], &exp.cct.names), "f");
        assert_eq!(value(&view, gg_kids[0], 0), 5.0);
        assert_eq!(value(&view, gg_kids[0], 1), 1.0);
        let ggf_kids = view.children_of(&exp, gg_kids[0]);
        assert_eq!(ggf_kids.len(), 1);
        assert_eq!(view.tree.label(ggf_kids[0], &exp.cct.names), "m");
        assert_eq!(value(&view, ggf_kids[0], 0), 5.0);
    }

    #[test]
    fn m_has_no_callers() {
        let (exp, _) = fig1_experiment();
        let mut view = CallersView::build(&exp, StorageKind::Dense);
        let ma = find_root(&view, &exp, "m");
        assert!(!view.can_expand(&exp, ma));
        assert!(view.children_of(&exp, ma).is_empty());
    }

    #[test]
    fn lazy_build_creates_only_top_level() {
        let (exp, procs) = fig1_experiment();
        let view = CallersView::build(&exp, StorageKind::Dense);
        assert_eq!(view.tree.len(), procs.len(), "no children materialized");
        let eager = CallersView::build_eager(&exp, StorageKind::Dense);
        assert!(eager.tree.len() > procs.len());
    }

    #[test]
    fn eager_matches_fig2b_node_count() {
        let (exp, _) = fig1_experiment();
        let eager = CallersView::build_eager(&exp, StorageKind::Dense);
        // Fig. 2b has 15 nodes: ga..gd, fa..fd, ma..me, m, h.
        assert_eq!(eager.tree.len(), 15);
    }

    #[test]
    fn expansion_is_idempotent() {
        let (exp, _) = fig1_experiment();
        let mut view = CallersView::build(&exp, StorageKind::Dense);
        let ga = find_root(&view, &exp, "g");
        let a = view.children_of(&exp, ga);
        let b = view.children_of(&exp, ga);
        assert_eq!(a, b);
        let len = view.tree.len();
        view.expand(&exp, ga);
        assert_eq!(view.tree.len(), len);
    }

    #[test]
    fn refresh_hits_cache_until_metrics_mutate() {
        let (exp, procs) = fig1_experiment();
        let mut view = CallersView::build(&exp, StorageKind::Dense);
        let (h0, m0) = view.cache_stats();
        assert_eq!(h0, 0);
        assert_eq!(m0, procs.len() as u64, "one miss per top-level entry");

        // Same generation: a refresh is pure cache hits.
        view.refresh(&exp);
        let (h1, m1) = view.cache_stats();
        assert_eq!(m1, m0, "no new misses");
        assert_eq!(h1, procs.len() as u64);

        // Mutate the raw metrics: the generation key changes, so the next
        // refresh recomputes every top-level aggregate.
        let mut exp = exp;
        let g_root = view
            .tree
            .roots()
            .into_iter()
            .find(|&r| view.tree.label(r, &exp.cct.names) == "g")
            .unwrap();
        let before = value(&view, g_root, 0);
        // Node 12 is s_g3, a statement under the exposed g3 activation.
        exp.raw.add_cost(MetricId(0), NodeId(12), 2.0);
        view.refresh(&exp);
        let (_, m2) = view.cache_stats();
        assert_eq!(m2, m1 + procs.len() as u64, "every entry recomputed");
        let after = value(&view, g_root, 0);
        assert_eq!(after, before + 2.0, "g's exposed inclusive grew");
    }

    #[test]
    fn h_chain_carries_constant_cost() {
        let (exp, _) = fig1_experiment();
        let mut view = CallersView::build(&exp, StorageKind::Dense);
        let ha = find_root(&view, &exp, "h");
        // h ← g ← g ← f ← m, all (4,4)...(4,4) with exclusive 4 only at h.
        let mut cur = ha;
        let expected_callers = ["g", "g", "f", "m"];
        for name in expected_callers {
            let kids = view.children_of(&exp, cur);
            assert_eq!(kids.len(), 1);
            assert_eq!(view.tree.label(kids[0], &exp.cct.names), name);
            assert_eq!(value(&view, kids[0], 0), 4.0);
            cur = kids[0];
        }
        assert!(view.children_of(&exp, cur).is_empty());
    }
}
