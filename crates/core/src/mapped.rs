//! Zero-copy column and topology views over a byte image.
//!
//! Format v2.1 writes fixed-width metric columns and CCT topology arrays
//! 8-byte-aligned inside the database file, so a reader can *borrow* the
//! `u32`/`f64` arrays straight out of the (possibly memory-mapped) file
//! image instead of varint-decoding them into fresh allocations. This
//! module is the core-side half of that contract: [`ByteImage`] is the
//! refcounted image handle, [`MappedCol`] a validated window onto one
//! column's parallel key/value arrays, and [`ColumnData`] the
//! owned-or-borrowed payload a [`crate::metrics::ColumnSource`] yields.
//!
//! ## Safety argument
//!
//! All borrowing goes through [`MappedCol::new`] /
//! [`MappedTopology::new`], which validate once at construction:
//!
//! * every window lies **in bounds** of the image;
//! * `u32` windows start at 4-aligned offsets, `f64` windows at
//!   8-aligned offsets, *and* the image base pointer itself is 8-aligned
//!   (mmap returns page-aligned memory; owned images use an
//!   8-aligned buffer) — re-checked via `slice::align_to` on access;
//! * the host is little-endian (the on-disk byte order); big-endian
//!   hosts get an `Err` and the caller falls back to the owned decode
//!   path.
//!
//! `u32` and `f64` accept any bit pattern, so reinterpreting validated,
//! aligned, immutable bytes is sound. The image is immutable for its
//! lifetime: owned buffers are never written after construction, and
//! mapped files use private (copy-on-write) mappings.

use crate::ids::NodeId;
use crate::names::SourceLoc;
use crate::scope::ScopeKind;
use std::sync::Arc;

/// A cheaply clonable, immutable byte image — the bytes of one database
/// file, either owned (read into an aligned buffer) or memory-mapped.
///
/// The concrete storage lives behind `Arc<dyn AsRef<[u8]>>` so that
/// `callpath-core` needs no knowledge of files or mmap: the expdb crate
/// hands in whatever image type it opened.
#[derive(Clone)]
pub struct ByteImage {
    data: Arc<dyn AsRef<[u8]> + Send + Sync>,
}

impl ByteImage {
    /// Wrap an image. The underlying storage must be immutable and
    /// return the same slice on every `as_ref` call.
    pub fn new(data: Arc<dyn AsRef<[u8]> + Send + Sync>) -> Self {
        ByteImage { data }
    }

    /// The full image contents.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        self.data.as_ref().as_ref()
    }

    /// Image length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True when the image is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }
}

impl std::fmt::Debug for ByteImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByteImage")
            .field("len", &self.len())
            .finish()
    }
}

/// Reinterpret a validated byte window as a typed slice.
///
/// Alignment was checked at construction; `align_to` re-derives it from
/// the actual pointer, so a misaligned image (impossible through the
/// public constructors) panics instead of returning garbage.
macro_rules! typed_window {
    ($image:expr, $off:expr, $count:expr, $ty:ty) => {{
        let bytes = &$image.bytes()[$off..$off + $count * std::mem::size_of::<$ty>()];
        // SAFETY: any bit pattern is a valid $ty (u32/f64), the slice is
        // in bounds, and the window was alignment-checked at construction.
        let (pre, mid, post) = unsafe { bytes.align_to::<$ty>() };
        assert!(
            pre.is_empty() && post.is_empty(),
            "image window lost its alignment"
        );
        mid
    }};
}

/// Fail construction on hosts whose native byte order differs from the
/// on-disk little-endian layout; callers fall back to owned decoding.
fn require_little_endian() -> Result<(), String> {
    if cfg!(target_endian = "little") {
        Ok(())
    } else {
        Err("big-endian host: zero-copy borrow unavailable".into())
    }
}

/// Check one typed window: in bounds and naturally aligned.
fn check_window(image: &ByteImage, off: usize, count: usize, elem: usize) -> Result<(), String> {
    let len = count
        .checked_mul(elem)
        .ok_or_else(|| "mapped window overflows".to_string())?;
    let end = off
        .checked_add(len)
        .ok_or_else(|| "mapped window overflows".to_string())?;
    if end > image.len() {
        return Err(format!(
            "mapped window [{off}..{end}] out of bounds (image {} bytes)",
            image.len()
        ));
    }
    if !off.is_multiple_of(elem) || !(image.bytes().as_ptr() as usize).is_multiple_of(elem.max(1)) {
        return Err(format!(
            "mapped window at {off} misaligned for {elem}-byte elements"
        ));
    }
    Ok(())
}

/// A validated zero-copy view of one sparse metric column: `nnz` node
/// ids (`u32`, strictly ascending) and `nnz` values (`f64`) borrowed
/// from a [`ByteImage`].
#[derive(Debug, Clone)]
pub struct MappedCol {
    image: ByteImage,
    keys_off: usize,
    vals_off: usize,
    nnz: usize,
}

impl MappedCol {
    /// Validate and wrap a column window. `keys_off` must be 4-aligned,
    /// `vals_off` 8-aligned, both windows in bounds, and the host
    /// little-endian; otherwise the caller should decode the column
    /// into owned storage instead.
    pub fn new(
        image: ByteImage,
        keys_off: usize,
        vals_off: usize,
        nnz: usize,
    ) -> Result<Self, String> {
        require_little_endian()?;
        check_window(&image, keys_off, nnz, 4)?;
        check_window(&image, vals_off, nnz, 8)?;
        Ok(MappedCol {
            image,
            keys_off,
            vals_off,
            nnz,
        })
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The sorted node ids, borrowed from the image.
    #[inline]
    pub fn keys(&self) -> &[u32] {
        typed_window!(self.image, self.keys_off, self.nnz, u32)
    }

    /// The values parallel to [`MappedCol::keys`], borrowed from the image.
    #[inline]
    pub fn vals(&self) -> &[f64] {
        typed_window!(self.image, self.vals_off, self.nnz, f64)
    }

    /// Value at `node` by binary search (0.0 when absent).
    #[inline]
    pub fn get(&self, node: u32) -> f64 {
        match self.keys().binary_search(&node) {
            Ok(i) => self.vals()[i],
            Err(_) => 0.0,
        }
    }

    /// Copy out the entries — the escape hatch taken before any mutation
    /// (copy-on-write) and by code paths that need owned data.
    pub fn entries(&self) -> Vec<(u32, f64)> {
        self.keys()
            .iter()
            .copied()
            .zip(self.vals().iter().copied())
            .collect()
    }
}

/// What a [`crate::metrics::ColumnSource`] hands back for one column:
/// either freshly decoded owned entries (the varint fallback path) or a
/// borrowed window onto the file image (the v2.1 fixed-width path).
#[derive(Debug)]
pub enum ColumnData {
    /// Decoded `(node, value)` entries, sorted ascending by node.
    Owned(Vec<(u32, f64)>),
    /// A zero-copy window onto the file image.
    Mapped(MappedCol),
}

/// Scope-kind tag values used by the v2.1 topology encoding. The writer
/// (`callpath-expdb`) emits them; [`MappedTopology`] decodes them.
pub mod tags {
    /// The synthetic experiment root; exactly node 0, nowhere else.
    pub const ROOT: u8 = 0;
    /// Procedure frame with a call site.
    pub const FRAME: u8 = 1;
    /// Top-level procedure frame (no call site).
    pub const FRAME_TOP: u8 = 2;
    /// Inlined procedure body.
    pub const INLINED: u8 = 3;
    /// Loop scope.
    pub const LOOP: u8 = 4;
    /// Statement scope.
    pub const STMT: u8 = 5;
    /// One past the largest valid tag.
    pub const N_TAGS: u8 = 6;
    /// `u32` payload fields per node (fixed-width; unused fields are 0).
    pub const N_FIELDS: usize = 6;
}

/// Sentinel for "no node" in the link arrays (same as the owned arena).
pub const LINK_NONE: u32 = u32::MAX;

/// A validated zero-copy view of the v2.1 CCT topology: parallel
/// `parent` / `first_child` / `next_sibling` `u32` arrays, a `u8` tag
/// per node and six `u32` payload fields per node, all borrowed from a
/// [`ByteImage`].
///
/// Construction performs the cheap structural checks (bounds, alignment,
/// every tag valid, root tag placement, name tables non-empty for the
/// tag kinds present). Link values out of range read as "none" and
/// traversals carry step budgets, so even an adversarial image can only
/// produce a wrong tree, never an out-of-bounds access or a hang; full
/// bit-level integrity is the eager reader's / `verify_container`'s job.
#[derive(Debug, Clone)]
pub struct MappedTopology {
    image: ByteImage,
    n: usize,
    parent_off: usize,
    first_child_off: usize,
    next_sibling_off: usize,
    tags_off: usize,
    fields_off: usize,
    n_procs: u32,
    n_files: u32,
    n_modules: u32,
}

impl MappedTopology {
    /// Validate and wrap a topology window. `n` is the node count
    /// (including the root); the three link offsets and the field
    /// offset must be 4-aligned windows of `n` (resp. `6n`) `u32`s,
    /// `tags_off` an `n`-byte window. `n_procs`/`n_files`/`n_modules`
    /// are the name-table sizes used to clamp decoded name ids.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        image: ByteImage,
        n: usize,
        parent_off: usize,
        first_child_off: usize,
        next_sibling_off: usize,
        tags_off: usize,
        fields_off: usize,
        n_procs: u32,
        n_files: u32,
        n_modules: u32,
    ) -> Result<Self, String> {
        require_little_endian()?;
        if n == 0 || n > LINK_NONE as usize {
            return Err(format!("topology node count {n} out of range"));
        }
        check_window(&image, parent_off, n, 4)?;
        check_window(&image, first_child_off, n, 4)?;
        check_window(&image, next_sibling_off, n, 4)?;
        check_window(&image, tags_off, n, 1)?;
        check_window(&image, fields_off, n * tags::N_FIELDS, 4)?;
        let topo = MappedTopology {
            image,
            n,
            parent_off,
            first_child_off,
            next_sibling_off,
            tags_off,
            fields_off,
            n_procs,
            n_files,
            n_modules,
        };
        topo.validate_tags()?;
        Ok(topo)
    }

    /// One pass over the tag byte array: every tag valid, the root tag
    /// exactly at node 0, and the name tables non-empty for whichever
    /// scope kinds actually occur (so name-id clamping always has a
    /// valid id to clamp to).
    fn validate_tags(&self) -> Result<(), String> {
        let tags = self.tags();
        if tags[0] != tags::ROOT {
            return Err("topology node 0 is not the root".into());
        }
        let mut seen = [false; tags::N_TAGS as usize];
        for (i, &t) in tags.iter().enumerate().skip(1) {
            if t == tags::ROOT || t >= tags::N_TAGS {
                return Err(format!("node {i}: invalid scope tag {t}"));
            }
            seen[t as usize] = true;
        }
        let needs_proc = seen[tags::FRAME as usize]
            || seen[tags::FRAME_TOP as usize]
            || seen[tags::INLINED as usize];
        let needs_module = seen[tags::FRAME as usize] || seen[tags::FRAME_TOP as usize];
        let needs_file = seen[1..].iter().any(|&s| s);
        if needs_proc && self.n_procs == 0 {
            return Err("frame scopes present but procedure table empty".into());
        }
        if needs_module && self.n_modules == 0 {
            return Err("frame scopes present but module table empty".into());
        }
        if needs_file && self.n_files == 0 {
            return Err("scopes present but file table empty".into());
        }
        Ok(())
    }

    /// Node count, including the root.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (a topology holds at least the root).
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn tags(&self) -> &[u8] {
        &self.image.bytes()[self.tags_off..self.tags_off + self.n]
    }

    #[inline]
    fn fields(&self) -> &[u32] {
        typed_window!(self.image, self.fields_off, self.n * tags::N_FIELDS, u32)
    }

    /// Read a link array entry, mapping out-of-range values to
    /// [`LINK_NONE`] so corrupt links can never index out of bounds.
    #[inline]
    fn link(&self, off: usize, i: usize) -> u32 {
        let v = typed_window!(self.image, off, self.n, u32)[i];
        if (v as usize) < self.n {
            v
        } else {
            LINK_NONE
        }
    }

    /// Parent link of node `i` ([`LINK_NONE`] for the root).
    #[inline]
    pub fn parent(&self, i: usize) -> u32 {
        self.link(self.parent_off, i)
    }

    /// First-child link of node `i`.
    #[inline]
    pub fn first_child(&self, i: usize) -> u32 {
        self.link(self.first_child_off, i)
    }

    /// Next-sibling link of node `i`.
    #[inline]
    pub fn next_sibling(&self, i: usize) -> u32 {
        self.link(self.next_sibling_off, i)
    }

    /// Clamp a decoded name id into `[0, n)`; validation guaranteed
    /// `n > 0` for every table a present tag kind references.
    #[inline]
    fn clamp(id: u32, n: u32) -> u32 {
        if id < n {
            id
        } else {
            0
        }
    }

    /// Decode the scope kind of node `i`. Name ids are clamped to the
    /// captured table sizes, so a corrupt field can mislabel a scope
    /// but never panic downstream name lookups.
    pub fn kind(&self, i: usize) -> ScopeKind {
        use crate::ids::{FileId, LoadModuleId, ProcId};
        let f = &self.fields()[i * tags::N_FIELDS..(i + 1) * tags::N_FIELDS];
        let loc =
            |file: u32, line: u32| SourceLoc::new(FileId(Self::clamp(file, self.n_files)), line);
        match self.tags()[i] {
            tags::ROOT => ScopeKind::Root,
            tags::FRAME => ScopeKind::Frame {
                proc: ProcId(Self::clamp(f[0], self.n_procs)),
                module: LoadModuleId(Self::clamp(f[1], self.n_modules)),
                def: loc(f[2], f[3]),
                call_site: Some(loc(f[4], f[5])),
            },
            tags::FRAME_TOP => ScopeKind::Frame {
                proc: ProcId(Self::clamp(f[0], self.n_procs)),
                module: LoadModuleId(Self::clamp(f[1], self.n_modules)),
                def: loc(f[2], f[3]),
                call_site: None,
            },
            tags::INLINED => ScopeKind::InlinedFrame {
                proc: ProcId(Self::clamp(f[0], self.n_procs)),
                def: loc(f[1], f[2]),
                call_site: loc(f[3], f[4]),
            },
            tags::LOOP => ScopeKind::Loop {
                header: loc(f[0], f[1]),
            },
            // validate_tags let only STMT through here.
            _ => ScopeKind::Stmt {
                loc: loc(f[0], f[1]),
            },
        }
    }
}

/// Encode a scope kind into its v2.1 `(tag, fields)` representation —
/// the exact inverse of [`MappedTopology::kind`]. Lives here, next to
/// the decoder, so the two halves of the contract cannot drift apart;
/// the expdb writer calls this.
pub fn encode_kind(kind: &ScopeKind) -> (u8, [u32; tags::N_FIELDS]) {
    match *kind {
        ScopeKind::Root => (tags::ROOT, [0; 6]),
        ScopeKind::Frame {
            proc,
            module,
            def,
            call_site: Some(cs),
        } => (
            tags::FRAME,
            [proc.0, module.0, def.file.0, def.line, cs.file.0, cs.line],
        ),
        ScopeKind::Frame {
            proc,
            module,
            def,
            call_site: None,
        } => (
            tags::FRAME_TOP,
            [proc.0, module.0, def.file.0, def.line, 0, 0],
        ),
        ScopeKind::InlinedFrame {
            proc,
            def,
            call_site,
        } => (
            tags::INLINED,
            [
                proc.0,
                def.file.0,
                def.line,
                call_site.file.0,
                call_site.line,
                0,
            ],
        ),
        ScopeKind::Loop { header } => (tags::LOOP, [header.file.0, header.line, 0, 0, 0, 0]),
        ScopeKind::Stmt { loc } => (tags::STMT, [loc.file.0, loc.line, 0, 0, 0, 0]),
    }
}

/// Node ids in a mapped topology (convenience for tests).
pub fn all_nodes(topo: &MappedTopology) -> impl Iterator<Item = NodeId> + '_ {
    (0..topo.len() as u32).map(NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_of(bytes: Vec<u8>) -> ByteImage {
        // Copy into an 8-aligned buffer the way expdb's FileImage does.
        let words = bytes.len().div_ceil(8);
        let mut buf = vec![0u64; words];
        // SAFETY: u64 buffer reinterpreted as bytes; lengths match.
        let dst =
            unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, bytes.len()) };
        dst.copy_from_slice(&bytes);
        struct Aligned(Vec<u64>, usize);
        impl AsRef<[u8]> for Aligned {
            fn as_ref(&self) -> &[u8] {
                // SAFETY: same reinterpretation as above.
                unsafe { std::slice::from_raw_parts(self.0.as_ptr() as *const u8, self.1) }
            }
        }
        ByteImage::new(Arc::new(Aligned(buf, bytes.len())))
    }

    #[test]
    fn mapped_col_reads_back_entries() {
        let mut bytes = Vec::new();
        for k in [3u32, 9, 40] {
            bytes.extend_from_slice(&k.to_le_bytes());
        }
        bytes.extend_from_slice(&[0u8; 4]); // pad keys (12 B) to 8
        for v in [1.5f64, -2.0, 7.25] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let img = image_of(bytes);
        let col = MappedCol::new(img, 0, 16, 3).unwrap();
        assert_eq!(col.keys(), &[3, 9, 40]);
        assert_eq!(col.vals(), &[1.5, -2.0, 7.25]);
        assert_eq!(col.get(9), -2.0);
        assert_eq!(col.get(10), 0.0);
        assert_eq!(col.entries(), vec![(3, 1.5), (9, -2.0), (40, 7.25)]);
    }

    #[test]
    fn mapped_col_rejects_bad_windows() {
        let img = image_of(vec![0u8; 32]);
        assert!(MappedCol::new(img.clone(), 0, 8, 100).is_err(), "oob");
        assert!(
            MappedCol::new(img.clone(), 2, 8, 1).is_err(),
            "keys misaligned"
        );
        assert!(MappedCol::new(img, 0, 4, 1).is_err(), "vals misaligned");
    }

    #[test]
    fn encode_decode_kind_roundtrip() {
        use crate::ids::{FileId, LoadModuleId, ProcId};
        let kinds = [
            ScopeKind::Root,
            ScopeKind::Frame {
                proc: ProcId(2),
                module: LoadModuleId(1),
                def: SourceLoc::new(FileId(3), 10),
                call_site: Some(SourceLoc::new(FileId(0), 4)),
            },
            ScopeKind::Frame {
                proc: ProcId(0),
                module: LoadModuleId(0),
                def: SourceLoc::new(FileId(1), 1),
                call_site: None,
            },
            ScopeKind::InlinedFrame {
                proc: ProcId(1),
                def: SourceLoc::new(FileId(2), 7),
                call_site: SourceLoc::new(FileId(2), 30),
            },
            ScopeKind::Loop {
                header: SourceLoc::new(FileId(1), 8),
            },
            ScopeKind::Stmt {
                loc: SourceLoc::new(FileId(1), 9),
            },
        ];
        // Build a topology image: one node per kind, all under the root.
        let n = kinds.len();
        let mut parent = vec![LINK_NONE; n];
        let mut first_child = vec![LINK_NONE; n];
        let mut next_sibling = vec![LINK_NONE; n];
        for i in 1..n {
            parent[i] = 0;
            if i + 1 < n {
                next_sibling[i] = i as u32 + 1;
            }
        }
        first_child[0] = 1;
        let mut bytes = Vec::new();
        for arr in [&parent, &first_child, &next_sibling] {
            for &v in arr.iter() {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        let tags_off = bytes.len();
        let mut tags_bytes = Vec::new();
        let mut fields_bytes = Vec::new();
        for k in &kinds {
            let (t, f) = encode_kind(k);
            tags_bytes.push(t);
            for v in f {
                fields_bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        bytes.extend_from_slice(&tags_bytes);
        while bytes.len() % 8 != 0 {
            bytes.push(0);
        }
        let fields_off = bytes.len();
        bytes.extend_from_slice(&fields_bytes);
        let topo = MappedTopology::new(
            image_of(bytes),
            n,
            0,
            4 * n,
            8 * n,
            tags_off,
            fields_off,
            4,
            4,
            4,
        )
        .unwrap();
        for (i, k) in kinds.iter().enumerate() {
            assert_eq!(topo.kind(i), *k, "node {i}");
        }
        assert_eq!(topo.parent(1), 0);
        assert_eq!(topo.first_child(0), 1);
        assert_eq!(topo.next_sibling(1), 2);
        assert_eq!(topo.next_sibling(n - 1), LINK_NONE);
    }
}
