//! Arena tree for derived presentation views (Callers View, Flat View).
//!
//! Unlike the canonical CCT, whose nodes are *instances* (one node per
//! calling context), a view node *aggregates* a set of CCT instances; the
//! set is kept on the node so that lazy expansion and recursion-correct
//! (set-exposed) metric aggregation can be computed on demand.

use crate::ids::{FileId, LoadModuleId, NodeId, ProcId, ViewNodeId};
use crate::metrics::{ColumnSet, StorageKind};
use crate::names::{NameTable, SourceLoc};
use serde::{Deserialize, Serialize};

const NONE: u32 = u32::MAX;

/// What a view node presents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViewScope {
    /// Callers View top-level entry: a procedure aggregated over all its
    /// calling contexts.
    ProcTop {
        /// The aggregated procedure.
        proc: ProcId,
    },
    /// Callers View interior node: a caller one step further up the chain.
    /// `call_site` is where the *callee one level down* was called.
    Caller {
        /// The caller procedure at this level of the chain.
        proc: ProcId,
        /// Call site of the activation one level below.
        call_site: Option<SourceLoc>,
    },
    /// Flat View containers.
    Module {
        /// The load module.
        module: LoadModuleId,
    },
    /// Flat View file container.
    File {
        /// The source file.
        file: FileId,
    },
    /// Flat View procedure (all activations aggregated).
    Procedure {
        /// The procedure.
        proc: ProcId,
    },
    /// Flat View static structure inside a procedure.
    Loop {
        /// Loop header location.
        header: SourceLoc,
    },
    /// A statement within a procedure's static structure.
    Stmt {
        /// Statement location.
        loc: SourceLoc,
    },
    /// An inlined procedure body within the host's static structure.
    Inlined {
        /// The inlined procedure.
        callee: ProcId,
        /// Where it was inlined.
        call_site: SourceLoc,
    },
    /// Flat View dynamic node: a call site within a procedure, fused with
    /// its callee (Fig. 2c's `gy`, `gz`, `gv`, `fy`, `hy`).
    CallSite {
        /// The procedure called from this site.
        callee: ProcId,
        /// The call-site location in the host procedure.
        loc: Option<SourceLoc>,
    },
}

impl ViewScope {
    /// Human-readable label (procedure/file/module name, `loop at …`, …).
    pub fn label(&self, names: &NameTable) -> String {
        let mut s = String::new();
        self.write_label(names, &mut s);
        s
    }

    /// [`ViewScope::label`] writing into an existing buffer (the
    /// renderer's hot path reuses one buffer across rows).
    pub fn write_label(&self, names: &NameTable, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            ViewScope::ProcTop { proc } | ViewScope::Procedure { proc } => {
                out.push_str(names.proc_name(*proc))
            }
            ViewScope::Caller { proc, .. } => out.push_str(names.proc_name(*proc)),
            ViewScope::Module { module } => out.push_str(names.module_name(*module)),
            ViewScope::File { file } => out.push_str(names.file_name(*file)),
            ViewScope::Loop { header } => {
                let _ = write!(
                    out,
                    "loop at {}:{}",
                    names.file_name(header.file),
                    header.line
                );
            }
            ViewScope::Stmt { loc } => {
                let _ = write!(out, "{}:{}", names.file_name(loc.file), loc.line);
            }
            ViewScope::Inlined { callee, .. } => {
                out.push_str("inlined from ");
                out.push_str(names.proc_name(*callee));
            }
            ViewScope::CallSite { callee, .. } => out.push_str(names.proc_name(*callee)),
        }
    }

    /// Should the navigation pane draw the call-site arrow icon?
    pub fn is_call(&self) -> bool {
        matches!(
            self,
            ViewScope::CallSite { .. } | ViewScope::Caller { .. }
        )
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ViewNode {
    scope: ViewScope,
    parent: u32,
    first_child: u32,
    last_child: u32,
    next_sibling: u32,
    /// CCT instances this node aggregates.
    instances: Vec<NodeId>,
    /// Lazy views: whether children have been materialized yet.
    expanded: bool,
}

/// A forest of view nodes plus their metric columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ViewTree {
    nodes: Vec<ViewNode>,
    roots: Vec<u32>,
    /// Metric columns indexed by view node id.
    pub columns: ColumnSet,
}

impl ViewTree {
    /// An empty forest whose columns use the given storage flavor.
    pub fn new(storage: StorageKind) -> Self {
        ViewTree {
            nodes: Vec::new(),
            roots: Vec::new(),
            columns: ColumnSet::new(storage),
        }
    }

    /// Number of materialized view nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been materialized.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Top-level nodes, in creation order.
    pub fn roots(&self) -> Vec<ViewNodeId> {
        self.roots.iter().map(|&r| ViewNodeId(r)).collect()
    }

    /// Append a new top-level node.
    pub fn add_root(&mut self, scope: ViewScope) -> ViewNodeId {
        let id = u32::try_from(self.nodes.len()).expect("view tree overflow");
        self.nodes.push(ViewNode {
            scope,
            parent: NONE,
            first_child: NONE,
            last_child: NONE,
            next_sibling: NONE,
            instances: Vec::new(),
            expanded: false,
        });
        self.roots.push(id);
        ViewNodeId(id)
    }

    /// Append a child under `parent` (insertion order preserved).
    pub fn add_child(&mut self, parent: ViewNodeId, scope: ViewScope) -> ViewNodeId {
        let id = u32::try_from(self.nodes.len()).expect("view tree overflow");
        self.nodes.push(ViewNode {
            scope,
            parent: parent.0,
            first_child: NONE,
            last_child: NONE,
            next_sibling: NONE,
            instances: Vec::new(),
            expanded: false,
        });
        let p = &mut self.nodes[parent.index()];
        if p.first_child == NONE {
            p.first_child = id;
        } else {
            let last = p.last_child;
            self.nodes[last as usize].next_sibling = id;
        }
        self.nodes[parent.index()].last_child = id;
        ViewNodeId(id)
    }

    /// Find a child of `parent` with this exact scope, or create it.
    pub fn find_or_add_child(&mut self, parent: ViewNodeId, scope: ViewScope) -> ViewNodeId {
        let mut cur = self.nodes[parent.index()].first_child;
        while cur != NONE {
            if self.nodes[cur as usize].scope == scope {
                return ViewNodeId(cur);
            }
            cur = self.nodes[cur as usize].next_sibling;
        }
        self.add_child(parent, scope)
    }

    /// Find a root with this exact scope, or create it.
    pub fn find_or_add_root(&mut self, scope: ViewScope) -> ViewNodeId {
        if let Some(&r) = self
            .roots
            .iter()
            .find(|&&r| self.nodes[r as usize].scope == scope)
        {
            return ViewNodeId(r);
        }
        self.add_root(scope)
    }

    /// What node `n` presents.
    pub fn scope(&self, n: ViewNodeId) -> &ViewScope {
        &self.nodes[n.index()].scope
    }

    /// Parent of `n` (`None` for roots).
    pub fn parent(&self, n: ViewNodeId) -> Option<ViewNodeId> {
        let p = self.nodes[n.index()].parent;
        (p != NONE).then_some(ViewNodeId(p))
    }

    /// Children of `n`, in insertion order.
    pub fn children(&self, n: ViewNodeId) -> Vec<ViewNodeId> {
        let mut out = Vec::new();
        let mut cur = self.nodes[n.index()].first_child;
        while cur != NONE {
            out.push(ViewNodeId(cur));
            cur = self.nodes[cur as usize].next_sibling;
        }
        out
    }

    /// True when `n` has at least one materialized child.
    pub fn has_children(&self, n: ViewNodeId) -> bool {
        self.nodes[n.index()].first_child != NONE
    }

    /// Record that `n` aggregates the CCT instance `inst`.
    pub fn push_instance(&mut self, n: ViewNodeId, inst: NodeId) {
        self.nodes[n.index()].instances.push(inst);
    }

    /// The CCT instances node `n` aggregates.
    pub fn instances(&self, n: ViewNodeId) -> &[NodeId] {
        &self.nodes[n.index()].instances
    }

    /// Lazy views: whether `n`'s children have been materialized.
    pub fn is_expanded(&self, n: ViewNodeId) -> bool {
        self.nodes[n.index()].expanded
    }

    /// Mark `n`'s children as materialized.
    pub fn mark_expanded(&mut self, n: ViewNodeId) {
        self.nodes[n.index()].expanded = true;
    }

    /// Human-readable label of `n`.
    pub fn label(&self, n: ViewNodeId, names: &NameTable) -> String {
        self.nodes[n.index()].scope.label(names)
    }

    /// Write node `n`'s label into an existing buffer (allocation-free
    /// when the label is an interned name).
    pub fn write_label(&self, n: ViewNodeId, names: &NameTable, out: &mut String) {
        self.nodes[n.index()].scope.write_label(names, out)
    }

    /// Approximate heap footprint, for the lazy-vs-eager ablation bench.
    pub fn heap_bytes(&self) -> usize {
        let nodes = self.nodes.capacity() * std::mem::size_of::<ViewNode>();
        let instances: usize = self
            .nodes
            .iter()
            .map(|n| n.instances.capacity() * std::mem::size_of::<NodeId>())
            .sum();
        nodes + instances + self.columns.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_roots_and_children() {
        let mut t = ViewTree::new(StorageKind::Dense);
        let a = t.add_root(ViewScope::ProcTop { proc: ProcId(0) });
        let b = t.add_root(ViewScope::ProcTop { proc: ProcId(1) });
        let c = t.add_child(
            a,
            ViewScope::Caller {
                proc: ProcId(2),
                call_site: None,
            },
        );
        assert_eq!(t.roots(), vec![a, b]);
        assert_eq!(t.children(a), vec![c]);
        assert_eq!(t.parent(c), Some(a));
        assert_eq!(t.parent(a), None);
        assert!(t.has_children(a));
        assert!(!t.has_children(b));
    }

    #[test]
    fn find_or_add_deduplicates_children_and_roots() {
        let mut t = ViewTree::new(StorageKind::Dense);
        let r1 = t.find_or_add_root(ViewScope::Module {
            module: LoadModuleId(0),
        });
        let r2 = t.find_or_add_root(ViewScope::Module {
            module: LoadModuleId(0),
        });
        assert_eq!(r1, r2);
        let c1 = t.find_or_add_child(r1, ViewScope::File { file: FileId(3) });
        let c2 = t.find_or_add_child(r1, ViewScope::File { file: FileId(3) });
        assert_eq!(c1, c2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn instances_accumulate() {
        let mut t = ViewTree::new(StorageKind::Sparse);
        let a = t.add_root(ViewScope::Procedure { proc: ProcId(0) });
        t.push_instance(a, NodeId(5));
        t.push_instance(a, NodeId(9));
        assert_eq!(t.instances(a), &[NodeId(5), NodeId(9)]);
    }

    #[test]
    fn labels_and_call_icons() {
        let mut names = NameTable::new();
        let g = names.proc("g");
        let f = names.file("file2.c");
        let mut t = ViewTree::new(StorageKind::Dense);
        let top = t.add_root(ViewScope::ProcTop { proc: g });
        assert_eq!(t.label(top, &names), "g");
        assert!(!t.scope(top).is_call());
        let cs = t.add_child(
            top,
            ViewScope::CallSite {
                callee: g,
                loc: Some(SourceLoc::new(f, 3)),
            },
        );
        assert!(t.scope(cs).is_call());
        let lp = t.add_child(top, ViewScope::Loop {
            header: SourceLoc::new(f, 8),
        });
        assert_eq!(t.label(lp, &names), "loop at file2.c:8");
    }
}
