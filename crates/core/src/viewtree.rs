//! Arena tree for derived presentation views (Callers View, Flat View).
//!
//! Unlike the canonical CCT, whose nodes are *instances* (one node per
//! calling context), a view node *aggregates* a set of CCT instances; the
//! set is kept on the node so that lazy expansion and recursion-correct
//! (set-exposed) metric aggregation can be computed on demand.

use crate::ids::{ColumnId, FileId, LoadModuleId, NodeId, ProcId, ViewNodeId};
use crate::metrics::{ColumnSet, StorageKind};
use crate::names::{NameTable, SourceLoc};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

const NONE: u32 = u32::MAX;

/// What a view node presents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViewScope {
    /// Callers View top-level entry: a procedure aggregated over all its
    /// calling contexts.
    ProcTop {
        /// The aggregated procedure.
        proc: ProcId,
    },
    /// Callers View interior node: a caller one step further up the chain.
    /// `call_site` is where the *callee one level down* was called.
    Caller {
        /// The caller procedure at this level of the chain.
        proc: ProcId,
        /// Call site of the activation one level below.
        call_site: Option<SourceLoc>,
    },
    /// Flat View containers.
    Module {
        /// The load module.
        module: LoadModuleId,
    },
    /// Flat View file container.
    File {
        /// The source file.
        file: FileId,
    },
    /// Flat View procedure (all activations aggregated).
    Procedure {
        /// The procedure.
        proc: ProcId,
    },
    /// Flat View static structure inside a procedure.
    Loop {
        /// Loop header location.
        header: SourceLoc,
    },
    /// A statement within a procedure's static structure.
    Stmt {
        /// Statement location.
        loc: SourceLoc,
    },
    /// An inlined procedure body within the host's static structure.
    Inlined {
        /// The inlined procedure.
        callee: ProcId,
        /// Where it was inlined.
        call_site: SourceLoc,
    },
    /// Flat View dynamic node: a call site within a procedure, fused with
    /// its callee (Fig. 2c's `gy`, `gz`, `gv`, `fy`, `hy`).
    CallSite {
        /// The procedure called from this site.
        callee: ProcId,
        /// The call-site location in the host procedure.
        loc: Option<SourceLoc>,
    },
}

impl ViewScope {
    /// Human-readable label (procedure/file/module name, `loop at …`, …).
    pub fn label(&self, names: &NameTable) -> String {
        let mut s = String::new();
        self.write_label(names, &mut s);
        s
    }

    /// [`ViewScope::label`] writing into an existing buffer (the
    /// renderer's hot path reuses one buffer across rows).
    pub fn write_label(&self, names: &NameTable, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            ViewScope::ProcTop { proc } | ViewScope::Procedure { proc } => {
                out.push_str(names.proc_name(*proc))
            }
            ViewScope::Caller { proc, .. } => out.push_str(names.proc_name(*proc)),
            ViewScope::Module { module } => out.push_str(names.module_name(*module)),
            ViewScope::File { file } => out.push_str(names.file_name(*file)),
            ViewScope::Loop { header } => {
                let _ = write!(
                    out,
                    "loop at {}:{}",
                    names.file_name(header.file),
                    header.line
                );
            }
            ViewScope::Stmt { loc } => {
                let _ = write!(out, "{}:{}", names.file_name(loc.file), loc.line);
            }
            ViewScope::Inlined { callee, .. } => {
                out.push_str("inlined from ");
                out.push_str(names.proc_name(*callee));
            }
            ViewScope::CallSite { callee, .. } => out.push_str(names.proc_name(*callee)),
        }
    }

    /// Should the navigation pane draw the call-site arrow icon?
    pub fn is_call(&self) -> bool {
        matches!(self, ViewScope::CallSite { .. } | ViewScope::Caller { .. })
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ViewNode {
    scope: ViewScope,
    parent: u32,
    first_child: u32,
    last_child: u32,
    next_sibling: u32,
    /// CCT instances this node aggregates.
    instances: Vec<NodeId>,
    /// Lazy views: whether children have been materialized yet.
    expanded: bool,
}

/// A forest of view nodes plus their metric columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ViewTree {
    nodes: Vec<ViewNode>,
    roots: Vec<u32>,
    /// Metric columns indexed by view node id.
    pub columns: ColumnSet,
    /// Structural mutation counter (node additions). See
    /// [`ViewTree::generation`].
    #[serde(default)]
    structure_generation: u64,
}

impl ViewTree {
    /// An empty forest whose columns use the given storage flavor.
    pub fn new(storage: StorageKind) -> Self {
        ViewTree {
            nodes: Vec::new(),
            roots: Vec::new(),
            columns: ColumnSet::new(storage),
            structure_generation: 0,
        }
    }

    /// Generation stamp covering **both** structure (lazy expansion
    /// materializing children) and column values (metric fills, appended
    /// summary columns). Each component is monotone non-decreasing, so
    /// their sum is too: any mutation makes a previously observed stamp
    /// stale, which is exactly what [`SortCache`] needs.
    pub fn generation(&self) -> u64 {
        self.structure_generation + self.columns.generation()
    }

    /// Number of materialized view nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been materialized.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Top-level nodes, in creation order.
    pub fn roots(&self) -> Vec<ViewNodeId> {
        self.roots.iter().map(|&r| ViewNodeId(r)).collect()
    }

    /// Append a new top-level node.
    pub fn add_root(&mut self, scope: ViewScope) -> ViewNodeId {
        let id = u32::try_from(self.nodes.len()).expect("view tree overflow");
        self.nodes.push(ViewNode {
            scope,
            parent: NONE,
            first_child: NONE,
            last_child: NONE,
            next_sibling: NONE,
            instances: Vec::new(),
            expanded: false,
        });
        self.roots.push(id);
        self.structure_generation += 1;
        ViewNodeId(id)
    }

    /// Append a child under `parent` (insertion order preserved).
    pub fn add_child(&mut self, parent: ViewNodeId, scope: ViewScope) -> ViewNodeId {
        let id = u32::try_from(self.nodes.len()).expect("view tree overflow");
        self.nodes.push(ViewNode {
            scope,
            parent: parent.0,
            first_child: NONE,
            last_child: NONE,
            next_sibling: NONE,
            instances: Vec::new(),
            expanded: false,
        });
        let p = &mut self.nodes[parent.index()];
        if p.first_child == NONE {
            p.first_child = id;
        } else {
            let last = p.last_child;
            self.nodes[last as usize].next_sibling = id;
        }
        self.nodes[parent.index()].last_child = id;
        self.structure_generation += 1;
        ViewNodeId(id)
    }

    /// Find a child of `parent` with this exact scope, or create it.
    pub fn find_or_add_child(&mut self, parent: ViewNodeId, scope: ViewScope) -> ViewNodeId {
        let mut cur = self.nodes[parent.index()].first_child;
        while cur != NONE {
            if self.nodes[cur as usize].scope == scope {
                return ViewNodeId(cur);
            }
            cur = self.nodes[cur as usize].next_sibling;
        }
        self.add_child(parent, scope)
    }

    /// Find a root with this exact scope, or create it.
    pub fn find_or_add_root(&mut self, scope: ViewScope) -> ViewNodeId {
        if let Some(&r) = self
            .roots
            .iter()
            .find(|&&r| self.nodes[r as usize].scope == scope)
        {
            return ViewNodeId(r);
        }
        self.add_root(scope)
    }

    /// What node `n` presents.
    pub fn scope(&self, n: ViewNodeId) -> &ViewScope {
        &self.nodes[n.index()].scope
    }

    /// Parent of `n` (`None` for roots).
    pub fn parent(&self, n: ViewNodeId) -> Option<ViewNodeId> {
        let p = self.nodes[n.index()].parent;
        (p != NONE).then_some(ViewNodeId(p))
    }

    /// Children of `n`, in insertion order.
    pub fn children(&self, n: ViewNodeId) -> Vec<ViewNodeId> {
        let mut out = Vec::new();
        let mut cur = self.nodes[n.index()].first_child;
        while cur != NONE {
            out.push(ViewNodeId(cur));
            cur = self.nodes[cur as usize].next_sibling;
        }
        out
    }

    /// True when `n` has at least one materialized child.
    pub fn has_children(&self, n: ViewNodeId) -> bool {
        self.nodes[n.index()].first_child != NONE
    }

    /// Record that `n` aggregates the CCT instance `inst`.
    pub fn push_instance(&mut self, n: ViewNodeId, inst: NodeId) {
        self.nodes[n.index()].instances.push(inst);
    }

    /// The CCT instances node `n` aggregates.
    pub fn instances(&self, n: ViewNodeId) -> &[NodeId] {
        &self.nodes[n.index()].instances
    }

    /// Lazy views: whether `n`'s children have been materialized.
    pub fn is_expanded(&self, n: ViewNodeId) -> bool {
        self.nodes[n.index()].expanded
    }

    /// Mark `n`'s children as materialized.
    pub fn mark_expanded(&mut self, n: ViewNodeId) {
        self.nodes[n.index()].expanded = true;
    }

    /// Human-readable label of `n`.
    pub fn label(&self, n: ViewNodeId, names: &NameTable) -> String {
        self.nodes[n.index()].scope.label(names)
    }

    /// Write node `n`'s label into an existing buffer (allocation-free
    /// when the label is an interned name).
    pub fn write_label(&self, n: ViewNodeId, names: &NameTable, out: &mut String) {
        self.nodes[n.index()].scope.write_label(names, out)
    }

    /// Approximate heap footprint, for the lazy-vs-eager ablation bench.
    pub fn heap_bytes(&self) -> usize {
        let nodes = self.nodes.capacity() * std::mem::size_of::<ViewNode>();
        let instances: usize = self
            .nodes
            .iter()
            .map(|n| n.instances.capacity() * std::mem::size_of::<NodeId>())
            .sum();
        nodes + instances + self.columns.heap_bytes()
    }
}

/// Direction of a cached metric-column ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortDir {
    /// Largest value first (the navigation pane's default).
    Descending,
    /// Smallest value first.
    Ascending,
}

/// What a cached child ordering was sorted by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortKey {
    /// Ascending by node label.
    Name,
    /// By metric column value, ties broken ascending by label.
    Column {
        /// The view column sorted on.
        column: ColumnId,
        /// Sort direction.
        dir: SortDir,
    },
}

/// Slot namespace for top-level (root) orderings: node ids are `u32`, so
/// anything at or above `1 << 32` cannot collide with a per-parent slot.
/// Flat View adds the flatten level so each flattening depth caches its
/// own root ordering.
pub const TOP_SLOT_BASE: u64 = 1 << 32;

#[derive(Debug, Clone)]
struct CachedOrder {
    generation: u64,
    order: Vec<u32>,
}

/// Per-view cache of sorted child orderings, keyed by `(slot, sort key)`
/// and validated with a generation stamp — the same scheme
/// `Experiment::attributions()` and `CallersView::fill_values` use. A
/// slot is either a parent view-node id or a [`TOP_SLOT_BASE`]-offset
/// synthetic slot for a top-level list.
///
/// The cache stores *orderings* (node-id vectors), not references into
/// the tree, so holding one never borrows the view. Lookups at a stale
/// generation miss; the caller recomputes and [`SortCache::insert`]s at
/// the generation observed *after* recomputing (child materialization
/// during the recompute bumps the tree generation, and stamping afterward
/// keeps the entry valid).
#[derive(Debug, Default)]
pub struct SortCache {
    entries: HashMap<(u64, SortKey), CachedOrder>,
    hits: u64,
    full_sorts: u64,
}

impl SortCache {
    /// An empty cache.
    pub fn new() -> Self {
        SortCache::default()
    }

    /// The cached ordering for `(slot, key)` if it was computed at
    /// exactly `generation`; counts a hit when present.
    pub fn lookup(&mut self, slot: u64, key: SortKey, generation: u64) -> Option<Vec<u32>> {
        match self.entries.get(&(slot, key)) {
            Some(c) if c.generation == generation => {
                self.hits += 1;
                Some(c.order.clone())
            }
            _ => None,
        }
    }

    /// Record a freshly computed ordering (counts one full sort).
    pub fn insert(&mut self, slot: u64, key: SortKey, generation: u64, order: Vec<u32>) {
        self.full_sorts += 1;
        self.entries
            .insert((slot, key), CachedOrder { generation, order });
    }

    /// `(hits, full_sorts)` since construction (or the last
    /// [`SortCache::reset_stats`]). The acceptance test for "re-sorting a
    /// built view performs zero full-child sorts" watches `full_sorts`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.full_sorts)
    }

    /// Zero the hit/full-sort counters (entries are kept).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.full_sorts = 0;
    }

    /// Number of cached orderings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Interned per-node labels for one view, indexed densely by view node
/// id. Labels are rendered once through `write_label` (whose procedure/
/// file/module arms copy straight out of the [`NameTable`]'s interned
/// strings) and then reused by every sort comparison, tie-break, and
/// rendered row — instead of allocating a fresh `String` per comparison.
#[derive(Debug, Default)]
pub struct LabelCache {
    labels: Vec<Option<Box<str>>>,
}

impl LabelCache {
    /// An empty cache.
    pub fn new() -> Self {
        LabelCache::default()
    }

    /// Make sure node `n` has a cached label, building it with `fill`
    /// (which writes the label into the provided buffer) on first use.
    pub fn ensure(&mut self, n: u32, fill: impl FnOnce(&mut String)) {
        let i = n as usize;
        if i >= self.labels.len() {
            self.labels.resize(i + 1, None);
        }
        if self.labels[i].is_none() {
            let mut buf = String::new();
            fill(&mut buf);
            self.labels[i] = Some(buf.into_boxed_str());
        }
    }

    /// The cached label for `n` (empty when [`LabelCache::ensure`] has
    /// not run for it).
    pub fn peek(&self, n: u32) -> &str {
        self.labels
            .get(n as usize)
            .and_then(|l| l.as_deref())
            .unwrap_or("")
    }

    /// Cached label for `n`, building it on first use.
    pub fn get(&mut self, n: u32, fill: impl FnOnce(&mut String)) -> &str {
        self.ensure(n, fill);
        self.labels[n as usize].as_deref().unwrap_or("")
    }

    /// Number of label slots (dense up to the highest ensured node id).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no label has been cached.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_roots_and_children() {
        let mut t = ViewTree::new(StorageKind::Dense);
        let a = t.add_root(ViewScope::ProcTop { proc: ProcId(0) });
        let b = t.add_root(ViewScope::ProcTop { proc: ProcId(1) });
        let c = t.add_child(
            a,
            ViewScope::Caller {
                proc: ProcId(2),
                call_site: None,
            },
        );
        assert_eq!(t.roots(), vec![a, b]);
        assert_eq!(t.children(a), vec![c]);
        assert_eq!(t.parent(c), Some(a));
        assert_eq!(t.parent(a), None);
        assert!(t.has_children(a));
        assert!(!t.has_children(b));
    }

    #[test]
    fn find_or_add_deduplicates_children_and_roots() {
        let mut t = ViewTree::new(StorageKind::Dense);
        let r1 = t.find_or_add_root(ViewScope::Module {
            module: LoadModuleId(0),
        });
        let r2 = t.find_or_add_root(ViewScope::Module {
            module: LoadModuleId(0),
        });
        assert_eq!(r1, r2);
        let c1 = t.find_or_add_child(r1, ViewScope::File { file: FileId(3) });
        let c2 = t.find_or_add_child(r1, ViewScope::File { file: FileId(3) });
        assert_eq!(c1, c2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn instances_accumulate() {
        let mut t = ViewTree::new(StorageKind::Sparse);
        let a = t.add_root(ViewScope::Procedure { proc: ProcId(0) });
        t.push_instance(a, NodeId(5));
        t.push_instance(a, NodeId(9));
        assert_eq!(t.instances(a), &[NodeId(5), NodeId(9)]);
    }

    #[test]
    fn labels_and_call_icons() {
        let mut names = NameTable::new();
        let g = names.proc("g");
        let f = names.file("file2.c");
        let mut t = ViewTree::new(StorageKind::Dense);
        let top = t.add_root(ViewScope::ProcTop { proc: g });
        assert_eq!(t.label(top, &names), "g");
        assert!(!t.scope(top).is_call());
        let cs = t.add_child(
            top,
            ViewScope::CallSite {
                callee: g,
                loc: Some(SourceLoc::new(f, 3)),
            },
        );
        assert!(t.scope(cs).is_call());
        let lp = t.add_child(
            top,
            ViewScope::Loop {
                header: SourceLoc::new(f, 8),
            },
        );
        assert_eq!(t.label(lp, &names), "loop at file2.c:8");
    }

    #[test]
    fn generation_bumps_on_structure_and_columns() {
        let mut t = ViewTree::new(StorageKind::Dense);
        let g0 = t.generation();
        let a = t.add_root(ViewScope::Procedure { proc: ProcId(0) });
        let g1 = t.generation();
        assert!(g1 > g0, "add_root must bump the generation");
        t.add_child(
            a,
            ViewScope::Loop {
                header: SourceLoc::new(FileId(0), 4),
            },
        );
        let g2 = t.generation();
        assert!(g2 > g1, "add_child must bump the generation");
        let c = t.columns.add_column(crate::metrics::ColumnDesc {
            name: "x".into(),
            flavor: crate::metrics::ColumnFlavor::Inclusive(crate::ids::MetricId(0)),
            visible: true,
        });
        assert!(
            t.generation() > g2,
            "column append must bump the generation"
        );
        let g3 = t.generation();
        t.columns.set(c, a.0, 7.0);
        assert!(t.generation() > g3, "column write must bump the generation");
    }

    #[test]
    fn sort_cache_hits_and_invalidation() {
        let mut cache = SortCache::new();
        let key = SortKey::Column {
            column: ColumnId(0),
            dir: SortDir::Descending,
        };
        assert_eq!(cache.lookup(3, key, 10), None);
        cache.insert(3, key, 10, vec![2, 0, 1]);
        assert_eq!(cache.lookup(3, key, 10), Some(vec![2, 0, 1]));
        // Stale generation misses; by-name entry is a distinct key.
        assert_eq!(cache.lookup(3, key, 11), None);
        assert_eq!(cache.lookup(3, SortKey::Name, 10), None);
        let (hits, full_sorts) = cache.stats();
        assert_eq!((hits, full_sorts), (1, 1));
        cache.reset_stats();
        assert_eq!(cache.stats(), (0, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn label_cache_fills_once() {
        let mut labels = LabelCache::new();
        let mut fills = 0;
        labels.ensure(5, |buf| {
            fills += 1;
            buf.push_str("main");
        });
        labels.ensure(5, |buf| {
            fills += 1;
            buf.push_str("never");
        });
        assert_eq!(fills, 1);
        assert_eq!(labels.peek(5), "main");
        assert_eq!(labels.peek(2), "", "unfilled slots read as empty");
        assert_eq!(labels.get(1, |b| b.push('g')), "g");
    }
}
