//! Streaming summary statistics for large-scale parallel executions
//! (Section IV finalization step and Section VII).
//!
//! For executions with thousands of MPI processes it is not scalable to
//! keep every process's metrics in memory; HPCToolkit instead summarizes
//! per-node metrics into mean, min, max and standard deviation. The
//! `Welford` accumulator here implements the numerically stable streaming
//! algorithm, and `merge` combines two partial accumulators (the
//! "assemble intermediate summary metric values into final values" step),
//! so reduction can proceed in parallel over disjoint rank subsets.

use serde::{Deserialize, Serialize};

/// A summary statistic over per-process metric values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stat {
    /// Arithmetic mean over processes.
    Mean,
    /// Minimum over processes.
    Min,
    /// Maximum over processes.
    Max,
    /// Population standard deviation.
    StdDev,
    /// Sum over all processes (used for "total inclusive idleness summed
    /// over all MPI processes" in the load-imbalance case study).
    Sum,
}

impl Stat {
    /// Every statistic.
    pub const ALL: [Stat; 5] = [Stat::Mean, Stat::Min, Stat::Max, Stat::StdDev, Stat::Sum];

    /// Column-suffix label.
    pub fn label(self) -> &'static str {
        match self {
            Stat::Mean => "mean",
            Stat::Min => "min",
            Stat::Max => "max",
            Stat::StdDev => "stddev",
            Stat::Sum => "sum",
        }
    }
}

/// Numerically stable streaming accumulator (Welford's algorithm) with
/// min/max tracking and parallel merge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe one value.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
    }

    /// Combine two partial accumulators (Chan et al. parallel update).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Evaluate one statistic.
    pub fn stat(&self, s: Stat) -> f64 {
        match s {
            Stat::Mean => self.mean(),
            Stat::Min => self.min(),
            Stat::Max => self.max(),
            Stat::StdDev => self.std_dev(),
            Stat::Sum => self.sum(),
        }
    }

    /// Coefficient of variation (stddev / mean); a standard scalar signal of
    /// load imbalance across processes.
    pub fn coeff_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_stats(xs: &[f64]) -> (f64, f64, f64, f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (mean, var, min, max, xs.iter().sum())
    }

    #[test]
    fn matches_two_pass_reference() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let (mean, var, min, max, sum) = reference_stats(&xs);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.min(), min);
        assert_eq!(w.max(), max);
        assert_eq!(w.sum(), sum);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut seq = Welford::new();
        for &x in &xs {
            seq.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(2.0);
        a.push(4.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);

        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn empty_accumulator_is_all_zero() {
        let w = Welford::new();
        for s in Stat::ALL {
            assert_eq!(w.stat(s), 0.0, "{}", s.label());
        }
    }

    #[test]
    fn constant_stream_has_zero_variance() {
        let mut w = Welford::new();
        for _ in 0..1000 {
            w.push(7.5);
        }
        assert!(w.std_dev() < 1e-12);
        assert_eq!(w.coeff_of_variation(), w.std_dev() / 7.5);
    }

    #[test]
    fn imbalance_signal() {
        // Half the ranks do double work: a clearly bimodal distribution.
        let mut w = Welford::new();
        for i in 0..64 {
            w.push(if i < 32 { 100.0 } else { 200.0 });
        }
        assert!(w.coeff_of_variation() > 0.3);
        assert_eq!(w.min(), 100.0);
        assert_eq!(w.max(), 200.0);
    }
}
