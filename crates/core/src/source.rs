//! The source pane's data: program source text, addressable by the file
//! ids of an experiment's name table.
//!
//! hpcviewer keeps a source pane next to the navigation pane: selecting a
//! scope navigates the source pane to the file and line it came from,
//! and clicking a call-site icon navigates to the call site instead
//! (Section V-B). The store is deliberately decoupled from the
//! experiment — like hpcviewer, which reads sources from the file system
//! and degrades gracefully (plain-black labels) when they are missing.

use crate::ids::FileId;
use crate::names::NameTable;
use std::collections::HashMap;

/// Source text for some subset of an experiment's files.
#[derive(Debug, Clone, Default)]
pub struct SourceStore {
    files: HashMap<FileId, Vec<String>>,
}

impl SourceStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the text of `file`.
    pub fn insert(&mut self, file: FileId, text: &str) {
        self.files
            .insert(file, text.lines().map(str::to_owned).collect());
    }

    /// Build a store by matching `(filename, text)` pairs against an
    /// experiment's name table. Unknown filenames are ignored (the viewer
    /// simply has no source for them).
    pub fn from_texts<'a>(
        names: &NameTable,
        texts: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> SourceStore {
        let by_name: HashMap<&str, FileId> = (0..names.file_count())
            .map(|i| {
                let id = FileId(i as u32);
                (names.file_name(id), id)
            })
            .collect();
        let mut store = SourceStore::new();
        for (name, text) in texts {
            if let Some(&id) = by_name.get(name) {
                store.insert(id, text);
            }
        }
        store
    }

    /// True when the store has text for `file`.
    pub fn has(&self, file: FileId) -> bool {
        self.files.contains_key(&file)
    }

    /// 1-based line lookup.
    pub fn line(&self, file: FileId, line: u32) -> Option<&str> {
        if line == 0 {
            return None;
        }
        self.files
            .get(&file)?
            .get(line as usize - 1)
            .map(String::as_str)
    }

    /// Number of lines of `file` (0 when unknown).
    pub fn line_count(&self, file: FileId) -> usize {
        self.files.get(&file).map_or(0, Vec::len)
    }

    /// A numbered excerpt around `line` with `context` lines either side;
    /// the focused line is marked with `>`. Returns `None` when the file
    /// is unknown or the line is out of range.
    pub fn excerpt(&self, file: FileId, line: u32, context: u32) -> Option<String> {
        let lines = self.files.get(&file)?;
        if line == 0 || line as usize > lines.len() {
            return None;
        }
        let lo = line.saturating_sub(context).max(1);
        let hi = (line + context).min(lines.len() as u32);
        let mut out = String::new();
        for l in lo..=hi {
            let marker = if l == line { '>' } else { ' ' };
            out.push_str(&format!("{marker}{l:>5}  {}\n", lines[l as usize - 1]));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (SourceStore, FileId) {
        let mut names = NameTable::new();
        let f = names.file("a.c");
        let mut s = SourceStore::new();
        s.insert(f, "int main() {\n  work();\n  return 0;\n}\n");
        (s, f)
    }

    #[test]
    fn line_lookup_is_one_based() {
        let (s, f) = store();
        assert_eq!(s.line(f, 1), Some("int main() {"));
        assert_eq!(s.line(f, 2), Some("  work();"));
        assert_eq!(s.line(f, 0), None, "line 0 = unknown");
        assert_eq!(s.line(f, 99), None);
        assert_eq!(s.line_count(f), 4);
    }

    #[test]
    fn excerpt_marks_the_focus_line() {
        let (s, f) = store();
        let text = s.excerpt(f, 2, 1).unwrap();
        assert_eq!(
            text,
            "     1  int main() {\n>    2    work();\n     3    return 0;\n"
        );
    }

    #[test]
    fn excerpt_clamps_to_file_bounds() {
        let (s, f) = store();
        let top = s.excerpt(f, 1, 5).unwrap();
        assert!(top.starts_with(">    1"));
        assert_eq!(top.lines().count(), 4);
        assert!(s.excerpt(f, 10, 1).is_none());
    }

    #[test]
    fn from_texts_matches_by_name() {
        let mut names = NameTable::new();
        let a = names.file("a.c");
        let _b = names.file("b.c");
        let store = SourceStore::from_texts(&names, [("a.c", "line1\n"), ("zzz.c", "ignored\n")]);
        assert!(store.has(a));
        assert_eq!(store.line(a, 1), Some("line1"));
        assert!(!store.has(_b));
    }
}
