//! Metric descriptors and per-node metric storage.
//!
//! The paper uses *metric* for any measure of work (instructions), resource
//! consumption (bus transactions) or inefficiency (stall cycles). A raw
//! metric is what the sampler records; the presentation layer projects each
//! raw metric into an **inclusive** and an **exclusive** column, and lets
//! the analyst add **derived** columns computed by formula (Section V-D).
//!
//! Performance data is sparse (Section V-A): most CCT nodes have zero for
//! most metrics. Storage therefore comes in three interchangeable flavors —
//! dense `Vec<f64>`, a hash-indexed sparse map, and a sorted columnar
//! (CSR-style) layout ([`CsrColumn`]) whose non-zeros live in two parallel
//! arrays ordered by node id — so the ablation bench (`metric_storage`)
//! can compare them; the public API is identical. The columnar flavor is
//! the parallel-ingestion workhorse: workers accumulate into
//! [`ColumnBuilder`]s and the reduction merges frozen columns in O(nnz).
//!
//! [`RawMetrics`] additionally carries a **generation counter** bumped by
//! every mutation; derived caches (attribution results, callers-view
//! aggregates) key on it to revalidate instead of serving stale values.

use crate::ids::{ColumnId, MetricId};
use crate::mapped::{ColumnData, MappedCol};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// On-demand provider of column contents, the hook behind lazily opened
/// experiment databases (format v2): a [`ColumnSet`] or [`RawMetrics`]
/// with a source attached starts with **no resident column data** and
/// faults each column in on first touch, so opening a database costs
/// only topology decoding and untouched metric columns are never paid
/// for.
///
/// Both methods return entries **sorted ascending by node id** with no
/// duplicates — either decoded into an owned buffer or borrowed
/// zero-copy from the file image ([`ColumnData::Mapped`], format
/// v2.1). They are called at most once per column/metric (results are
/// cached in the owning set). A `Err(reason)` materializes the column
/// as all-zeros and is surfaced through [`ColumnSet::lazy_error`] /
/// [`RawMetrics::lazy_error`] instead of panicking, so a corrupt block
/// discovered mid-render degrades rather than aborts.
pub trait ColumnSource: Send + Sync + std::fmt::Debug {
    /// Sorted non-zero `(node, value)` entries of presentation column `c`.
    fn load_column(&self, c: ColumnId) -> Result<ColumnData, String>;
    /// Sorted non-zero direct-cost entries of raw metric `m`.
    fn load_raw(&self, m: MetricId) -> Result<ColumnData, String>;
}

/// Lazy-fault bookkeeping shared by [`ColumnSet`] and [`RawMetrics`]:
/// one [`OnceLock`] slot per lazily backed column, filled from the
/// source on first touch. Faulting a column in does **not** bump the
/// owner's generation: a fault happens on the *first* read, so no
/// cached ordering can ever have observed the pre-fault zeros — the
/// PR 2 sort-cache invariants hold unchanged.
#[derive(Debug, Default)]
struct LazySlots {
    source: Option<Arc<dyn ColumnSource>>,
    slots: Vec<OnceLock<MetricVec>>,
    /// Decode executions per slot. `OnceLock` runs the init closure at
    /// most once, so after a fault this reads exactly 1 no matter how
    /// many threads raced the first touch — the concurrency stress test
    /// asserts on it.
    fault_counts: Vec<AtomicU64>,
    /// First load failure, kept for the original single-error API
    /// (the column reads as zeros from then on).
    error: OnceLock<String>,
    /// Every *distinct* load failure, in first-seen order. The original
    /// bookkeeping dropped all but the first; multi-column corruption
    /// now surfaces completely via [`ColumnSet::lazy_errors`].
    errors: Mutex<Vec<String>>,
}

impl Clone for LazySlots {
    fn clone(&self) -> Self {
        LazySlots {
            source: self.source.clone(),
            slots: self.slots.clone(),
            fault_counts: self
                .fault_counts
                .iter()
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect(),
            error: self.error.clone(),
            errors: Mutex::new(self.errors.lock().expect("lazy errors lock").clone()),
        }
    }
}

impl LazySlots {
    fn attach(&mut self, source: Arc<dyn ColumnSource>, count: usize) {
        self.source = Some(source);
        self.slots = (0..count).map(|_| OnceLock::new()).collect();
        self.fault_counts = (0..count).map(|_| AtomicU64::new(0)).collect();
    }

    /// Is `index` inside the lazily backed prefix?
    fn covers(&self, index: usize) -> bool {
        self.source.is_some() && index < self.slots.len()
    }

    /// Resolve slot `index`, faulting it in via `load` on first touch.
    fn fault(
        &self,
        index: usize,
        storage: StorageKind,
        load: impl FnOnce(&dyn ColumnSource) -> Result<ColumnData, String>,
    ) -> Option<&MetricVec> {
        if !self.covers(index) {
            return None;
        }
        let source = self.source.as_deref()?;
        Some(self.slots[index].get_or_init(|| {
            self.fault_counts[index].fetch_add(1, Ordering::Relaxed);
            match load(source) {
                Ok(ColumnData::Owned(entries)) => MetricVec::from_sorted(storage, entries),
                Ok(ColumnData::Mapped(col)) => MetricVec::Mapped(col),
                Err(reason) => {
                    let mut all = self.errors.lock().expect("lazy errors lock");
                    if !all.contains(&reason) {
                        all.push(reason.clone());
                    }
                    drop(all);
                    let _ = self.error.set(reason);
                    empty_vec(storage)
                }
            }
        }))
    }

    /// Number of slots already faulted in.
    fn resident(&self) -> usize {
        self.slots.iter().filter(|s| s.get().is_some()).count()
    }

    /// Decode executions recorded for slot `index` (0 if untouched or
    /// out of range, exactly 1 once faulted).
    fn fault_count(&self, index: usize) -> u64 {
        self.fault_counts
            .get(index)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Every distinct load failure seen so far, in first-seen order.
    fn all_errors(&self) -> Vec<String> {
        self.errors.lock().expect("lazy errors lock").clone()
    }

    fn heap_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|s| s.get())
            .map(MetricVec::heap_bytes)
            .sum()
    }
}

/// Description of a raw (measured) metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDesc {
    /// e.g. `PAPI_TOT_CYC`, `PAPI_L1_DCM`, `PAPI_FP_OPS`, `IDLENESS`.
    pub name: String,
    /// Unit label for display, e.g. `cycles`, `misses`, `ops`.
    pub unit: String,
    /// Sampling period: one recorded sample represents this many events.
    /// The paper defines the exclusive value at a sample point as sample
    /// count × period.
    pub period: f64,
}

impl MetricDesc {
    /// Describe a raw metric.
    pub fn new(name: &str, unit: &str, period: f64) -> Self {
        MetricDesc {
            name: name.to_owned(),
            unit: unit.to_owned(),
            period,
        }
    }
}

/// A frozen-plus-overlay sorted columnar store for one metric: non-zero
/// values live in two parallel arrays (`keys` ascending node ids, `vals`
/// their values), looked up by binary search. Out-of-order mutations land
/// in a small unsorted `pending` delta overlay that is folded back into
/// the sorted arrays once it grows past a threshold, keeping amortized
/// cost near O(log nnz) per operation while ordered scans stay a plain
/// slice walk.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CsrColumn {
    /// Node ids with (potentially) non-zero values, strictly ascending.
    keys: Vec<u32>,
    /// `vals[i]` is the value at `keys[i]`.
    vals: Vec<f64>,
    /// Unsorted `(node, delta)` overlay absorbed on the next compaction.
    pending: Vec<(u32, f64)>,
}

impl CsrColumn {
    /// An empty column.
    pub fn new() -> Self {
        CsrColumn::default()
    }

    /// Value at `node` (0.0 when absent).
    #[inline]
    pub fn get(&self, node: u32) -> f64 {
        let mut v = match self.keys.binary_search(&node) {
            Ok(i) => self.vals[i],
            Err(_) => 0.0,
        };
        for &(k, d) in &self.pending {
            if k == node {
                v += d;
            }
        }
        v
    }

    /// Accumulate `delta` at `node`. Ascending appends (the common case:
    /// attribution sweeps and view fills walk nodes in id order) are O(1);
    /// anything else goes through the pending overlay.
    #[inline]
    pub fn add(&mut self, node: u32, delta: f64) {
        if delta == 0.0 {
            return;
        }
        if self.pending.is_empty() {
            match self.keys.last() {
                Some(&last) if node == last => {
                    *self.vals.last_mut().unwrap() += delta;
                    return;
                }
                Some(&last) if node > last => {
                    self.keys.push(node);
                    self.vals.push(delta);
                    return;
                }
                None => {
                    self.keys.push(node);
                    self.vals.push(delta);
                    return;
                }
                _ => {}
            }
        }
        self.pending.push((node, delta));
        if self.pending.len() >= 32 + self.keys.len() / 4 {
            self.compact();
        }
    }

    /// Set the value at `node`, replacing any accumulated value.
    pub fn set(&mut self, node: u32, value: f64) {
        if !self.pending.is_empty() {
            self.compact();
        }
        match self.keys.binary_search(&node) {
            Ok(i) => self.vals[i] = value,
            Err(i) => {
                if value != 0.0 {
                    self.keys.insert(i, node);
                    self.vals.insert(i, value);
                }
            }
        }
    }

    /// Fold the pending overlay back into the sorted arrays, summing
    /// duplicates and dropping entries that cancelled to exactly zero.
    pub fn compact(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut overlay = std::mem::take(&mut self.pending);
        overlay.sort_unstable_by_key(|&(k, _)| k);
        let mut keys = Vec::with_capacity(self.keys.len() + overlay.len());
        let mut vals = Vec::with_capacity(self.keys.len() + overlay.len());
        let mut oi = 0;
        let mut push = |k: u32, v: f64| {
            if v != 0.0 {
                keys.push(k);
                vals.push(v);
            }
        };
        for (i, &k) in self.keys.iter().enumerate() {
            while oi < overlay.len() && overlay[oi].0 < k {
                let key = overlay[oi].0;
                let mut v = 0.0;
                while oi < overlay.len() && overlay[oi].0 == key {
                    v += overlay[oi].1;
                    oi += 1;
                }
                push(key, v);
            }
            let mut v = self.vals[i];
            while oi < overlay.len() && overlay[oi].0 == k {
                v += overlay[oi].1;
                oi += 1;
            }
            push(k, v);
        }
        while oi < overlay.len() {
            let key = overlay[oi].0;
            let mut v = 0.0;
            while oi < overlay.len() && overlay[oi].0 == key {
                v += overlay[oi].1;
                oi += 1;
            }
            push(key, v);
        }
        self.keys = keys;
        self.vals = vals;
    }

    /// Accumulate every entry of `other` into `self` with a single
    /// two-pointer merge: O(nnz(self) + nnz(other)), no binary searches.
    pub fn merge(&mut self, other: &CsrColumn) {
        self.compact();
        let compacted_other;
        let (okeys, ovals): (&[u32], &[f64]) = if other.pending.is_empty() {
            (&other.keys, &other.vals)
        } else {
            let mut c = other.clone();
            c.compact();
            compacted_other = c;
            (&compacted_other.keys, &compacted_other.vals)
        };
        let mut keys = Vec::with_capacity(self.keys.len() + okeys.len());
        let mut vals = Vec::with_capacity(self.keys.len() + okeys.len());
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() || j < okeys.len() {
            let (k, v) = if j >= okeys.len() || (i < self.keys.len() && self.keys[i] < okeys[j]) {
                let e = (self.keys[i], self.vals[i]);
                i += 1;
                e
            } else if i >= self.keys.len() || okeys[j] < self.keys[i] {
                let e = (okeys[j], ovals[j]);
                j += 1;
                e
            } else {
                let e = (self.keys[i], self.vals[i] + ovals[j]);
                i += 1;
                j += 1;
                e
            };
            if v != 0.0 {
                keys.push(k);
                vals.push(v);
            }
        }
        self.keys = keys;
        self.vals = vals;
    }

    /// Number of stored entries (after folding the overlay in).
    pub fn nnz(&mut self) -> usize {
        self.compact();
        self.vals.iter().filter(|&&v| v != 0.0).count()
    }

    fn merged_entries(&self) -> Vec<(u32, f64)> {
        let mut c = self.clone();
        c.compact();
        c.keys.into_iter().zip(c.vals).collect()
    }

    fn heap_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u32>()
            + self.vals.capacity() * std::mem::size_of::<f64>()
            + self.pending.capacity() * std::mem::size_of::<(u32, f64)>()
    }
}

/// Accumulates `(node, value)` pairs in any order — e.g. from one
/// ingestion worker — and freezes them into a sorted [`CsrColumn`].
/// Builders from different workers concatenate cheaply before freezing,
/// so a parallel reduction is "append all, sort once".
#[derive(Debug, Clone, Default)]
pub struct ColumnBuilder {
    entries: Vec<(u32, f64)>,
}

impl ColumnBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ColumnBuilder::default()
    }

    /// Accumulate `value` at `node` (duplicates are summed at freeze).
    #[inline]
    pub fn push(&mut self, node: u32, value: f64) {
        if value != 0.0 {
            self.entries.push((node, value));
        }
    }

    /// Move every entry of `other` into this builder.
    pub fn append(&mut self, other: &mut ColumnBuilder) {
        self.entries.append(&mut other.entries);
    }

    /// Number of accumulated (pre-dedup) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries were pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sort, sum duplicates, drop zeros: the frozen immutable column.
    pub fn freeze(mut self) -> CsrColumn {
        self.entries.sort_unstable_by_key(|&(k, _)| k);
        let mut keys: Vec<u32> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        for (k, v) in self.entries {
            if keys.last() == Some(&k) {
                *vals.last_mut().unwrap() += v;
                // Duplicates may cancel to exactly zero; drop the slot.
                if *vals.last().unwrap() == 0.0 {
                    keys.pop();
                    vals.pop();
                }
            } else {
                keys.push(k);
                vals.push(v);
            }
        }
        CsrColumn {
            keys,
            vals,
            pending: Vec::new(),
        }
    }
}

/// Per-node storage for one metric column. Indices are node ids of whatever
/// tree the containing table is attached to (CCT or a view tree).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MetricVec {
    /// Dense vector indexed by node id.
    Dense(Vec<f64>),
    /// Sparse map from node id to value; zeros are absent.
    Sparse(HashMap<u32, f64>),
    /// Sorted columnar non-zeros; see [`CsrColumn`].
    Csr(CsrColumn),
    /// Sorted columnar non-zeros borrowed zero-copy from a database
    /// image ([`MappedCol`], format v2.1). Reads are in-place; the
    /// first mutation copies into an owned [`CsrColumn`]
    /// (copy-on-write), so the shared image is never written.
    Mapped(MappedCol),
}

impl MetricVec {
    /// A dense column pre-sized for `len` nodes.
    pub fn dense(len: usize) -> Self {
        MetricVec::Dense(vec![0.0; len])
    }

    /// An empty sparse column.
    pub fn sparse() -> Self {
        MetricVec::Sparse(HashMap::new())
    }

    /// An empty sorted columnar column.
    pub fn csr() -> Self {
        MetricVec::Csr(CsrColumn::new())
    }

    /// Build a column of the given storage flavor from entries sorted
    /// ascending by node id (no duplicates) — the shape lazy column
    /// sources and frozen reductions hand over.
    pub fn from_sorted(storage: StorageKind, entries: Vec<(u32, f64)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        match storage {
            StorageKind::Dense => {
                let len = entries.last().map(|&(k, _)| k as usize + 1).unwrap_or(0);
                let mut v = vec![0.0; len];
                for (k, x) in entries {
                    v[k as usize] = x;
                }
                MetricVec::Dense(v)
            }
            StorageKind::Sparse => MetricVec::Sparse(entries.into_iter().collect()),
            StorageKind::Csr => {
                let (keys, vals) = entries.into_iter().unzip();
                MetricVec::Csr(CsrColumn {
                    keys,
                    vals,
                    pending: Vec::new(),
                })
            }
        }
    }

    /// Value at `node` (0.0 when absent).
    #[inline]
    pub fn get(&self, node: u32) -> f64 {
        match self {
            MetricVec::Dense(v) => v.get(node as usize).copied().unwrap_or(0.0),
            MetricVec::Sparse(m) => m.get(&node).copied().unwrap_or(0.0),
            MetricVec::Csr(c) => c.get(node),
            MetricVec::Mapped(m) => m.get(node),
        }
    }

    /// Copy a mapped (zero-copy) column into owned columnar storage so
    /// it can be mutated; no-op for already-owned flavors.
    fn make_owned(&mut self) {
        if let MetricVec::Mapped(m) = self {
            let (keys, vals) = m.entries().into_iter().unzip();
            *self = MetricVec::Csr(CsrColumn {
                keys,
                vals,
                pending: Vec::new(),
            });
        }
    }

    /// Set the value at `node`; setting 0.0 removes sparse entries.
    #[inline]
    pub fn set(&mut self, node: u32, value: f64) {
        self.make_owned();
        match self {
            MetricVec::Dense(v) => {
                if node as usize >= v.len() {
                    v.resize(node as usize + 1, 0.0);
                }
                v[node as usize] = value;
            }
            MetricVec::Sparse(m) => {
                if value == 0.0 {
                    m.remove(&node);
                } else {
                    m.insert(node, value);
                }
            }
            MetricVec::Csr(c) => c.set(node, value),
            MetricVec::Mapped(_) => unreachable!("make_owned() materialized above"),
        }
    }

    /// Accumulate `delta` at `node`.
    #[inline]
    pub fn add(&mut self, node: u32, delta: f64) {
        if delta == 0.0 {
            return;
        }
        self.make_owned();
        match self {
            MetricVec::Dense(v) => {
                if node as usize >= v.len() {
                    v.resize(node as usize + 1, 0.0);
                }
                v[node as usize] += delta;
            }
            MetricVec::Sparse(m) => {
                *m.entry(node).or_insert(0.0) += delta;
            }
            MetricVec::Csr(c) => c.add(node, delta),
            MetricVec::Mapped(_) => unreachable!("make_owned() materialized above"),
        }
    }

    /// Number of nodes with a non-zero value.
    pub fn nonzero_count(&self) -> usize {
        match self {
            MetricVec::Dense(v) => v.iter().filter(|&&x| x != 0.0).count(),
            MetricVec::Sparse(m) => m.values().filter(|&&x| x != 0.0).count(),
            MetricVec::Csr(_) | MetricVec::Mapped(_) => self.nonzero_sorted().count(),
        }
    }

    /// Non-zero entries in ascending node order (deterministic regardless of
    /// storage flavor).
    ///
    /// Returns a borrowed iterator: the dense and compacted-columnar
    /// flavors walk their storage in place with no per-call allocation;
    /// only the hash-indexed flavor (and a columnar store with unmerged
    /// pending deltas) must materialize a sorted buffer first.
    pub fn nonzero_sorted(&self) -> NonzeroSorted<'_> {
        match self {
            MetricVec::Dense(v) => NonzeroSorted::Dense { v, i: 0 },
            MetricVec::Sparse(m) => {
                let mut out: Vec<(u32, f64)> = m
                    .iter()
                    .filter(|(_, &x)| x != 0.0)
                    .map(|(&k, &v)| (k, v))
                    .collect();
                out.sort_unstable_by_key(|&(k, _)| k);
                NonzeroSorted::Owned(out.into_iter())
            }
            MetricVec::Csr(c) => {
                if c.pending.is_empty() {
                    NonzeroSorted::Csr {
                        keys: &c.keys,
                        vals: &c.vals,
                        i: 0,
                    }
                } else {
                    NonzeroSorted::Owned(c.merged_entries().into_iter())
                }
            }
            // Zero-copy: the parallel arrays are walked straight out of
            // the file image, same shape as the columnar flavor.
            MetricVec::Mapped(m) => NonzeroSorted::Csr {
                keys: m.keys(),
                vals: m.vals(),
                i: 0,
            },
        }
    }

    /// Approximate heap footprint in bytes, for the storage ablation bench.
    pub fn heap_bytes(&self) -> usize {
        match self {
            MetricVec::Dense(v) => v.capacity() * std::mem::size_of::<f64>(),
            MetricVec::Sparse(m) => m.capacity() * (std::mem::size_of::<(u32, f64)>() + 8),
            MetricVec::Csr(c) => c.heap_bytes(),
            // Borrowed from the shared file image: no heap of its own.
            MetricVec::Mapped(_) => 0,
        }
    }
}

/// Borrowed iterator over non-zero `(node, value)` entries in ascending
/// node order; see [`MetricVec::nonzero_sorted`].
#[derive(Debug)]
pub enum NonzeroSorted<'a> {
    /// Walks a dense vector, skipping zeros.
    Dense {
        /// The dense values.
        v: &'a [f64],
        /// Next index to inspect.
        i: usize,
    },
    /// Walks a compacted columnar store's parallel arrays.
    Csr {
        /// Sorted node ids.
        keys: &'a [u32],
        /// Values parallel to `keys`.
        vals: &'a [f64],
        /// Next index to inspect.
        i: usize,
    },
    /// A materialized sorted buffer (hash-indexed storage, or a columnar
    /// store with pending deltas).
    Owned(std::vec::IntoIter<(u32, f64)>),
}

impl Iterator for NonzeroSorted<'_> {
    type Item = (u32, f64);

    fn next(&mut self) -> Option<(u32, f64)> {
        match self {
            NonzeroSorted::Dense { v, i } => {
                while *i < v.len() {
                    let at = *i;
                    *i += 1;
                    if v[at] != 0.0 {
                        return Some((at as u32, v[at]));
                    }
                }
                None
            }
            NonzeroSorted::Csr { keys, vals, i } => {
                while *i < keys.len() {
                    let at = *i;
                    *i += 1;
                    if vals[at] != 0.0 {
                        return Some((keys[at], vals[at]));
                    }
                }
                None
            }
            NonzeroSorted::Owned(it) => it.next(),
        }
    }
}

/// Which storage flavor new columns use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageKind {
    /// One `f64` slot per node; fastest lookups, O(nodes) memory.
    Dense,
    /// Hash-indexed non-zero entries; memory proportional to samples.
    Sparse,
    /// Sorted columnar non-zero entries ([`CsrColumn`]); binary-search
    /// lookups, allocation-free ordered scans, O(nnz) merges. In-memory
    /// only: the experiment database serializes it as the dense flavor.
    Csr,
}

/// Pick the empty column matching a storage flavor.
fn empty_vec(storage: StorageKind) -> MetricVec {
    match storage {
        StorageKind::Dense => MetricVec::dense(0),
        StorageKind::Sparse => MetricVec::sparse(),
        StorageKind::Csr => MetricVec::csr(),
    }
}

/// Direct (sample-point) costs for every raw metric, attached to a CCT.
///
/// `values[m].get(n)` is the cost measured *at* node `n` for metric `m`:
/// sample count × period, before any inclusive/exclusive attribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RawMetrics {
    descs: Vec<MetricDesc>,
    values: Vec<MetricVec>,
    storage: StorageKind,
    /// Bumped by every mutation; caches key on it ([`RawMetrics::generation`]).
    generation: u64,
    /// Lazy-fault slots for metrics backed by a [`ColumnSource`]
    /// (format-v2 databases). Not serialized: persisting a lazily
    /// opened experiment goes through the database model, which reads
    /// every column via the faulting accessors.
    #[serde(skip)]
    lazy: LazySlots,
}

impl RawMetrics {
    /// An empty metric set using the given storage flavor.
    pub fn new(storage: StorageKind) -> Self {
        RawMetrics {
            descs: Vec::new(),
            values: Vec::new(),
            storage,
            generation: 0,
            lazy: LazySlots::default(),
        }
    }

    /// Back every currently registered metric with `source`: their
    /// direct-cost columns start empty and fault in (at most once each)
    /// on first access. Metrics added afterwards are eager as usual.
    pub fn attach_source(&mut self, source: Arc<dyn ColumnSource>) {
        self.lazy.attach(source, self.descs.len());
    }

    /// Number of metrics whose direct-cost column is resident in
    /// memory. Equals [`RawMetrics::metric_count`] for eager metric
    /// sets; counts faulted-in columns for lazily backed ones.
    pub fn materialized_metrics(&self) -> usize {
        self.descs.len() - self.lazy.slots.len() + self.lazy.resident()
    }

    /// First failure reported by the lazy column source, if any.
    pub fn lazy_error(&self) -> Option<&str> {
        self.lazy.error.get().map(String::as_str)
    }

    /// Every distinct failure reported by the lazy column source, in
    /// first-seen order (empty when all loads succeeded).
    pub fn lazy_errors(&self) -> Vec<String> {
        self.lazy.all_errors()
    }

    /// Decode executions recorded for metric `m` (0 if untouched,
    /// exactly 1 once faulted in, regardless of reader concurrency).
    pub fn fault_count(&self, m: MetricId) -> u64 {
        self.lazy.fault_count(m.index())
    }

    /// Resolve the storage of metric `m`, faulting lazily backed
    /// columns in on first touch.
    fn resolved(&self, m: MetricId) -> &MetricVec {
        self.lazy
            .fault(m.index(), self.storage, |s| s.load_raw(m))
            .unwrap_or(&self.values[m.index()])
    }

    /// Mutable storage of metric `m`; lazily backed columns are faulted
    /// in first so the mutation lands on the materialized contents.
    fn resolved_mut(&mut self, m: MetricId) -> &mut MetricVec {
        if self.lazy.covers(m.index()) {
            self.resolved(m);
            return self.lazy.slots[m.index()]
                .get_mut()
                .expect("slot faulted in above");
        }
        &mut self.values[m.index()]
    }

    /// The storage flavor new columns use.
    pub fn storage(&self) -> StorageKind {
        self.storage
    }

    /// Mutation counter: incremented by every operation that can change
    /// metric values ([`RawMetrics::add_metric`],
    /// [`RawMetrics::record_samples`], [`RawMetrics::add_cost`],
    /// [`RawMetrics::add_costs`]). Derived caches — attribution results on
    /// [`crate::experiment::Experiment`], callers-view per-callee
    /// aggregates — store the generation they were computed at and
    /// recompute when it no longer matches.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Register a raw metric, returning its id.
    pub fn add_metric(&mut self, desc: MetricDesc) -> MetricId {
        let id = MetricId::from_usize(self.descs.len());
        self.descs.push(desc);
        self.values.push(empty_vec(self.storage));
        self.generation += 1;
        id
    }

    /// Number of registered raw metrics.
    pub fn metric_count(&self) -> usize {
        self.descs.len()
    }

    /// Descriptor of metric `m`.
    pub fn desc(&self, m: MetricId) -> &MetricDesc {
        &self.descs[m.index()]
    }

    /// All metric descriptors, in id order.
    pub fn descs(&self) -> &[MetricDesc] {
        &self.descs
    }

    /// Find a metric by name.
    pub fn find(&self, name: &str) -> Option<MetricId> {
        self.descs
            .iter()
            .position(|d| d.name == name)
            .map(MetricId::from_usize)
    }

    /// Record `count` samples of metric `m` at node `n`.
    pub fn record_samples(&mut self, m: MetricId, n: crate::ids::NodeId, count: u64) {
        let period = self.descs[m.index()].period;
        self.resolved_mut(m).add(n.0, count as f64 * period);
        self.generation += 1;
    }

    /// Add a pre-scaled cost at node `n`.
    pub fn add_cost(&mut self, m: MetricId, n: crate::ids::NodeId, cost: f64) {
        self.resolved_mut(m).add(n.0, cost);
        self.generation += 1;
    }

    /// Batched [`RawMetrics::add_cost`]: one generation bump for the whole
    /// slice and a tight loop over one column, which keeps columnar
    /// storage on its O(1) append fast path when `costs` is sorted by
    /// node (the order correlation reductions produce).
    pub fn add_costs(&mut self, m: MetricId, costs: &[(crate::ids::NodeId, f64)]) {
        let col = self.resolved_mut(m);
        for &(n, v) in costs {
            col.add(n.0, v);
        }
        self.generation += 1;
    }

    /// Replace the storage of metric `m` with a frozen columnar column
    /// (used by the parallel correlator's reduction; the metric must use
    /// [`StorageKind::Csr`]).
    pub fn install_csr(&mut self, m: MetricId, column: CsrColumn) {
        debug_assert_eq!(self.storage, StorageKind::Csr);
        *self.resolved_mut(m) = MetricVec::Csr(column);
        self.generation += 1;
    }

    /// Direct (sample-point) cost of metric `m` at node `n`.
    pub fn direct(&self, m: MetricId, n: crate::ids::NodeId) -> f64 {
        self.resolved(m).get(n.0)
    }

    /// The raw per-node storage of metric `m`.
    pub fn column(&self, m: MetricId) -> &MetricVec {
        self.resolved(m)
    }

    /// Total direct cost of metric `m` over all nodes (the whole-program
    /// cost, which equals the root's inclusive value after attribution).
    pub fn total(&self, m: MetricId) -> f64 {
        match self.resolved(m) {
            MetricVec::Dense(v) => v.iter().sum(),
            MetricVec::Sparse(map) => map.values().sum(),
            // Pending entries are deltas, so they sum in directly.
            MetricVec::Csr(c) => {
                c.vals.iter().sum::<f64>() + c.pending.iter().map(|&(_, d)| d).sum::<f64>()
            }
            MetricVec::Mapped(m) => m.vals().iter().sum(),
        }
    }
}

/// How a presentation column derives its values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnFlavor {
    /// Inclusive projection of a raw metric (Eq. 2).
    Inclusive(MetricId),
    /// Exclusive projection of a raw metric (Eq. 1 hybrid rules).
    Exclusive(MetricId),
    /// Computed from other columns with a formula (Section V-D); the source
    /// text of the formula is kept for the experiment database.
    Derived {
        /// Source text of the formula (kept for the experiment database).
        formula: String,
    },
    /// A statistic over per-process values (finalization step, Section IV).
    Summary {
        /// The raw metric the statistic summarizes.
        base: MetricId,
        /// Which statistic over per-process values.
        stat: crate::summary::Stat,
    },
}

/// A presentation column: what the metric pane shows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDesc {
    /// Column title shown in the metric pane.
    pub name: String,
    /// How the column's values are produced.
    pub flavor: ColumnFlavor,
    /// Hidden columns take part in derived-metric formulas but are not
    /// rendered (matches hpcviewer's show/hide metric property).
    pub visible: bool,
}

/// A table of presentation columns attached to some tree (CCT or view
/// tree). Column values are indexed by node id within that tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnSet {
    descs: Vec<ColumnDesc>,
    values: Vec<MetricVec>,
    storage: StorageKind,
    /// Bumped by every mutation, mirroring [`RawMetrics::generation`]:
    /// sort-order caches over view trees key on it so a column appended
    /// or rewritten after the fact (e.g. summary statistics via
    /// `append_view_columns`) invalidates cached orderings.
    #[serde(default)]
    generation: u64,
    /// Lazy-fault bookkeeping for columns backed by a [`ColumnSource`]
    /// (format v2 databases). Not serialized: persisting goes through the
    /// database model, which reads values via the faulting accessors.
    #[serde(skip)]
    lazy: LazySlots,
}

impl ColumnSet {
    /// An empty column table using the given storage flavor.
    pub fn new(storage: StorageKind) -> Self {
        ColumnSet {
            descs: Vec::new(),
            values: Vec::new(),
            storage,
            generation: 0,
            lazy: LazySlots::default(),
        }
    }

    /// Back the first `descs().len()` columns with a lazy source: each
    /// column's values materialize from `source` on first read instead of
    /// being decoded up front. Columns appended *after* this call are
    /// ordinary eager columns. No generation bump happens when a column
    /// faults in — faulting occurs on first read, so no cache can have
    /// observed the pre-fault (empty) values.
    pub fn attach_source(&mut self, source: Arc<dyn ColumnSource>) {
        self.lazy.attach(source, self.descs.len());
    }

    /// How many columns have materialized values: eager columns plus
    /// lazily-backed columns that have been faulted in. The laziness
    /// acceptance tests pin this after a render.
    pub fn materialized_columns(&self) -> usize {
        self.descs.len() - self.lazy.slots.len() + self.lazy.resident()
    }

    /// First error a lazy column load produced, if any. The failing
    /// column reads as all zeros rather than panicking mid-render.
    pub fn lazy_error(&self) -> Option<&str> {
        self.lazy.error.get().map(String::as_str)
    }

    /// Every distinct lazy-load failure, in first-seen order. Unlike
    /// [`ColumnSet::lazy_error`] this keeps reporting past the first
    /// corrupt column, so multi-block corruption is fully visible.
    pub fn lazy_errors(&self) -> Vec<String> {
        self.lazy.all_errors()
    }

    /// Decode executions recorded for column `c` (0 if untouched,
    /// exactly 1 once faulted in, regardless of reader concurrency).
    pub fn fault_count(&self, c: ColumnId) -> u64 {
        self.lazy.fault_count(c.index())
    }

    fn resolved(&self, c: ColumnId) -> &MetricVec {
        self.lazy
            .fault(c.index(), self.storage, |s| s.load_column(c))
            .unwrap_or(&self.values[c.index()])
    }

    fn resolved_mut(&mut self, c: ColumnId) -> &mut MetricVec {
        if self.lazy.covers(c.index()) {
            self.resolved(c);
            return self.lazy.slots[c.index()]
                .get_mut()
                .expect("slot faulted in above");
        }
        &mut self.values[c.index()]
    }

    /// Mutation counter: incremented by [`ColumnSet::add_column`],
    /// [`ColumnSet::set`] and [`ColumnSet::add`]. Derived caches (cached
    /// child sort orders) revalidate against it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Append a presentation column, returning its id.
    pub fn add_column(&mut self, desc: ColumnDesc) -> ColumnId {
        let id = ColumnId::from_usize(self.descs.len());
        self.descs.push(desc);
        self.values.push(empty_vec(self.storage));
        self.generation += 1;
        id
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.descs.len()
    }

    /// Descriptor of column `c`.
    pub fn desc(&self, c: ColumnId) -> &ColumnDesc {
        &self.descs[c.index()]
    }

    /// All column descriptors, in id order.
    pub fn descs(&self) -> &[ColumnDesc] {
        &self.descs
    }

    /// Every column id, in order.
    pub fn columns(&self) -> impl Iterator<Item = ColumnId> + '_ {
        (0..self.descs.len()).map(ColumnId::from_usize)
    }

    /// Column ids the metric pane renders (visible ones).
    pub fn visible_columns(&self) -> impl Iterator<Item = ColumnId> + '_ {
        self.descs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.visible)
            .map(|(i, _)| ColumnId::from_usize(i))
    }

    /// Look a column up by its title.
    pub fn find(&self, name: &str) -> Option<ColumnId> {
        self.descs
            .iter()
            .position(|d| d.name == name)
            .map(ColumnId::from_usize)
    }

    /// Value of column `c` at `node` (0.0 when absent).
    #[inline]
    pub fn get(&self, c: ColumnId, node: u32) -> f64 {
        self.resolved(c).get(node)
    }

    /// Set column `c` at `node`.
    #[inline]
    pub fn set(&mut self, c: ColumnId, node: u32, value: f64) {
        self.resolved_mut(c).set(node, value);
        self.generation += 1;
    }

    /// Accumulate into column `c` at `node`.
    #[inline]
    pub fn add(&mut self, c: ColumnId, node: u32, delta: f64) {
        self.resolved_mut(c).add(node, delta);
        self.generation += 1;
    }

    /// The per-node storage backing column `c`.
    pub fn vec(&self, c: ColumnId) -> &MetricVec {
        self.resolved(c)
    }

    /// Approximate heap footprint of all column storage.
    pub fn heap_bytes(&self) -> usize {
        self.values.iter().map(MetricVec::heap_bytes).sum::<usize>() + self.lazy.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn dense_sparse_and_csr_agree() {
        let mut d = MetricVec::dense(0);
        let mut s = MetricVec::sparse();
        let mut c = MetricVec::csr();
        for (n, v) in [(3u32, 1.5), (0, 2.0), (3, 0.5), (10, -1.0)] {
            d.add(n, v);
            s.add(n, v);
            c.add(n, v);
        }
        for n in 0..12 {
            assert_eq!(d.get(n), s.get(n), "node {n}");
            assert_eq!(d.get(n), c.get(n), "node {n}");
        }
        let dv: Vec<_> = d.nonzero_sorted().collect();
        let sv: Vec<_> = s.nonzero_sorted().collect();
        let cv: Vec<_> = c.nonzero_sorted().collect();
        assert_eq!(dv, sv);
        assert_eq!(dv, cv);
    }

    #[test]
    fn csr_set_overwrites_and_handles_out_of_order() {
        let mut c = CsrColumn::new();
        // Ascending appends stay on the fast path...
        for n in [1u32, 4, 9] {
            c.add(n, 1.0);
        }
        // ...then an out-of-order burst lands in the overlay.
        c.add(2, 5.0);
        c.add(4, -1.0);
        c.set(9, 7.0);
        c.set(3, 2.5);
        c.set(1, 0.0);
        assert_eq!(c.get(1), 0.0);
        assert_eq!(c.get(2), 5.0);
        assert_eq!(c.get(3), 2.5);
        assert_eq!(c.get(4), 0.0);
        assert_eq!(c.get(9), 7.0);
        let mv = MetricVec::Csr(c);
        let nz: Vec<_> = mv.nonzero_sorted().collect();
        assert_eq!(nz, vec![(2, 5.0), (3, 2.5), (9, 7.0)]);
    }

    #[test]
    fn csr_compaction_preserves_values_past_threshold() {
        let mut c = CsrColumn::new();
        let mut expect = std::collections::HashMap::new();
        // Alternate high/low nodes so every other add is out of order,
        // forcing several compactions.
        for i in 0..500u32 {
            let n = if i % 2 == 0 { i } else { 1000 - i };
            c.add(n, 1.0 + i as f64);
            *expect.entry(n).or_insert(0.0) += 1.0 + i as f64;
        }
        for (&n, &v) in &expect {
            assert_eq!(c.get(n), v, "node {n}");
        }
        c.compact();
        assert_eq!(c.nnz(), expect.len());
    }

    #[test]
    fn builder_freeze_and_merge_match_scalar_adds() {
        let mut b0 = ColumnBuilder::new();
        let mut b1 = ColumnBuilder::new();
        b0.push(7, 1.0);
        b0.push(2, 3.0);
        b0.push(7, 2.0);
        b1.push(0, 4.0);
        b1.push(2, -3.0);
        // Concatenate-then-freeze (the parallel reduction path)...
        let mut cat = ColumnBuilder::new();
        cat.append(&mut b0.clone());
        cat.append(&mut b1.clone());
        let frozen = cat.freeze();
        // ...equals freeze-then-merge...
        let mut merged = b0.freeze();
        merged.merge(&b1.freeze());
        // ...equals scalar adds into one column.
        let mut scalar = CsrColumn::new();
        for (n, v) in [(7u32, 1.0), (2, 3.0), (7, 2.0), (0, 4.0), (2, -3.0)] {
            scalar.add(n, v);
        }
        scalar.compact();
        for n in 0..10 {
            assert_eq!(frozen.get(n), scalar.get(n), "node {n}");
            assert_eq!(merged.get(n), scalar.get(n), "node {n}");
        }
        // The entry at node 2 cancelled exactly; it must not linger.
        let mut f = frozen;
        assert_eq!(f.nnz(), 2);
    }

    #[derive(Debug)]
    struct CountingSource {
        entries: Vec<(u32, f64)>,
        loads: std::sync::atomic::AtomicUsize,
    }

    impl ColumnSource for CountingSource {
        fn load_column(&self, _c: ColumnId) -> Result<ColumnData, String> {
            self.loads.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(ColumnData::Owned(self.entries.clone()))
        }
        fn load_raw(&self, _m: MetricId) -> Result<ColumnData, String> {
            self.loads.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(ColumnData::Owned(self.entries.clone()))
        }
    }

    #[test]
    fn lazy_columns_fault_once_on_first_read() {
        let mut cs = ColumnSet::new(StorageKind::Csr);
        let a = cs.add_column(ColumnDesc {
            name: "a".into(),
            flavor: ColumnFlavor::Inclusive(MetricId(0)),
            visible: true,
        });
        let b = cs.add_column(ColumnDesc {
            name: "b".into(),
            flavor: ColumnFlavor::Exclusive(MetricId(0)),
            visible: true,
        });
        let source = Arc::new(CountingSource {
            entries: vec![(1, 2.0), (5, 7.5)],
            loads: std::sync::atomic::AtomicUsize::new(0),
        });
        cs.attach_source(source.clone());
        assert_eq!(cs.materialized_columns(), 0);

        let gen = cs.generation();
        assert_eq!(cs.get(a, 5), 7.5);
        assert_eq!(cs.get(a, 0), 0.0);
        // Faulting is not a mutation: reads must not invalidate caches.
        assert_eq!(cs.generation(), gen);
        assert_eq!(cs.materialized_columns(), 1);
        assert_eq!(source.loads.load(std::sync::atomic::Ordering::SeqCst), 1);

        // A mutation lands on the faulted contents and bumps the stamp.
        cs.add(b, 1, 1.0);
        assert_eq!(cs.get(b, 1), 3.0);
        assert!(cs.generation() > gen);
        assert_eq!(cs.materialized_columns(), 2);
        assert_eq!(source.loads.load(std::sync::atomic::Ordering::SeqCst), 2);
        assert!(cs.lazy_error().is_none());
    }

    #[test]
    fn lazy_raw_metrics_fault_and_errors_read_as_zero() {
        #[derive(Debug)]
        struct FailingSource;
        impl ColumnSource for FailingSource {
            fn load_column(&self, _c: ColumnId) -> Result<ColumnData, String> {
                Err("no such block".into())
            }
            fn load_raw(&self, _m: MetricId) -> Result<ColumnData, String> {
                Err("no such block".into())
            }
        }

        let mut raw = RawMetrics::new(StorageKind::Sparse);
        let m = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
        raw.attach_source(Arc::new(CountingSource {
            entries: vec![(0, 4.0), (3, 2.0)],
            loads: std::sync::atomic::AtomicUsize::new(0),
        }));
        assert_eq!(raw.materialized_metrics(), 0);
        assert_eq!(raw.total(m), 6.0);
        assert_eq!(raw.direct(m, NodeId(3)), 2.0);
        assert_eq!(raw.materialized_metrics(), 1);

        let mut failing = RawMetrics::new(StorageKind::Sparse);
        let f = failing.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
        failing.attach_source(Arc::new(FailingSource));
        assert_eq!(failing.direct(f, NodeId(0)), 0.0);
        assert_eq!(failing.lazy_error(), Some("no such block"));
    }

    #[test]
    fn every_distinct_lazy_failure_is_kept_with_per_column_fault_counts() {
        #[derive(Debug)]
        struct PerColumnFailure;
        impl ColumnSource for PerColumnFailure {
            fn load_column(&self, c: ColumnId) -> Result<ColumnData, String> {
                match c.index() {
                    0 => Ok(ColumnData::Owned(vec![(2, 5.0)])),
                    i => Err(format!("column {i}: checksum mismatch")),
                }
            }
            fn load_raw(&self, _m: MetricId) -> Result<ColumnData, String> {
                Err("raw block missing".into())
            }
        }

        let mut cs = ColumnSet::new(StorageKind::Csr);
        for name in ["a", "b", "c"] {
            cs.add_column(ColumnDesc {
                name: name.into(),
                flavor: ColumnFlavor::Inclusive(MetricId(0)),
                visible: true,
            });
        }
        cs.attach_source(Arc::new(PerColumnFailure));

        // Touch every column: one succeeds, two fail with distinct reasons.
        assert_eq!(cs.get(ColumnId(0), 2), 5.0);
        assert_eq!(cs.get(ColumnId(1), 2), 0.0);
        assert_eq!(cs.get(ColumnId(2), 2), 0.0);

        // The legacy single-error API still reports the first failure...
        assert_eq!(cs.lazy_error(), Some("column 1: checksum mismatch"));
        // ...while the full list keeps both, in first-seen order.
        assert_eq!(
            cs.lazy_errors(),
            vec![
                "column 1: checksum mismatch".to_owned(),
                "column 2: checksum mismatch".to_owned(),
            ]
        );

        // Fault counts: exactly one decode per touched column, repeat
        // reads never re-decode (even for the failed ones).
        assert_eq!(cs.get(ColumnId(1), 7), 0.0);
        for c in [ColumnId(0), ColumnId(1), ColumnId(2)] {
            assert_eq!(cs.fault_count(c), 1, "column {}", c.index());
        }
        assert_eq!(cs.lazy_errors().len(), 2);
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut raw = RawMetrics::new(StorageKind::Csr);
        let g0 = raw.generation();
        let m = raw.add_metric(MetricDesc::new("cycles", "cycles", 10.0));
        assert!(raw.generation() > g0);
        let g1 = raw.generation();
        raw.record_samples(m, NodeId(3), 2);
        assert!(raw.generation() > g1);
        let g2 = raw.generation();
        raw.add_cost(m, NodeId(1), 5.0);
        assert!(raw.generation() > g2);
        let g3 = raw.generation();
        raw.add_costs(m, &[(NodeId(2), 1.0), (NodeId(4), 2.0)]);
        assert!(raw.generation() > g3);
        assert_eq!(raw.total(m), 28.0);
        assert_eq!(raw.direct(m, NodeId(3)), 20.0);
    }

    #[test]
    fn column_set_generation_bumps_on_every_mutation() {
        let mut cols = ColumnSet::new(StorageKind::Dense);
        let g0 = cols.generation();
        let c = cols.add_column(ColumnDesc {
            name: "cycles (I)".into(),
            flavor: ColumnFlavor::Inclusive(MetricId(0)),
            visible: true,
        });
        assert!(cols.generation() > g0);
        let g1 = cols.generation();
        cols.set(c, 3, 5.0);
        assert!(cols.generation() > g1);
        let g2 = cols.generation();
        cols.add(c, 3, 1.0);
        assert!(cols.generation() > g2);
        assert_eq!(cols.get(c, 3), 6.0);
    }

    #[test]
    fn add_costs_matches_scalar_adds_across_flavors() {
        let costs: Vec<(NodeId, f64)> = [(0u32, 1.0), (5, 2.0), (3, 4.0), (5, 0.5)]
            .iter()
            .map(|&(n, v)| (NodeId(n), v))
            .collect();
        for kind in [StorageKind::Dense, StorageKind::Sparse, StorageKind::Csr] {
            let mut batched = RawMetrics::new(kind);
            let mb = batched.add_metric(MetricDesc::new("m", "u", 1.0));
            batched.add_costs(mb, &costs);
            let mut scalar = RawMetrics::new(kind);
            let ms = scalar.add_metric(MetricDesc::new("m", "u", 1.0));
            for &(n, v) in &costs {
                scalar.add_cost(ms, n, v);
            }
            for n in 0..8 {
                assert_eq!(
                    batched.direct(mb, NodeId(n)),
                    scalar.direct(ms, NodeId(n)),
                    "{kind:?} node {n}"
                );
            }
        }
    }

    #[test]
    fn sparse_set_zero_removes_entry() {
        let mut s = MetricVec::sparse();
        s.set(5, 3.0);
        assert_eq!(s.nonzero_count(), 1);
        s.set(5, 0.0);
        assert_eq!(s.nonzero_count(), 0);
        assert_eq!(s.get(5), 0.0);
    }

    #[test]
    fn record_samples_scales_by_period() {
        let mut raw = RawMetrics::new(StorageKind::Dense);
        let m = raw.add_metric(MetricDesc::new("PAPI_TOT_CYC", "cycles", 1000.0));
        raw.record_samples(m, NodeId(4), 3);
        assert_eq!(raw.direct(m, NodeId(4)), 3000.0);
        assert_eq!(raw.total(m), 3000.0);
    }

    #[test]
    fn find_metric_by_name() {
        let mut raw = RawMetrics::new(StorageKind::Sparse);
        let cyc = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
        let l1 = raw.add_metric(MetricDesc::new("l1_dcm", "misses", 1.0));
        assert_eq!(raw.find("cycles"), Some(cyc));
        assert_eq!(raw.find("l1_dcm"), Some(l1));
        assert_eq!(raw.find("nope"), None);
    }

    #[test]
    fn column_set_visibility() {
        let mut cs = ColumnSet::new(StorageKind::Dense);
        let a = cs.add_column(ColumnDesc {
            name: "cycles (I)".into(),
            flavor: ColumnFlavor::Inclusive(MetricId(0)),
            visible: true,
        });
        let b = cs.add_column(ColumnDesc {
            name: "scratch".into(),
            flavor: ColumnFlavor::Derived {
                formula: "$0*2".into(),
            },
            visible: false,
        });
        let visible: Vec<ColumnId> = cs.visible_columns().collect();
        assert_eq!(visible, vec![a]);
        assert_eq!(cs.find("scratch"), Some(b));
    }

    #[test]
    fn dense_auto_grows() {
        let mut d = MetricVec::dense(0);
        d.add(100, 1.0);
        assert_eq!(d.get(100), 1.0);
        assert_eq!(d.get(99), 0.0);
    }
}
