//! Metric descriptors and per-node metric storage.
//!
//! The paper uses *metric* for any measure of work (instructions), resource
//! consumption (bus transactions) or inefficiency (stall cycles). A raw
//! metric is what the sampler records; the presentation layer projects each
//! raw metric into an **inclusive** and an **exclusive** column, and lets
//! the analyst add **derived** columns computed by formula (Section V-D).
//!
//! Performance data is sparse (Section V-A): most CCT nodes have zero for
//! most metrics. Storage therefore comes in two interchangeable flavors —
//! dense `Vec<f64>` and a hash-indexed sparse map — so the ablation bench
//! (`metric_storage`) can compare them; the public API is identical.

use crate::ids::{ColumnId, MetricId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Description of a raw (measured) metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDesc {
    /// e.g. `PAPI_TOT_CYC`, `PAPI_L1_DCM`, `PAPI_FP_OPS`, `IDLENESS`.
    pub name: String,
    /// Unit label for display, e.g. `cycles`, `misses`, `ops`.
    pub unit: String,
    /// Sampling period: one recorded sample represents this many events.
    /// The paper defines the exclusive value at a sample point as sample
    /// count × period.
    pub period: f64,
}

impl MetricDesc {
    /// Describe a raw metric.
    pub fn new(name: &str, unit: &str, period: f64) -> Self {
        MetricDesc {
            name: name.to_owned(),
            unit: unit.to_owned(),
            period,
        }
    }
}

/// Per-node storage for one metric column. Indices are node ids of whatever
/// tree the containing table is attached to (CCT or a view tree).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MetricVec {
    /// Dense vector indexed by node id.
    Dense(Vec<f64>),
    /// Sparse map from node id to value; zeros are absent.
    Sparse(HashMap<u32, f64>),
}

impl MetricVec {
    /// A dense column pre-sized for `len` nodes.
    pub fn dense(len: usize) -> Self {
        MetricVec::Dense(vec![0.0; len])
    }

    /// An empty sparse column.
    pub fn sparse() -> Self {
        MetricVec::Sparse(HashMap::new())
    }

    /// Value at `node` (0.0 when absent).
    #[inline]
    pub fn get(&self, node: u32) -> f64 {
        match self {
            MetricVec::Dense(v) => v.get(node as usize).copied().unwrap_or(0.0),
            MetricVec::Sparse(m) => m.get(&node).copied().unwrap_or(0.0),
        }
    }

    /// Set the value at `node`; setting 0.0 removes sparse entries.
    #[inline]
    pub fn set(&mut self, node: u32, value: f64) {
        match self {
            MetricVec::Dense(v) => {
                if node as usize >= v.len() {
                    v.resize(node as usize + 1, 0.0);
                }
                v[node as usize] = value;
            }
            MetricVec::Sparse(m) => {
                if value == 0.0 {
                    m.remove(&node);
                } else {
                    m.insert(node, value);
                }
            }
        }
    }

    /// Accumulate `delta` at `node`.
    #[inline]
    pub fn add(&mut self, node: u32, delta: f64) {
        if delta == 0.0 {
            return;
        }
        match self {
            MetricVec::Dense(v) => {
                if node as usize >= v.len() {
                    v.resize(node as usize + 1, 0.0);
                }
                v[node as usize] += delta;
            }
            MetricVec::Sparse(m) => {
                *m.entry(node).or_insert(0.0) += delta;
            }
        }
    }

    /// Number of nodes with a non-zero value.
    pub fn nonzero_count(&self) -> usize {
        match self {
            MetricVec::Dense(v) => v.iter().filter(|&&x| x != 0.0).count(),
            MetricVec::Sparse(m) => m.values().filter(|&&x| x != 0.0).count(),
        }
    }

    /// Non-zero entries in ascending node order (deterministic regardless of
    /// storage flavor).
    pub fn nonzero_sorted(&self) -> Vec<(u32, f64)> {
        let mut out: Vec<(u32, f64)> = match self {
            MetricVec::Dense(v) => v
                .iter()
                .enumerate()
                .filter(|(_, &x)| x != 0.0)
                .map(|(i, &x)| (i as u32, x))
                .collect(),
            MetricVec::Sparse(m) => m.iter().filter(|(_, &x)| x != 0.0).map(|(&k, &v)| (k, v)).collect(),
        };
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Approximate heap footprint in bytes, for the storage ablation bench.
    pub fn heap_bytes(&self) -> usize {
        match self {
            MetricVec::Dense(v) => v.capacity() * std::mem::size_of::<f64>(),
            MetricVec::Sparse(m) => m.capacity() * (std::mem::size_of::<(u32, f64)>() + 8),
        }
    }
}

/// Which storage flavor new columns use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageKind {
    /// One `f64` slot per node; fastest lookups, O(nodes) memory.
    Dense,
    /// Hash-indexed non-zero entries; memory proportional to samples.
    Sparse,
}

/// Direct (sample-point) costs for every raw metric, attached to a CCT.
///
/// `values[m].get(n)` is the cost measured *at* node `n` for metric `m`:
/// sample count × period, before any inclusive/exclusive attribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RawMetrics {
    descs: Vec<MetricDesc>,
    values: Vec<MetricVec>,
    storage: StorageKind,
}

impl RawMetrics {
    /// An empty metric set using the given storage flavor.
    pub fn new(storage: StorageKind) -> Self {
        RawMetrics {
            descs: Vec::new(),
            values: Vec::new(),
            storage,
        }
    }

    /// The storage flavor new columns use.
    pub fn storage(&self) -> StorageKind {
        self.storage
    }

    /// Register a raw metric, returning its id.
    pub fn add_metric(&mut self, desc: MetricDesc) -> MetricId {
        let id = MetricId::from_usize(self.descs.len());
        self.descs.push(desc);
        self.values.push(match self.storage {
            StorageKind::Dense => MetricVec::dense(0),
            StorageKind::Sparse => MetricVec::sparse(),
        });
        id
    }

    /// Number of registered raw metrics.
    pub fn metric_count(&self) -> usize {
        self.descs.len()
    }

    /// Descriptor of metric `m`.
    pub fn desc(&self, m: MetricId) -> &MetricDesc {
        &self.descs[m.index()]
    }

    /// All metric descriptors, in id order.
    pub fn descs(&self) -> &[MetricDesc] {
        &self.descs
    }

    /// Find a metric by name.
    pub fn find(&self, name: &str) -> Option<MetricId> {
        self.descs
            .iter()
            .position(|d| d.name == name)
            .map(MetricId::from_usize)
    }

    /// Record `count` samples of metric `m` at node `n`.
    pub fn record_samples(&mut self, m: MetricId, n: crate::ids::NodeId, count: u64) {
        let period = self.descs[m.index()].period;
        self.values[m.index()].add(n.0, count as f64 * period);
    }

    /// Add a pre-scaled cost at node `n`.
    pub fn add_cost(&mut self, m: MetricId, n: crate::ids::NodeId, cost: f64) {
        self.values[m.index()].add(n.0, cost);
    }

    /// Direct (sample-point) cost of metric `m` at node `n`.
    pub fn direct(&self, m: MetricId, n: crate::ids::NodeId) -> f64 {
        self.values[m.index()].get(n.0)
    }

    /// The raw per-node storage of metric `m`.
    pub fn column(&self, m: MetricId) -> &MetricVec {
        &self.values[m.index()]
    }

    /// Total direct cost of metric `m` over all nodes (the whole-program
    /// cost, which equals the root's inclusive value after attribution).
    pub fn total(&self, m: MetricId) -> f64 {
        match &self.values[m.index()] {
            MetricVec::Dense(v) => v.iter().sum(),
            MetricVec::Sparse(map) => map.values().sum(),
        }
    }
}

/// How a presentation column derives its values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnFlavor {
    /// Inclusive projection of a raw metric (Eq. 2).
    Inclusive(MetricId),
    /// Exclusive projection of a raw metric (Eq. 1 hybrid rules).
    Exclusive(MetricId),
    /// Computed from other columns with a formula (Section V-D); the source
    /// text of the formula is kept for the experiment database.
    Derived {
        /// Source text of the formula (kept for the experiment database).
        formula: String,
    },
    /// A statistic over per-process values (finalization step, Section IV).
    Summary {
        /// The raw metric the statistic summarizes.
        base: MetricId,
        /// Which statistic over per-process values.
        stat: crate::summary::Stat,
    },
}

/// A presentation column: what the metric pane shows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDesc {
    /// Column title shown in the metric pane.
    pub name: String,
    /// How the column's values are produced.
    pub flavor: ColumnFlavor,
    /// Hidden columns take part in derived-metric formulas but are not
    /// rendered (matches hpcviewer's show/hide metric property).
    pub visible: bool,
}

/// A table of presentation columns attached to some tree (CCT or view
/// tree). Column values are indexed by node id within that tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnSet {
    descs: Vec<ColumnDesc>,
    values: Vec<MetricVec>,
    storage: StorageKind,
}

impl ColumnSet {
    /// An empty column table using the given storage flavor.
    pub fn new(storage: StorageKind) -> Self {
        ColumnSet {
            descs: Vec::new(),
            values: Vec::new(),
            storage,
        }
    }

    /// Append a presentation column, returning its id.
    pub fn add_column(&mut self, desc: ColumnDesc) -> ColumnId {
        let id = ColumnId::from_usize(self.descs.len());
        self.descs.push(desc);
        self.values.push(match self.storage {
            StorageKind::Dense => MetricVec::dense(0),
            StorageKind::Sparse => MetricVec::sparse(),
        });
        id
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.descs.len()
    }

    /// Descriptor of column `c`.
    pub fn desc(&self, c: ColumnId) -> &ColumnDesc {
        &self.descs[c.index()]
    }

    /// All column descriptors, in id order.
    pub fn descs(&self) -> &[ColumnDesc] {
        &self.descs
    }

    /// Every column id, in order.
    pub fn columns(&self) -> impl Iterator<Item = ColumnId> + '_ {
        (0..self.descs.len()).map(ColumnId::from_usize)
    }

    /// Column ids the metric pane renders (visible ones).
    pub fn visible_columns(&self) -> impl Iterator<Item = ColumnId> + '_ {
        self.descs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.visible)
            .map(|(i, _)| ColumnId::from_usize(i))
    }

    /// Look a column up by its title.
    pub fn find(&self, name: &str) -> Option<ColumnId> {
        self.descs
            .iter()
            .position(|d| d.name == name)
            .map(ColumnId::from_usize)
    }

    /// Value of column `c` at `node` (0.0 when absent).
    #[inline]
    pub fn get(&self, c: ColumnId, node: u32) -> f64 {
        self.values[c.index()].get(node)
    }

    /// Set column `c` at `node`.
    #[inline]
    pub fn set(&mut self, c: ColumnId, node: u32, value: f64) {
        self.values[c.index()].set(node, value);
    }

    /// Accumulate into column `c` at `node`.
    #[inline]
    pub fn add(&mut self, c: ColumnId, node: u32, delta: f64) {
        self.values[c.index()].add(node, delta);
    }

    /// The per-node storage backing column `c`.
    pub fn vec(&self, c: ColumnId) -> &MetricVec {
        &self.values[c.index()]
    }

    /// Approximate heap footprint of all column storage.
    pub fn heap_bytes(&self) -> usize {
        self.values.iter().map(MetricVec::heap_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn dense_and_sparse_agree() {
        let mut d = MetricVec::dense(0);
        let mut s = MetricVec::sparse();
        for (n, v) in [(3u32, 1.5), (0, 2.0), (3, 0.5), (10, -1.0)] {
            d.add(n, v);
            s.add(n, v);
        }
        for n in 0..12 {
            assert_eq!(d.get(n), s.get(n), "node {n}");
        }
        assert_eq!(d.nonzero_sorted(), s.nonzero_sorted());
    }

    #[test]
    fn sparse_set_zero_removes_entry() {
        let mut s = MetricVec::sparse();
        s.set(5, 3.0);
        assert_eq!(s.nonzero_count(), 1);
        s.set(5, 0.0);
        assert_eq!(s.nonzero_count(), 0);
        assert_eq!(s.get(5), 0.0);
    }

    #[test]
    fn record_samples_scales_by_period() {
        let mut raw = RawMetrics::new(StorageKind::Dense);
        let m = raw.add_metric(MetricDesc::new("PAPI_TOT_CYC", "cycles", 1000.0));
        raw.record_samples(m, NodeId(4), 3);
        assert_eq!(raw.direct(m, NodeId(4)), 3000.0);
        assert_eq!(raw.total(m), 3000.0);
    }

    #[test]
    fn find_metric_by_name() {
        let mut raw = RawMetrics::new(StorageKind::Sparse);
        let cyc = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
        let l1 = raw.add_metric(MetricDesc::new("l1_dcm", "misses", 1.0));
        assert_eq!(raw.find("cycles"), Some(cyc));
        assert_eq!(raw.find("l1_dcm"), Some(l1));
        assert_eq!(raw.find("nope"), None);
    }

    #[test]
    fn column_set_visibility() {
        let mut cs = ColumnSet::new(StorageKind::Dense);
        let a = cs.add_column(ColumnDesc {
            name: "cycles (I)".into(),
            flavor: ColumnFlavor::Inclusive(MetricId(0)),
            visible: true,
        });
        let b = cs.add_column(ColumnDesc {
            name: "scratch".into(),
            flavor: ColumnFlavor::Derived {
                formula: "$0*2".into(),
            },
            visible: false,
        });
        let visible: Vec<ColumnId> = cs.visible_columns().collect();
        assert_eq!(visible, vec![a]);
        assert_eq!(cs.find("scratch"), Some(b));
    }

    #[test]
    fn dense_auto_grows() {
        let mut d = MetricVec::dense(0);
        d.add(100, 1.0);
        assert_eq!(d.get(100), 1.0);
        assert_eq!(d.get(99), 0.0);
    }
}
