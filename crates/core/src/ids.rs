//! Strongly-typed index newtypes used throughout the canonical CCT and its
//! derived views.
//!
//! All trees in this crate are arena-backed (`Vec<Node>`), so node
//! references are plain `u32` indices wrapped in newtypes. This keeps nodes
//! `Copy`, makes accidental cross-tree indexing a type error, and keeps the
//! arena compact (a node id is 4 bytes, not a fat pointer).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw `usize` index (panics if it exceeds `u32`).
            #[inline]
            pub fn from_usize(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize, "index overflow");
                $name(i as u32)
            }

            /// The raw index, for arena lookups.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

define_id!(
    /// A node in a canonical calling context tree (`Cct`).
    NodeId
);
define_id!(
    /// A node in a presentation view tree (Callers View / Flat View).
    ViewNodeId
);
define_id!(
    /// An interned procedure name.
    ProcId
);
define_id!(
    /// An interned source file name.
    FileId
);
define_id!(
    /// An interned load module (binary / shared library) name.
    LoadModuleId
);
define_id!(
    /// A *raw* measured metric (e.g. `PAPI_TOT_CYC`). Each raw metric
    /// contributes an inclusive and an exclusive presentation column.
    MetricId
);
define_id!(
    /// A presentation column in the metric pane: inclusive or exclusive
    /// projection of a raw metric, a summary statistic, or a derived metric.
    ColumnId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        let id = NodeId::from_usize(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, NodeId(42));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(ColumnId(0) < ColumnId(7));
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", ProcId(3)), "ProcId(3)");
        assert_eq!(format!("{}", ProcId(3)), "3");
    }

    #[test]
    fn ids_are_distinct_types() {
        // Compile-time property: this test exists to document intent; the
        // macro generates distinct types so NodeId cannot index a view tree.
        fn takes_node(_: NodeId) {}
        takes_node(NodeId(0));
    }
}
